//! Hermetic stand-in for the [`serde_derive`] proc-macro crate.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the only
//! shape this workspace derives on: non-generic structs with named fields.
//! The single supported field attribute is `#[serde(default)]`. The parser
//! walks the raw `TokenStream` directly (no `syn`/`quote` — the build is
//! fully offline), which is robust for this restricted grammar: attributes
//! are `#` followed by a bracket group, and field boundaries are top-level
//! commas outside angle brackets.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    has_default: bool,
}

struct Struct {
    name: String,
    fields: Vec<Field>,
}

fn parse_struct(input: TokenStream) -> Struct {
    let mut tokens = input.into_iter().peekable();
    let mut name = None;
    // Find `struct <Name>`, skipping attributes and visibility.
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("expected struct name, found {other:?}"),
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("serde shim derive: no `struct` keyword found");
    // Find the brace-delimited field body (skips over any generics, though
    // the workspace derives only on non-generic structs).
    let body = tokens
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .expect("serde shim derive supports only structs with named fields");

    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Field attributes.
        let mut has_default = false;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        has_default |= attr_is_serde_default(&g.stream());
                    }
                }
                _ => break,
            }
        }
        // Visibility: `pub` optionally followed by a parenthesized modifier.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(
                iter.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                iter.next();
            }
        }
        let Some(TokenTree::Ident(field_name)) = iter.next() else {
            break; // end of fields (or trailing comma already consumed)
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field name, found {other:?}"),
        }
        // Skip the type: tokens until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                _ => {
                    iter.next();
                }
            }
        }
        fields.push(Field {
            name: field_name.to_string(),
            has_default,
        });
    }
    Struct { name, fields }
}

/// Whether an attribute body (the tokens inside `#[...]`) is
/// `serde(default)`.
fn attr_is_serde_default(stream: &TokenStream) -> bool {
    let mut iter = stream.clone().into_iter();
    match (iter.next(), iter.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|tt| matches!(tt, TokenTree::Ident(i) if i.to_string() == "default")),
        _ => false,
    }
}

/// Derives the shim's `serde::Serialize` (renders into a JSON value).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_struct(input);
    let mut pushes = String::new();
    for f in &parsed.fields {
        pushes.push_str(&format!(
            "fields.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
            n = f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =\n\
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}",
        name = parsed.name,
    )
    .parse()
    .expect("serde shim derive: generated invalid Serialize impl")
}

/// Derives the shim's `serde::Deserialize` (reads out of a JSON value,
/// honoring `#[serde(default)]`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_struct(input);
    let mut inits = String::new();
    for f in &parsed.fields {
        let helper = if f.has_default {
            "__field_or_default"
        } else {
            "__field"
        };
        inits.push_str(&format!(
            "{n}: ::serde::{helper}(value, \"{n}\")?,\n",
            n = f.name
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value)\n\
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}",
        name = parsed.name,
    )
    .parse()
    .expect("serde shim derive: generated invalid Deserialize impl")
}
