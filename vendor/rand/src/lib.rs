//! Hermetic stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace is fully offline, so external
//! crates are vendored as minimal, API-compatible implementations of exactly
//! the surface the workspace uses (see `vendor/README.md`). This crate
//! mirrors the `rand 0.9` API subset:
//!
//! * [`Rng`] with `random`, `random_range`, `random_bool`
//! * [`SeedableRng`] with `seed_from_u64`
//! * [`rngs::StdRng`] — here a xoshiro256** generator seeded via SplitMix64
//! * [`seq::SliceRandom`] with `shuffle`
//!
//! Everything is deterministic given the seed, which is all the workspace
//! relies on (the real `rand` makes no cross-version reproducibility
//! promises for `StdRng` either).

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an RNG's raw output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is negligible for the small spans used here
                // and irrelevant for reproducibility.
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u: f64 = Standard::sample(rng);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let u: f64 = Standard::sample(rng);
                start + (u as $t) * (end - start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// A random number generator (the `rand 0.9` method names).
pub trait Rng {
    /// The raw output: the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` (uniform over `T`'s natural domain;
    /// `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it into the full
    /// internal state deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** with SplitMix64 seeding.
    /// Deterministic given the seed; not cryptographically secure (neither
    /// use nor claim matches the real `StdRng`'s ChaCha12, but no consumer
    /// in this workspace depends on the concrete stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..1_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor spread: [{lo}, {hi}]");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.random_range(2.0f64..=8.0);
            assert!((2.0..=8.0).contains(&f));
        }
        // Both endpoints of a small inclusive range eventually occur.
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0u64..=2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "20 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
