//! Hermetic stand-in for the [`serde`](https://crates.io/crates/serde) crate
//! (see `vendor/README.md` for why external crates are vendored).
//!
//! Instead of serde's visitor-based data model, this shim serializes through
//! a concrete JSON [`Value`] tree: [`Serialize`] renders into a `Value`,
//! [`Deserialize`] reads back out of one. The derive macros (re-exported
//! from `serde_derive`) generate those impls for named-field structs,
//! honoring `#[serde(default)]`. The companion `serde_json` crate provides
//! the string-level API (`to_string_pretty`, `from_str`).

#![deny(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a JSON [`Value`].
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_value(&self) -> Value;
}

/// Types readable back out of a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reads a value of `Self` out of `value`.
    ///
    /// # Errors
    /// Fails when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(*n),
            other => Err(Error::msg(format!("expected number, got {other}"))),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = f64::from_value(value)?;
                let cast = n as $t;
                if cast as f64 == n {
                    Ok(cast)
                } else {
                    Err(Error::msg(format!(
                        "number {n} is not a valid {}",
                        stringify!($t)
                    )))
                }
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

/// Derive-macro helper: extracts and deserializes a required object field.
#[doc(hidden)]
pub fn __field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value {
        Value::Object(fields) => match fields.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| Error::msg(format!("field '{name}': {e}")))
            }
            None => Err(Error::msg(format!("missing field '{name}'"))),
        },
        other => Err(Error::msg(format!("expected object, got {other}"))),
    }
}

/// Derive-macro helper: extracts an optional (`#[serde(default)]`) field.
#[doc(hidden)]
pub fn __field_or_default<T: Deserialize + Default>(value: &Value, name: &str) -> Result<T, Error> {
    match value {
        Value::Object(fields) => match fields.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| Error::msg(format!("field '{name}': {e}")))
            }
            None => Ok(T::default()),
        },
        other => Err(Error::msg(format!("expected object, got {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(f64::from_value(&2.5f64.to_value()).unwrap(), 2.5);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert!(usize::from_value(&Value::Number(2.5)).is_err());
        assert!(f64::from_value(&Value::Null).is_err());
    }

    #[test]
    fn options_use_null() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Number(1.0)).unwrap(),
            Some(1.0)
        );
        assert_eq!(None::<f64>.to_value(), Value::Null);
    }

    #[test]
    fn vec_round_trips() {
        let v = vec![1.0f64, 2.0, 3.0];
        let round = Vec::<f64>::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn field_helpers() {
        let obj = Value::Object(vec![("x".into(), Value::Number(3.0))]);
        assert_eq!(__field::<f64>(&obj, "x").unwrap(), 3.0);
        assert!(__field::<f64>(&obj, "y").is_err());
        assert_eq!(__field_or_default::<Vec<f64>>(&obj, "y").unwrap(), vec![]);
    }
}
