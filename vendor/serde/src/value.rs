//! The JSON value tree plus parser and printers shared by the `serde` and
//! `serde_json` shims.

use std::fmt;
use std::ops::Index;

/// A JSON value. Objects preserve insertion order (like `serde_json` with
/// its default feature set preserves a deterministic order for printing).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The object's ordered key/value pairs, if this is an object. (The
    /// real `serde_json` returns a `Map`; the shim exposes its ordered
    /// pair list, which supports the same iteration patterns.)
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty-printed JSON (two-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&format_number(*n)),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    /// Returns a message describing the first syntax error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn format_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no infinities; mirror serde_json's strictness loosely by
        // emitting null (serde_json errors instead, but no workspace code
        // serializes non-finite numbers).
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected '{token}' at byte {pos}"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so this
                // boundary arithmetic is safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

macro_rules! num_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}
num_eq!(i32, i64, u32, u64, usize, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_pretty_output() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("q\"uote".into())),
            ("rows".into(), Value::Number(1_000_000.0)),
            ("ratio".into(), Value::Number(0.25)),
            (
                "tags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let pretty = v.to_json_pretty();
        assert!(pretty.contains("\n  \"name\""), "not indented: {pretty}");
        assert_eq!(Value::parse(&pretty).unwrap(), v);
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(format_number(1_000_000.0), "1000000");
        assert_eq!(format_number(0.25), "0.25");
    }

    #[test]
    fn indexing_and_eq() {
        let v = Value::parse(r#"{"id": "smoke", "panels": [{"size": 5}]}"#).unwrap();
        assert_eq!(v["id"], "smoke");
        assert_eq!(v["panels"][0]["size"], 5);
        assert!(v["missing"].is_null());
        assert!(v["panels"].as_array().is_some());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1, ]").is_err());
        assert!(Value::parse("nul").is_err());
        assert!(Value::parse("1 2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::parse(r#""aA\n""#).unwrap();
        assert_eq!(v, "aA\n");
    }
}
