//! Hermetic stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness (see `vendor/README.md` for why external crates are
//! vendored).
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher`, `criterion_group!`,
//! `criterion_main!` — with a simple measurement loop: a short warm-up, then
//! timed batches until the measurement budget is spent, reporting the mean
//! and min/max per-iteration time. No statistical analysis, HTML reports,
//! or baseline comparisons.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher<'a> {
    config: &'a Config,
    report_label: String,
}

#[derive(Clone, Copy, Debug)]
struct Config {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            measurement_time: Duration::from_millis(300),
            sample_size: 50,
        }
    }
}

impl Bencher<'_> {
    /// Measures `routine`, running it repeatedly and reporting per-iteration
    /// timing to stdout.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few iterations, also used to estimate batch size.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters < 3
            || (warmup_start.elapsed() < self.config.measurement_time / 10 && warmup_iters < 1_000)
        {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;

        let mut samples: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        let deadline = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            samples.push(t0.elapsed().as_secs_f64());
            if Instant::now() > deadline {
                break;
            }
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:<50} time: [{} {} {}]  ({} samples, warmup {}/iter)",
            self.report_label,
            fmt_secs(min),
            fmt_secs(mean),
            fmt_secs(max),
            samples.len(),
            fmt_secs(per_iter.as_secs_f64()),
        );
    }
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    config: Config,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.config.measurement_time = time;
        self
    }

    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut b = Bencher {
            config: &self.config,
            report_label: format!("{}/{}", self.name, id.id),
        };
        f(&mut b, input);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut b = Bencher {
            config: &self.config,
            report_label: format!("{}/{}", self.name, id.id),
        };
        f(&mut b);
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored by the shim,
    /// so `cargo bench -- <filter>` invocations do not error out).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut b = Bencher {
            config: &self.config,
            report_label: id.id,
        };
        f(&mut b);
        self
    }
}

/// Defines a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs_closures() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group
                .measurement_time(Duration::from_millis(5))
                .sample_size(3);
            group.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &n| {
                b.iter(|| n * 2);
                calls += 1;
            });
            group.bench_function("plain", |b| b.iter(|| 1 + 1));
            group.finish();
        }
        c.bench_function("standalone", |b| b.iter(|| "x".len()));
        assert_eq!(calls, 1);
    }
}
