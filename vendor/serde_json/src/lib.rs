//! Hermetic stand-in for the [`serde_json`] crate: string-level JSON API on
//! top of the `serde` shim's [`Value`] tree (see `vendor/README.md`).

#![deny(unsafe_code)]

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Never fails in this shim (kept as `Result` for API compatibility).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
/// Never fails in this shim (kept as `Result` for API compatibility).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Parses a `T` from JSON text.
///
/// # Errors
/// Fails on JSON syntax errors or when the document's shape does not match
/// `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = Value::parse(text).map_err(Error::msg)?;
    T::from_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip_through_strings() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x"], "b": null}"#).unwrap();
        assert_eq!(v["a"][1], 2.5);
        let compact = to_string(&v).unwrap();
        let reparsed: Value = from_str(&compact).unwrap();
        assert_eq!(reparsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(from_str::<Value>("{oops}").is_err());
    }
}
