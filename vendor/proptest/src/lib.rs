//! Hermetic stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the API subset this workspace's test suites use (see
//! `vendor/README.md` for why external crates are vendored).
//!
//! Semantics: each `proptest!` test runs its body for [`ProptestConfig::cases`]
//! deterministically seeded random cases. Unlike the real proptest there is
//! **no shrinking** and no failure-persistence file — a failing case reports
//! its case number and the deterministic seed reproduces it on re-run.

#![deny(unsafe_code)]

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// The RNG driving test-case generation.
pub type TestRng = StdRng;

/// Error produced by a failing `prop_assert!` family macro.
pub type TestCaseError = String;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the hermetic suite
        // fast while still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG: seeded from the test's name so every test
/// draws an independent, reproducible stream.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A value generator. The real proptest separates strategies from value
/// trees to support shrinking; this shim only generates.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy yielding a constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over the given alternatives.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Size specification for collection strategies: a fixed size or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.lo..self.hi_exclusive)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of values from `element`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets with up to the drawn number of elements (duplicates
    /// collapse, as in the real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports of proptest-based tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Boxes a strategy for storage in a [`Union`] (used by [`prop_oneof!`]).
#[doc(hidden)]
pub fn __boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::__boxed($strategy)),+])
    };
}

/// Defines property-based tests: each `fn` runs its body over many sampled
/// inputs. Mirrors the real macro's surface syntax (`arg in strategy`
/// parameters, optional `#![proptest_config(..)]` header).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "proptest case {}/{} of {} failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        message
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_parity() -> impl Strategy<Value = bool> {
        prop_oneof![Just(true), Just(false)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in 0.5f64..2.5) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((0.5..2.5).contains(&x));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1u32..10, 1u32..10).prop_map(|(a, b)| a + b),
            flag in arb_parity(),
        ) {
            prop_assert!((2..=18).contains(&pair));
            prop_assert!(u8::from(flag) <= 1);
            prop_assert_eq!(pair, pair);
            prop_assert_ne!(pair, pair + 1);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u8..5, 2..6),
            s in crate::collection::btree_set(0usize..100, 0..10),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert!(s.len() < 10);
        }
    }

    #[test]
    fn failing_case_reports_case_number() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(5))]
                #[allow(unused)]
                fn always_fails(n in 0usize..10) {
                    prop_assert!(false, "boom {n}");
                }
            }
            always_fails();
        });
        let err = result.expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("case 1/5"), "unexpected message: {msg}");
        assert!(msg.contains("boom"), "unexpected message: {msg}");
    }
}
