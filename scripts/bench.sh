#!/usr/bin/env bash
# Single entry point for perf-baseline runs. CI's bench-smoke job and local
# runs both go through this script so the invocation (release profile,
# harness bin, flags) stays identical everywhere.
#
#   scripts/bench.sh                 # full run, writes BENCH_rmq.json
#   scripts/bench.sh --quick         # CI smoke mode (smaller budgets)
#   scripts/bench.sh --out foo.json  # custom output path
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -p moqo-bench --bin harness -- "$@"
