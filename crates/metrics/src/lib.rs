//! # moqo-metrics — frontier quality measurement
//!
//! The paper judges "the set of query plans produced by a certain algorithm
//! by the lowest approximation factor α such that the produced plan set is
//! an α-approximate Pareto plan set" (§6.1) — the multiplicative ε-indicator
//! of Zitzler & Thiele with `α = 1 + ε`. This crate implements:
//!
//! * [`epsilon`] — the indicator itself plus exact Pareto filtering;
//! * [`hypervolume`](mod@hypervolume) — the hypervolume indicator (extension; a second
//!   standard frontier-quality measure used for cross-checks);
//! * [`reference`](mod@reference) — reference-frontier construction (union of all
//!   algorithms' outputs, or an exact frontier for small queries);
//! * [`trajectory`] — anytime recording: frontier snapshots at configurable
//!   time checkpoints, turned into α-vs-time series;
//! * [`preferences`] — automatic plan selection from a frontier via user
//!   cost weights and cost bounds (the paper's §1 second consumer, \[18\]);
//! * [`viz`] — ASCII scatter plots and frontier tables (the paper's §1
//!   first consumer: visualize tradeoffs for manual selection, \[19\]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod epsilon;
pub mod hypervolume;
pub mod preferences;
pub mod reference;
pub mod trajectory;
pub mod viz;

pub use epsilon::{epsilon_indicator, pareto_filter};
pub use hypervolume::{hypervolume, time_to_fraction, HvTracker};
pub use preferences::{Preferences, SelectionError};
pub use reference::ReferenceFrontier;
pub use trajectory::{checkpoints, Trajectory, TrajectoryRecorder};
pub use viz::{frontier_table, scatter, scatter_plans, ScatterConfig};
