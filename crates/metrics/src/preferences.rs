//! Preference-based plan selection from a Pareto frontier.
//!
//! The paper's introduction describes the two ways a Pareto plan set is
//! consumed: "the optimal cost tradeoffs can either be visualized to the
//! user for a manual selection \[19\] or the best plan can be selected
//! automatically out of that set based on a specification of user
//! preferences (i.e., in the form of cost weights and cost bounds \[18\])".
//! This module implements the second consumer: a [`Preferences`]
//! specification holding per-metric **weights** and optional per-metric
//! **upper bounds**, and a selector that picks the frontier plan minimizing
//! the weighted cost among the plans satisfying every bound.
//!
//! The weighted sum is a scalarization, so on its own it could only reach
//! the convex hull of the frontier (the paper's §2 remark). Bounds restore
//! access to non-convex tradeoffs: any Pareto-optimal plan is the weighted
//! optimum of *some* weight/bound combination where the bounds pin down its
//! neighborhood.

use moqo_core::cost::CostVector;
use moqo_core::plan::PlanRef;

/// User preferences over `l` cost metrics: weights and optional bounds.
#[derive(Clone, Debug)]
pub struct Preferences {
    weights: Vec<f64>,
    bounds: Vec<Option<f64>>,
}

/// Why plan selection failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionError {
    /// The candidate plan set was empty.
    EmptyFrontier,
    /// Every candidate violated at least one cost bound.
    NoPlanWithinBounds,
}

impl std::fmt::Display for SelectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectionError::EmptyFrontier => write!(f, "no candidate plans"),
            SelectionError::NoPlanWithinBounds => {
                write!(f, "no plan satisfies all cost bounds")
            }
        }
    }
}

impl std::error::Error for SelectionError {}

impl Preferences {
    /// Equal weights, no bounds, over `dim` metrics.
    ///
    /// # Panics
    /// Panics if `dim` is zero.
    pub fn balanced(dim: usize) -> Self {
        assert!(dim > 0, "preferences need at least one metric");
        Preferences {
            weights: vec![1.0; dim],
            bounds: vec![None; dim],
        }
    }

    /// Preferences with explicit weights (must be non-negative, with at
    /// least one strictly positive entry) and no bounds.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn weighted(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "preferences need at least one metric");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative: {weights:?}"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "at least one weight must be positive"
        );
        Preferences {
            bounds: vec![None; weights.len()],
            weights: weights.to_vec(),
        }
    }

    /// Adds an upper bound on metric `k`.
    ///
    /// # Panics
    /// Panics if `k` is out of range or `bound` is not a positive finite
    /// value.
    pub fn with_bound(mut self, k: usize, bound: f64) -> Self {
        assert!(k < self.dim(), "metric {k} out of range");
        assert!(bound.is_finite() && bound > 0.0, "invalid bound {bound}");
        self.bounds[k] = Some(bound);
        self
    }

    /// Number of metrics.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// The weight of metric `k`.
    pub fn weight(&self, k: usize) -> f64 {
        self.weights[k]
    }

    /// The upper bound on metric `k`, if any.
    pub fn bound(&self, k: usize) -> Option<f64> {
        self.bounds[k]
    }

    /// Whether `cost` satisfies every bound.
    ///
    /// # Panics
    /// Panics in debug builds if the dimensions disagree.
    pub fn within_bounds(&self, cost: &CostVector) -> bool {
        debug_assert_eq!(cost.dim(), self.dim());
        self.bounds
            .iter()
            .enumerate()
            .all(|(k, b)| b.is_none_or(|b| cost[k] <= b))
    }

    /// The weighted scalar cost of a cost vector.
    ///
    /// # Panics
    /// Panics in debug builds if the dimensions disagree.
    pub fn utility(&self, cost: &CostVector) -> f64 {
        debug_assert_eq!(cost.dim(), self.dim());
        (0..self.dim()).map(|k| self.weights[k] * cost[k]).sum()
    }

    /// Selects the plan minimizing the weighted cost among the plans that
    /// satisfy every bound. Ties break toward the earliest candidate, so
    /// selection is deterministic for a deterministically ordered frontier.
    pub fn select<'p>(&self, plans: &'p [PlanRef]) -> Result<&'p PlanRef, SelectionError> {
        if plans.is_empty() {
            return Err(SelectionError::EmptyFrontier);
        }
        plans
            .iter()
            .filter(|p| self.within_bounds(p.cost()))
            .min_by(|a, b| {
                self.utility(a.cost())
                    .partial_cmp(&self.utility(b.cost()))
                    .expect("finite costs")
            })
            .ok_or(SelectionError::NoPlanWithinBounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_core::model::testing::StubModel;
    use moqo_core::model::CostModel;
    use moqo_core::optimizer::{drive, Budget, NullObserver};
    use moqo_core::rmq::{Rmq, RmqConfig};
    use moqo_core::tables::TableSet;

    fn frontier(n: usize, dim: usize) -> Vec<PlanRef> {
        let model = StubModel::line(n, dim, 23);
        let cfg = RmqConfig {
            archive: moqo_core::archive::ArchiveConfig::fixed(1.0),
            ..RmqConfig::seeded(3)
        };
        let mut rmq = Rmq::new(&model, TableSet::prefix(n), cfg);
        drive(&mut rmq, Budget::Iterations(60), &mut NullObserver);
        rmq.frontier()
    }

    #[test]
    fn extreme_weights_pick_extreme_plans() {
        let f = frontier(6, 2);
        assert!(f.len() >= 2, "need a real frontier for this test");
        let fast = Preferences::weighted(&[1.0, 0.0]).select(&f).unwrap();
        let lean = Preferences::weighted(&[0.0, 1.0]).select(&f).unwrap();
        let min0 = f.iter().map(|p| p.cost()[0]).fold(f64::MAX, f64::min);
        let min1 = f.iter().map(|p| p.cost()[1]).fold(f64::MAX, f64::min);
        assert_eq!(fast.cost()[0], min0, "weight (1,0) must minimize metric 0");
        assert_eq!(lean.cost()[1], min1, "weight (0,1) must minimize metric 1");
    }

    #[test]
    fn selected_plan_is_weighted_optimal() {
        let f = frontier(6, 3);
        let prefs = Preferences::weighted(&[1.0, 2.0, 0.5]);
        let chosen = prefs.select(&f).unwrap();
        for p in &f {
            assert!(prefs.utility(chosen.cost()) <= prefs.utility(p.cost()) + 1e-12);
        }
    }

    #[test]
    fn bounds_filter_candidates() {
        let f = frontier(6, 2);
        assert!(f.len() >= 2);
        // Bound metric 0 at the frontier's median value: the fastest-by-
        // weight plan under the bound must satisfy it.
        let mut m0: Vec<f64> = f.iter().map(|p| p.cost()[0]).collect();
        m0.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let bound = m0[m0.len() / 2];
        let prefs = Preferences::weighted(&[0.0, 1.0]).with_bound(0, bound);
        let chosen = prefs.select(&f).unwrap();
        assert!(chosen.cost()[0] <= bound);
        // Among bounded plans it minimizes metric 1.
        let best1 = f
            .iter()
            .filter(|p| p.cost()[0] <= bound)
            .map(|p| p.cost()[1])
            .fold(f64::MAX, f64::min);
        assert_eq!(chosen.cost()[1], best1);
    }

    #[test]
    fn impossible_bounds_are_reported() {
        let f = frontier(5, 2);
        let prefs = Preferences::balanced(2).with_bound(0, 1e-12);
        assert_eq!(
            prefs.select(&f).err(),
            Some(SelectionError::NoPlanWithinBounds)
        );
    }

    #[test]
    fn empty_frontier_is_reported() {
        let prefs = Preferences::balanced(2);
        assert_eq!(prefs.select(&[]).err(), Some(SelectionError::EmptyFrontier));
    }

    #[test]
    fn bounds_reach_non_hull_plans() {
        // A concave "knee" plan is never the optimum of any weighted sum
        // but becomes selectable once bounds exclude the hull plans. Build
        // three synthetic plans: (1, 10), (10, 1) on the hull and (4, 4)
        // inside the hull's chord but Pareto-optimal.
        let model = StubModel::line(1, 2, 1);
        let t = moqo_core::tables::TableId::new(0);
        let mk = |_i: usize| moqo_core::plan::Plan::scan(&model, t, model.scan_ops(t)[0]);
        // Use the real plan only as a carrier; test utility math directly.
        let p = mk(0);
        let hull_a = CostVector::new(&[1.0, 10.0]);
        let hull_b = CostVector::new(&[10.0, 1.0]);
        let knee = CostVector::new(&[4.0, 4.0]);
        let _ = p;
        // For every weight vector, the knee never wins without bounds...
        for w0 in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let prefs = Preferences::weighted(&[w0, 1.0 - w0]);
            let u = [
                prefs.utility(&hull_a),
                prefs.utility(&hull_b),
                prefs.utility(&knee),
            ];
            let min_hull = u[0].min(u[1]);
            // knee utility = 4, hull min utility ≤ 5.5 for every weight;
            // at the midpoint both hull plans tie at 5.5 > 4 — the knee CAN
            // win for balanced weights (weighted sums reach it). Verify the
            // hull plans win only at extreme weights.
            if w0 == 0.0 || w0 == 1.0 {
                assert!(min_hull < u[2]);
            }
        }
        // ...but with bounds forbidding both extremes, only the knee
        // remains feasible regardless of the weights.
        let prefs = Preferences::weighted(&[1.0, 0.0])
            .with_bound(0, 9.0)
            .with_bound(1, 9.0);
        assert!(prefs.within_bounds(&knee));
        assert!(!prefs.within_bounds(&hull_a));
        assert!(!prefs.within_bounds(&hull_b));
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn all_zero_weights_rejected() {
        let _ = Preferences::weighted(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bound_index_checked() {
        let _ = Preferences::balanced(2).with_bound(5, 1.0);
    }

    #[test]
    fn accessors_expose_configuration() {
        let p = Preferences::weighted(&[2.0, 3.0]).with_bound(1, 7.5);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.weight(0), 2.0);
        assert_eq!(p.bound(0), None);
        assert_eq!(p.bound(1), Some(7.5));
        assert_eq!(p.utility(&CostVector::new(&[1.0, 1.0])), 5.0);
    }
}
