//! Anytime trajectory recording.
//!
//! The paper "measure\[s\] the approximation quality in regular intervals
//! during optimization" (§6.1) to compare algorithms over time.
//! [`TrajectoryRecorder`] implements the core [`Observer`] interface: it
//! snapshots the frontier's cost vectors at configurable wall-clock
//! checkpoints — each checkpoint holds the frontier as of the last step
//! that *completed before* the checkpoint, which matches "what would the
//! algorithm return if interrupted at time t". [`Trajectory`] turns the
//! snapshots into an α-vs-time series against a reference frontier.

use std::time::Duration;

use moqo_core::cost::CostVector;
use moqo_core::optimizer::Observer;
use moqo_core::plan::PlanRef;

use crate::reference::ReferenceFrontier;

/// Checkpoint grids.
pub mod checkpoints {
    use std::time::Duration;

    /// `count` evenly spaced checkpoints over `(0, total]`.
    pub fn linear(count: usize, total: Duration) -> Vec<Duration> {
        assert!(count >= 1);
        (1..=count)
            .map(|i| total * i as u32 / count as u32)
            .collect()
    }

    /// `count` geometrically spaced checkpoints ending at `total` (denser
    /// early, where anytime algorithms differ most).
    pub fn geometric(count: usize, total: Duration) -> Vec<Duration> {
        assert!(count >= 1);
        let total_s = total.as_secs_f64();
        let first = total_s / 2f64.powi(count as i32 - 1);
        (0..count)
            .map(|i| Duration::from_secs_f64(first * 2f64.powi(i as i32)))
            .collect()
    }
}

/// Records frontier snapshots at fixed elapsed-time checkpoints.
pub struct TrajectoryRecorder {
    checkpoints: Vec<Duration>,
    snapshots: Vec<Option<Vec<CostVector>>>,
    last_frontier: Vec<CostVector>,
    next: usize,
}

impl TrajectoryRecorder {
    /// Creates a recorder for the given (ascending) checkpoints.
    pub fn new(checkpoints: Vec<Duration>) -> Self {
        debug_assert!(checkpoints.windows(2).all(|w| w[0] <= w[1]));
        let n = checkpoints.len();
        TrajectoryRecorder {
            checkpoints,
            snapshots: vec![None; n],
            last_frontier: Vec::new(),
            next: 0,
        }
    }

    /// Finalizes: open checkpoints get the final frontier state.
    pub fn finish(mut self) -> Trajectory {
        for slot in &mut self.snapshots[self.next..] {
            *slot = Some(self.last_frontier.clone());
        }
        Trajectory {
            checkpoints: self.checkpoints,
            snapshots: self.snapshots.into_iter().map(Option::unwrap).collect(),
        }
    }
}

impl Observer for TrajectoryRecorder {
    fn on_step(
        &mut self,
        elapsed: Duration,
        _step: u64,
        frontier: &mut dyn FnMut() -> Vec<PlanRef>,
    ) {
        // Checkpoints passed before this step completed hold the previous
        // frontier (the state an interrupt at that moment would have seen).
        while self.next < self.checkpoints.len() && self.checkpoints[self.next] < elapsed {
            self.snapshots[self.next] = Some(self.last_frontier.clone());
            self.next += 1;
        }
        self.last_frontier = frontier().iter().map(|p| *p.cost()).collect();
    }
}

/// A finished anytime trajectory: one frontier snapshot per checkpoint.
#[derive(Clone, Debug)]
pub struct Trajectory {
    checkpoints: Vec<Duration>,
    snapshots: Vec<Vec<CostVector>>,
}

impl Trajectory {
    /// Constructs a trajectory directly (useful in tests).
    pub fn from_parts(checkpoints: Vec<Duration>, snapshots: Vec<Vec<CostVector>>) -> Self {
        assert_eq!(checkpoints.len(), snapshots.len());
        Trajectory {
            checkpoints,
            snapshots,
        }
    }

    /// The checkpoint grid.
    pub fn checkpoints(&self) -> &[Duration] {
        &self.checkpoints
    }

    /// The frontier snapshot at checkpoint `i`.
    pub fn snapshot(&self, i: usize) -> &[CostVector] {
        &self.snapshots[i]
    }

    /// All cost vectors that ever appeared in a snapshot (for building
    /// union reference frontiers).
    pub fn all_costs(&self) -> Vec<CostVector> {
        self.snapshots.iter().flatten().copied().collect()
    }

    /// The final snapshot's costs.
    pub fn final_costs(&self) -> &[CostVector] {
        self.snapshots.last().map_or(&[], |s| s.as_slice())
    }

    /// α at every checkpoint against `reference`.
    pub fn alpha_series(&self, reference: &ReferenceFrontier) -> Vec<f64> {
        self.snapshots
            .iter()
            .map(|s| reference.alpha_of(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_core::model::testing::StubModel;
    use moqo_core::model::CostModel;
    use moqo_core::plan::Plan;
    use moqo_core::tables::TableId;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    fn some_plan(seed: u64) -> PlanRef {
        let m = StubModel::line(1, 2, seed);
        Plan::scan(&m, TableId::new(0), m.scan_ops(TableId::new(0))[0])
    }

    #[test]
    fn checkpoint_grids() {
        let lin = checkpoints::linear(4, ms(100));
        assert_eq!(lin, vec![ms(25), ms(50), ms(75), ms(100)]);
        let geo = checkpoints::geometric(3, ms(100));
        assert_eq!(geo, vec![ms(25), ms(50), ms(100)]);
    }

    #[test]
    fn snapshots_reflect_state_before_checkpoint() {
        let mut rec = TrajectoryRecorder::new(vec![ms(10), ms(20), ms(30)]);
        let p1 = some_plan(1);
        let p2 = some_plan(2);
        // Step 1 completes at 5ms with frontier {p1}.
        rec.on_step(ms(5), 1, &mut || vec![p1.clone()]);
        // Step 2 completes at 25ms: checkpoints 10ms and 20ms passed while
        // the frontier was still {p1}.
        rec.on_step(ms(25), 2, &mut || vec![p1.clone(), p2.clone()]);
        let t = rec.finish();
        assert_eq!(t.snapshot(0).len(), 1);
        assert_eq!(t.snapshot(1).len(), 1);
        // Final checkpoint filled at finish with the last state.
        assert_eq!(t.snapshot(2).len(), 2);
        assert_eq!(t.final_costs().len(), 2);
        assert_eq!(t.all_costs().len(), 4);
    }

    #[test]
    fn empty_run_yields_empty_snapshots() {
        let rec = TrajectoryRecorder::new(vec![ms(10)]);
        let t = rec.finish();
        assert!(t.snapshot(0).is_empty());
        let r = ReferenceFrontier::from_costs(&[CostVector::new(&[1.0])]);
        assert_eq!(t.alpha_series(&r), vec![f64::INFINITY]);
    }

    #[test]
    fn alpha_series_is_non_increasing_for_growing_archives() {
        // Snapshots that only gain plans can only improve alpha.
        let c1 = CostVector::new(&[4.0, 1.0]);
        let c2 = CostVector::new(&[1.0, 4.0]);
        let t = Trajectory::from_parts(vec![ms(1), ms(2)], vec![vec![c1], vec![c1, c2]]);
        let r = ReferenceFrontier::from_costs(&[c1, c2]);
        let series = t.alpha_series(&r);
        assert!(series[0] >= series[1]);
        assert_eq!(series[1], 1.0);
    }
}
