//! Reference-frontier construction.
//!
//! For large queries, computing the true Pareto frontier is infeasible, so
//! the paper compares "against an approximation of the real Pareto frontier
//! that is obtained by running all algorithms … and taking the union of the
//! obtained result plans" (§6.1). For small queries, the exact frontier
//! from DP(α≈1) replaces the union (the appendix's "precise approximation
//! error" experiments, Figures 8–9). [`ReferenceFrontier`] covers both: it
//! is built from any collection of cost vectors and Pareto-filters them.

use moqo_core::cost::CostVector;
use moqo_core::plan::PlanRef;

use crate::epsilon::{epsilon_indicator, pareto_filter};

/// A Pareto-filtered reference frontier in cost space.
#[derive(Clone, Debug, Default)]
pub struct ReferenceFrontier {
    costs: Vec<CostVector>,
}

impl ReferenceFrontier {
    /// Builds a reference frontier from raw cost vectors (filtered here).
    pub fn from_costs(costs: &[CostVector]) -> Self {
        ReferenceFrontier {
            costs: pareto_filter(costs),
        }
    }

    /// Builds a reference frontier from the union of several plan sets.
    pub fn from_plan_sets<'a, I>(sets: I) -> Self
    where
        I: IntoIterator<Item = &'a [PlanRef]>,
    {
        let all: Vec<CostVector> = sets
            .into_iter()
            .flat_map(|s| s.iter().map(|p| *p.cost()))
            .collect();
        Self::from_costs(&all)
    }

    /// The frontier's cost vectors.
    pub fn costs(&self) -> &[CostVector] {
        &self.costs
    }

    /// Number of reference tradeoffs.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// The α quality of an approximation set against this reference: the
    /// paper's per-checkpoint measurement.
    pub fn alpha_of(&self, approx: &[CostVector]) -> f64 {
        epsilon_indicator(&self.costs, approx)
    }

    /// Convenience: α of a plan set.
    pub fn alpha_of_plans(&self, plans: &[PlanRef]) -> f64 {
        let costs: Vec<CostVector> = plans.iter().map(|p| *p.cost()).collect();
        self.alpha_of(&costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_core::model::testing::StubModel;
    use moqo_core::model::{CostModel, ScanOpId};
    use moqo_core::plan::Plan;
    use moqo_core::tables::TableId;

    fn cv(v: &[f64]) -> CostVector {
        CostVector::new(v)
    }

    #[test]
    fn union_is_filtered() {
        let r = ReferenceFrontier::from_costs(&[
            cv(&[1.0, 3.0]),
            cv(&[3.0, 1.0]),
            cv(&[2.0, 4.0]), // dominated
        ]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn alpha_against_reference() {
        let r = ReferenceFrontier::from_costs(&[cv(&[1.0, 2.0]), cv(&[2.0, 1.0])]);
        assert_eq!(r.alpha_of(r.costs()), 1.0);
        assert!((r.alpha_of(&[cv(&[2.0, 2.0])]) - 2.0).abs() < 1e-12);
        assert_eq!(r.alpha_of(&[]), f64::INFINITY);
    }

    #[test]
    fn from_plan_sets_unions_algorithm_outputs() {
        let m = StubModel::line(2, 2, 3);
        let a = vec![Plan::scan(
            &m,
            TableId::new(0),
            m.scan_ops(TableId::new(0))[0],
        )];
        let b = vec![Plan::scan(&m, TableId::new(0), ScanOpId(1))];
        let r = ReferenceFrontier::from_plan_sets([a.as_slice(), b.as_slice()]);
        // The two scan variants are incomparable tradeoffs in StubModel.
        assert_eq!(r.len(), 2);
        assert_eq!(r.alpha_of_plans(&a).max(r.alpha_of_plans(&b)), 2.0);
    }
}
