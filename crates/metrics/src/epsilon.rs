//! The multiplicative ε-indicator (the paper's α quality measure).
//!
//! For a reference frontier `R` and an approximation `A`, the indicator is
//! the smallest `α ≥ 1` such that every reference point is α-approximately
//! dominated by some point of `A`:
//!
//! `α(A, R) = max_{r ∈ R} min_{a ∈ A} max_k a_k / r_k` (clamped at 1).
//!
//! Lower is better; `α = 1` means `A` covers the whole reference frontier.
//! An empty approximation has `α = ∞` (the convention the paper's plots use
//! for DP runs that produced no result).

use moqo_core::cost::CostVector;

/// The lowest `α` such that `approx` α-approximately dominates every vector
/// of `reference`. Returns `f64::INFINITY` when `approx` is empty and
/// `reference` is not; returns `1.0` when `reference` is empty.
pub fn epsilon_indicator(reference: &[CostVector], approx: &[CostVector]) -> f64 {
    if reference.is_empty() {
        return 1.0;
    }
    if approx.is_empty() {
        return f64::INFINITY;
    }
    let mut alpha: f64 = 1.0;
    for r in reference {
        let mut best = f64::INFINITY;
        for a in approx {
            best = best.min(a.approx_factor(r));
            if best <= 1.0 {
                break;
            }
        }
        alpha = alpha.max(best);
    }
    alpha
}

/// Removes strictly dominated vectors and exact duplicates, returning the
/// Pareto frontier of `costs`.
pub fn pareto_filter(costs: &[CostVector]) -> Vec<CostVector> {
    let mut frontier: Vec<CostVector> = Vec::new();
    for c in costs {
        if frontier.iter().any(|f| f.strictly_dominates(c) || f == c) {
            continue;
        }
        frontier.retain(|f| !c.strictly_dominates(f));
        frontier.push(*c);
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cv(v: &[f64]) -> CostVector {
        CostVector::new(v)
    }

    #[test]
    fn perfect_coverage_scores_one() {
        let r = vec![cv(&[1.0, 4.0]), cv(&[3.0, 2.0])];
        assert_eq!(epsilon_indicator(&r, &r), 1.0);
        // A superset of the reference also scores 1.
        let sup = vec![cv(&[1.0, 4.0]), cv(&[3.0, 2.0]), cv(&[10.0, 10.0])];
        assert_eq!(epsilon_indicator(&r, &sup), 1.0);
    }

    #[test]
    fn missing_tradeoff_raises_alpha() {
        let r = vec![cv(&[1.0, 4.0]), cv(&[4.0, 1.0])];
        // Approximation covers only one corner; the other costs 4x in one
        // metric.
        let a = vec![cv(&[1.0, 4.0])];
        assert!((epsilon_indicator(&r, &a) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_follow_conventions() {
        let r = vec![cv(&[1.0])];
        assert_eq!(epsilon_indicator(&r, &[]), f64::INFINITY);
        assert_eq!(epsilon_indicator(&[], &r), 1.0);
    }

    #[test]
    fn scaling_costs_scales_alpha() {
        let r = vec![cv(&[1.0, 2.0]), cv(&[2.0, 1.0])];
        let a: Vec<CostVector> = r.iter().map(|c| c.scale(3.0)).collect();
        assert!((epsilon_indicator(&r, &a) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_filter_removes_dominated_and_duplicates() {
        let costs = vec![
            cv(&[1.0, 4.0]),
            cv(&[4.0, 1.0]),
            cv(&[2.0, 5.0]), // dominated by (1,4)
            cv(&[1.0, 4.0]), // duplicate
            cv(&[2.0, 2.0]),
        ];
        let f = pareto_filter(&costs);
        assert_eq!(f.len(), 3);
        for a in &f {
            for b in &f {
                if a.as_slice() != b.as_slice() {
                    assert!(!a.strictly_dominates(b));
                }
            }
        }
    }

    #[test]
    fn pareto_filter_insertion_order_independent() {
        let costs = vec![cv(&[2.0, 5.0]), cv(&[1.0, 4.0])];
        let f = pareto_filter(&costs);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].as_slice(), &[1.0, 4.0]);
    }

    fn arb_costs(dim: usize, max_len: usize) -> impl Strategy<Value = Vec<CostVector>> {
        proptest::collection::vec(
            proptest::collection::vec(0.1f64..1e3, dim).prop_map(|v| CostVector::new(&v)),
            1..max_len,
        )
    }

    proptest! {
        /// alpha(A, R) = 1 iff A covers R; adding plans to A never hurts.
        #[test]
        fn indicator_is_monotone_in_approx(r in arb_costs(2, 8), a in arb_costs(2, 8), extra in arb_costs(2, 4)) {
            let base = epsilon_indicator(&r, &a);
            let mut bigger = a.clone();
            bigger.extend(extra);
            prop_assert!(epsilon_indicator(&r, &bigger) <= base + 1e-12);
        }

        /// Self-indicator is always exactly 1.
        #[test]
        fn self_indicator_is_one(r in arb_costs(3, 8)) {
            prop_assert_eq!(epsilon_indicator(&r, &r), 1.0);
        }

        /// The filtered frontier has the same indicator as the raw set:
        /// dominated points never define coverage.
        #[test]
        fn filter_preserves_indicator(r in arb_costs(2, 8), a in arb_costs(2, 8)) {
            let filtered = pareto_filter(&a);
            let d1 = epsilon_indicator(&r, &a);
            let d2 = epsilon_indicator(&r, &filtered);
            prop_assert!((d1 - d2).abs() < 1e-9, "{d1} vs {d2}");
        }

        /// Filtering reference to its Pareto frontier can only weakly
        /// reduce the indicator (dominated reference points are easier to
        /// cover... they are covered iff their dominators are within the
        /// same factor, so alpha over the filtered set is <= raw alpha).
        #[test]
        fn filtered_reference_not_harder(r in arb_costs(2, 8), a in arb_costs(2, 8)) {
            let fr = pareto_filter(&r);
            prop_assert!(epsilon_indicator(&fr, &a) <= epsilon_indicator(&r, &a) + 1e-12);
        }
    }
}
