//! ASCII visualization of Pareto frontiers.
//!
//! The paper's interactive scenario (§1/§4.1, citing \[19\]) presents "a
//! visualization of the available tradeoffs" to the user, who then selects
//! a plan. This module renders that visualization for terminals: a 2-D
//! scatter plot of cost vectors on optionally log-scaled axes, and a
//! tabular listing of the frontier. Both renderers are deterministic, so
//! tests can assert on their output.

use moqo_core::cost::CostVector;
use moqo_core::model::CostModel;
use moqo_core::plan::PlanRef;

/// Configuration for the scatter renderer.
#[derive(Clone, Copy, Debug)]
pub struct ScatterConfig {
    /// Plot width in characters (axis included).
    pub width: usize,
    /// Plot height in characters (axis included).
    pub height: usize,
    /// Metric index on the x axis.
    pub x_metric: usize,
    /// Metric index on the y axis.
    pub y_metric: usize,
    /// Log-scale both axes (plan costs commonly span orders of magnitude).
    pub log_scale: bool,
}

impl Default for ScatterConfig {
    fn default() -> Self {
        ScatterConfig {
            width: 60,
            height: 20,
            x_metric: 0,
            y_metric: 1,
            log_scale: true,
        }
    }
}

fn axis_value(v: f64, log: bool) -> f64 {
    if log {
        v.max(f64::MIN_POSITIVE).ln()
    } else {
        v
    }
}

/// Renders cost vectors as a 2-D ASCII scatter plot. Points that fall on
/// the same character cell are merged; cells holding multiple points are
/// drawn as `*`, single points as `o`.
///
/// # Panics
/// Panics if the configured metric indices are out of range for the given
/// cost vectors, or if the plot area is degenerate (width/height < 8).
pub fn scatter(costs: &[CostVector], cfg: &ScatterConfig) -> String {
    assert!(cfg.width >= 8 && cfg.height >= 8, "plot area too small");
    let mut out = String::new();
    if costs.is_empty() {
        out.push_str("(empty frontier)\n");
        return out;
    }
    for c in costs {
        assert!(
            cfg.x_metric < c.dim() && cfg.y_metric < c.dim(),
            "metric index out of range"
        );
    }
    let xs: Vec<f64> = costs
        .iter()
        .map(|c| axis_value(c[cfg.x_metric], cfg.log_scale))
        .collect();
    let ys: Vec<f64> = costs
        .iter()
        .map(|c| axis_value(c[cfg.y_metric], cfg.log_scale))
        .collect();
    let (xmin, xmax) = min_max(&xs);
    let (ymin, ymax) = min_max(&ys);
    let plot_w = cfg.width - 2;
    let plot_h = cfg.height - 2;
    let scale = |v: f64, lo: f64, hi: f64, cells: usize| -> usize {
        if hi - lo < 1e-300 {
            0
        } else {
            (((v - lo) / (hi - lo)) * (cells - 1) as f64).round() as usize
        }
    };
    let mut grid = vec![vec![b' '; plot_w]; plot_h];
    for (x, y) in xs.iter().zip(&ys) {
        let col = scale(*x, xmin, xmax, plot_w);
        // Higher cost = higher row index in data space, but rows render
        // top-down: flip so that cheap-y plans sit at the bottom.
        let row = plot_h - 1 - scale(*y, ymin, ymax, plot_h);
        grid[row][col] = match grid[row][col] {
            b' ' => b'o',
            _ => b'*',
        };
    }
    for row in &grid {
        out.push('|');
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(plot_w));
    out.push('\n');
    out
}

/// Renders a labeled scatter plot of a plan frontier with axis captions
/// taken from the cost model's metric names.
pub fn scatter_plans<M: CostModel + ?Sized>(
    plans: &[PlanRef],
    model: &M,
    cfg: &ScatterConfig,
) -> String {
    let costs: Vec<CostVector> = plans.iter().map(|p| *p.cost()).collect();
    let mut out = format!(
        "{} (y) vs {} (x){} — {} plan(s)\n",
        model.metric_name(cfg.y_metric),
        model.metric_name(cfg.x_metric),
        if cfg.log_scale { ", log-log" } else { "" },
        plans.len()
    );
    out.push_str(&scatter(&costs, cfg));
    out
}

/// Renders the frontier as a table: one row per plan, one column per
/// metric, plans sorted by the first metric. The table is what the
/// interactive scenario's user would pick from.
pub fn frontier_table<M: CostModel + ?Sized>(plans: &[PlanRef], model: &M) -> String {
    if plans.is_empty() {
        return "(empty frontier)\n".to_string();
    }
    let dim = plans[0].cost().dim();
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by(|&a, &b| {
        plans[a].cost()[0]
            .partial_cmp(&plans[b].cost()[0])
            .expect("finite costs")
    });
    let mut out = String::from("  # ");
    for k in 0..dim {
        out.push_str(&format!("{:>14}", model.metric_name(k)));
    }
    out.push_str("  plan\n");
    for (rank, &i) in order.iter().enumerate() {
        out.push_str(&format!("{:>3} ", rank + 1));
        for k in 0..dim {
            out.push_str(&format!("{:>14.3}", plans[i].cost()[k]));
        }
        out.push_str("  ");
        out.push_str(&plans[i].display(model));
        out.push('\n');
    }
    out
}

fn min_max(vs: &[f64]) -> (f64, f64) {
    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    for &v in vs {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_core::model::testing::StubModel;
    use moqo_core::optimizer::{drive, Budget, NullObserver};
    use moqo_core::rmq::{Rmq, RmqConfig};
    use moqo_core::tables::TableSet;

    fn costs(points: &[(f64, f64)]) -> Vec<CostVector> {
        points
            .iter()
            .map(|&(x, y)| CostVector::new(&[x, y]))
            .collect()
    }

    #[test]
    fn empty_frontier_renders_placeholder() {
        let cfg = ScatterConfig::default();
        assert!(scatter(&[], &cfg).contains("empty frontier"));
    }

    #[test]
    fn plot_dimensions_match_config() {
        let cfg = ScatterConfig {
            width: 30,
            height: 10,
            ..ScatterConfig::default()
        };
        let s = scatter(&costs(&[(1.0, 2.0), (2.0, 1.0)]), &cfg);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 9, "8 plot rows + 1 axis row");
        for l in &lines[..8] {
            assert_eq!(l.len(), 29, "1 axis col + 28 plot cols");
            assert!(l.starts_with('|'));
        }
        assert!(lines[8].starts_with('+'));
    }

    #[test]
    fn tradeoff_points_land_on_the_antidiagonal() {
        // Two extreme tradeoff points: (cheap x, dear y) must render in the
        // top-left and (dear x, cheap y) in the bottom-right.
        let cfg = ScatterConfig {
            width: 12,
            height: 10,
            log_scale: false,
            ..ScatterConfig::default()
        };
        let s = scatter(&costs(&[(1.0, 100.0), (100.0, 1.0)]), &cfg);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].chars().nth(1), Some('o'), "top-left point");
        let last_plot = lines[7];
        assert_eq!(last_plot.chars().last(), Some('o'), "bottom-right point");
    }

    #[test]
    fn coincident_points_merge_to_star() {
        let cfg = ScatterConfig {
            width: 10,
            height: 8,
            log_scale: false,
            ..ScatterConfig::default()
        };
        let s = scatter(&costs(&[(1.0, 1.0), (1.0, 1.0), (5.0, 5.0)]), &cfg);
        assert!(s.contains('*'), "duplicate cell must render as *:\n{s}");
        assert!(s.contains('o'), "singleton cell must render as o:\n{s}");
    }

    #[test]
    fn log_scale_spreads_wide_ranges() {
        // With costs spanning 6 orders of magnitude, linear scaling crams
        // the small points into one column; log scaling separates them.
        let pts = costs(&[(1.0, 1.0), (10.0, 10.0), (1e6, 1e6)]);
        let lin = ScatterConfig {
            log_scale: false,
            width: 40,
            height: 12,
            ..ScatterConfig::default()
        };
        let log = ScatterConfig {
            log_scale: true,
            ..lin
        };
        let occupied = |s: &str| {
            s.lines()
                .flat_map(|l| l.chars().enumerate())
                .filter(|(_, c)| *c == 'o' || *c == '*')
                .map(|(i, _)| i)
                .collect::<std::collections::HashSet<usize>>()
                .len()
        };
        assert!(occupied(&scatter(&pts, &log)) >= occupied(&scatter(&pts, &lin)));
        assert_eq!(occupied(&scatter(&pts, &log)), 3, "log separates all 3");
    }

    #[test]
    fn degenerate_single_point_does_not_panic() {
        let cfg = ScatterConfig::default();
        let s = scatter(&costs(&[(3.0, 4.0)]), &cfg);
        assert_eq!(s.matches('o').count(), 1);
    }

    #[test]
    #[should_panic(expected = "metric index out of range")]
    fn metric_bounds_checked() {
        let cfg = ScatterConfig {
            y_metric: 5,
            ..ScatterConfig::default()
        };
        let _ = scatter(&costs(&[(1.0, 2.0)]), &cfg);
    }

    #[test]
    fn table_sorts_by_first_metric_and_names_columns() {
        let model = StubModel::line(5, 2, 3);
        let mut rmq = Rmq::new(&model, TableSet::prefix(5), RmqConfig::seeded(4));
        drive(&mut rmq, Budget::Iterations(30), &mut NullObserver);
        let f = rmq.frontier();
        let t = frontier_table(&f, &model);
        assert!(t.contains("m0") && t.contains("m1"), "metric headers:\n{t}");
        // Rows sorted ascending in metric 0.
        let col0: Vec<f64> = t
            .lines()
            .skip(1)
            .filter_map(|l| l.split_whitespace().nth(1)?.parse().ok())
            .collect();
        assert_eq!(col0.len(), f.len());
        for w in col0.windows(2) {
            assert!(w[0] <= w[1], "rows out of order: {col0:?}");
        }
    }

    #[test]
    fn scatter_plans_labels_axes() {
        let model = StubModel::line(4, 2, 5);
        let mut rmq = Rmq::new(&model, TableSet::prefix(4), RmqConfig::seeded(6));
        drive(&mut rmq, Budget::Iterations(20), &mut NullObserver);
        let s = scatter_plans(&rmq.frontier(), &model, &ScatterConfig::default());
        assert!(s.starts_with("m1 (y) vs m0 (x)"));
        assert!(s.contains("log-log"));
    }
}
