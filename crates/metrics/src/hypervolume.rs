//! Hypervolume indicator (extension).
//!
//! The volume of the cost-space region dominated by a frontier, bounded by
//! a reference point — the other standard quality measure in multi-objective
//! optimization, used here to cross-check ε-indicator rankings. Exact sweep
//! for two metrics; the "hypervolume by slicing objectives" scheme for
//! three or more (adequate for the small frontiers that query optimization
//! produces).

use moqo_core::cost::CostVector;

use crate::epsilon::pareto_filter;

/// Hypervolume of `points` with respect to `reference` (worse than every
/// point in every metric). Points not strictly below the reference point in
/// some metric contribute no volume in that direction; dominated points are
/// filtered out first. Returns 0 for an empty set.
///
/// # Panics
/// Panics if dimensions are inconsistent.
pub fn hypervolume(points: &[CostVector], reference: &CostVector) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let dim = reference.dim();
    assert!(points.iter().all(|p| p.dim() == dim));
    // Clamp points into the reference box; dominated points add nothing.
    let frontier = pareto_filter(points);
    let clamped: Vec<Vec<f64>> = frontier
        .iter()
        .map(|p| (0..dim).map(|k| p[k].min(reference[k])).collect())
        .collect();
    hv_rec(&clamped, reference.as_slice())
}

fn hv_rec(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let dim = reference.len();
    match dim {
        1 => {
            let best = points.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
            (reference[0] - best).max(0.0)
        }
        2 => hv2(points, reference),
        _ => {
            // Slice along the last objective.
            let last = dim - 1;
            let mut order: Vec<usize> = (0..points.len()).collect();
            order.sort_by(|&a, &b| points[a][last].total_cmp(&points[b][last]));
            let mut volume = 0.0;
            for (rank, &idx) in order.iter().enumerate() {
                let z_lo = points[idx][last];
                let z_hi = order
                    .get(rank + 1)
                    .map_or(reference[last], |&next| points[next][last]);
                let depth = (z_hi - z_lo).max(0.0);
                if depth == 0.0 {
                    continue;
                }
                // All points at or below z_lo participate in this slab.
                let slab: Vec<Vec<f64>> = order[..=rank]
                    .iter()
                    .map(|&i| points[i][..last].to_vec())
                    .collect();
                volume += hv_rec(&slab, &reference[..last]) * depth;
            }
            volume
        }
    }
}

fn hv2(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts: Vec<(f64, f64)> = points.iter().map(|p| (p[0], p[1])).collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut volume = 0.0;
    let mut y_bound = reference[1];
    for (x, y) in pts {
        if y < y_bound {
            volume += (reference[0] - x).max(0.0) * (y_bound - y);
            y_bound = y;
        }
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cv(v: &[f64]) -> CostVector {
        CostVector::new(v)
    }

    #[test]
    fn single_point_rectangle() {
        let hv = hypervolume(&[cv(&[1.0, 2.0])], &cv(&[3.0, 4.0]));
        assert!((hv - (3.0 - 1.0) * (4.0 - 2.0)).abs() < 1e-12);
    }

    #[test]
    fn two_point_staircase() {
        // (1,3) and (2,1) vs ref (4,4): 2x1 + 1x3... compute: sweep x asc:
        // (1,3): (4-1)*(4-3)=3; (2,1): (4-2)*(3-1)=4; total 7.
        let hv = hypervolume(&[cv(&[1.0, 3.0]), cv(&[2.0, 1.0])], &cv(&[4.0, 4.0]));
        assert!((hv - 7.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_add_nothing() {
        let base = hypervolume(&[cv(&[1.0, 1.0])], &cv(&[2.0, 2.0]));
        let with_dominated = hypervolume(&[cv(&[1.0, 1.0]), cv(&[1.5, 1.5])], &cv(&[2.0, 2.0]));
        assert!((base - with_dominated).abs() < 1e-12);
    }

    #[test]
    fn empty_and_out_of_box() {
        assert_eq!(hypervolume(&[], &cv(&[1.0, 1.0])), 0.0);
        // A point beyond the reference contributes zero volume.
        let hv = hypervolume(&[cv(&[5.0, 5.0])], &cv(&[1.0, 1.0]));
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn one_dimensional_case() {
        let hv = hypervolume(&[cv(&[2.0]), cv(&[3.0])], &cv(&[10.0]));
        assert!((hv - 8.0).abs() < 1e-12);
    }

    #[test]
    fn three_dimensional_box_union() {
        // Two boxes: (1,1,1) and (2,2,0.5) vs ref (3,3,3).
        // Box A: 2*2*2 = 8. Box B: 1*1*2.5 = 2.5. Intersection: 1*1*2 = 2.
        // Union = 8.5.
        let hv = hypervolume(
            &[cv(&[1.0, 1.0, 1.0]), cv(&[2.0, 2.0, 0.5])],
            &cv(&[3.0, 3.0, 3.0]),
        );
        assert!((hv - 8.5).abs() < 1e-9, "hv = {hv}");
    }

    proptest! {
        /// Hypervolume is monotone: adding points never shrinks it.
        #[test]
        fn monotone_in_points(
            a in proptest::collection::vec(proptest::collection::vec(0.1f64..9.0, 2), 1..6),
            b in proptest::collection::vec(0.1f64..9.0, 2),
        ) {
            let pts: Vec<CostVector> = a.iter().map(|v| CostVector::new(v)).collect();
            let reference = cv(&[10.0, 10.0]);
            let before = hypervolume(&pts, &reference);
            let mut more = pts.clone();
            more.push(CostVector::new(&b));
            prop_assert!(hypervolume(&more, &reference) >= before - 1e-9);
        }

        /// 3-D slicing agrees with 2-D sweep when the third coordinate is
        /// constant: hv3 = hv2 * depth.
        #[test]
        fn slicing_consistent_with_sweep(
            a in proptest::collection::vec(proptest::collection::vec(0.1f64..9.0, 2), 1..6),
            z in 0.1f64..5.0,
        ) {
            let flat: Vec<CostVector> = a.iter().map(|v| {
                CostVector::new(&[v[0], v[1], z])
            }).collect();
            let hv3 = hypervolume(&flat, &cv(&[10.0, 10.0, 10.0]));
            let flat2: Vec<CostVector> = a.iter().map(|v| CostVector::new(v)).collect();
            let hv2 = hypervolume(&flat2, &cv(&[10.0, 10.0]));
            prop_assert!((hv3 - hv2 * (10.0 - z)).abs() < 1e-6, "{hv3} vs {}", hv2 * (10.0 - z));
        }
    }
}
