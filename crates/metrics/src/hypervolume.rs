//! Hypervolume indicator (extension).
//!
//! The volume of the cost-space region dominated by a frontier, bounded by
//! a reference point — the other standard quality measure in multi-objective
//! optimization, used here to cross-check ε-indicator rankings. Exact sweep
//! for two metrics; the "hypervolume by slicing objectives" scheme for
//! three or more (adequate for the small frontiers that query optimization
//! produces).

use moqo_core::cost::CostVector;

use crate::epsilon::pareto_filter;

/// Hypervolume of `points` with respect to `reference` (worse than every
/// point in every metric). Points not strictly below the reference point in
/// some metric contribute no volume in that direction; dominated points are
/// filtered out first. Returns 0 for an empty set.
///
/// # Panics
/// Panics if dimensions are inconsistent.
pub fn hypervolume(points: &[CostVector], reference: &CostVector) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let dim = reference.dim();
    assert!(points.iter().all(|p| p.dim() == dim));
    // Clamp points into the reference box; dominated points add nothing.
    let frontier = pareto_filter(points);
    let clamped: Vec<Vec<f64>> = frontier
        .iter()
        .map(|p| (0..dim).map(|k| p[k].min(reference[k])).collect())
        .collect();
    hv_rec(&clamped, reference.as_slice())
}

/// An incremental hypervolume tracker: feeds a stream of cost vectors,
/// maintains only the non-dominated survivors, and recomputes the
/// hypervolume lazily — and only when an insertion actually changed the
/// frontier. This is the shape convergence telemetry needs: checkpoints
/// ask for the hypervolume many times, but between checkpoints most
/// candidate points are dominated and cost one screening pass, no
/// recompute.
#[derive(Clone, Debug)]
pub struct HvTracker {
    reference: CostVector,
    frontier: Vec<CostVector>,
    cached: f64,
    dirty: bool,
}

impl HvTracker {
    /// A tracker with the given reference point (worse than every point it
    /// will see, in every metric).
    pub fn new(reference: CostVector) -> Self {
        HvTracker {
            reference,
            frontier: Vec::new(),
            cached: 0.0,
            dirty: false,
        }
    }

    /// Offers one point. Returns `true` if the frontier changed (the point
    /// was non-dominated); dominated or duplicate points are screened out
    /// in one pass without touching the cached volume.
    ///
    /// # Panics
    /// Panics if the point's dimension differs from the reference point's.
    pub fn insert(&mut self, point: &CostVector) -> bool {
        assert_eq!(point.dim(), self.reference.dim());
        if self.frontier.iter().any(|m| m.dominates(point)) {
            return false;
        }
        self.frontier.retain(|m| !point.dominates(m));
        self.frontier.push(*point);
        self.dirty = true;
        true
    }

    /// Offers every point in `points`; returns how many changed the
    /// frontier.
    pub fn insert_all(&mut self, points: &[CostVector]) -> usize {
        points.iter().filter(|p| self.insert(p)).count()
    }

    /// The hypervolume of the current frontier, recomputed only if an
    /// insertion changed it since the last call.
    pub fn hypervolume(&mut self) -> f64 {
        if self.dirty {
            self.cached = hypervolume(&self.frontier, &self.reference);
            self.dirty = false;
        }
        self.cached
    }

    /// Current non-dominated survivors (unordered).
    pub fn frontier(&self) -> &[CostVector] {
        &self.frontier
    }

    /// Number of non-dominated survivors.
    pub fn len(&self) -> usize {
        self.frontier.len()
    }

    /// Whether no point has survived yet.
    pub fn is_empty(&self) -> bool {
        self.frontier.is_empty()
    }
}

/// Given a quality-over-time curve of `(instant, hypervolume)` samples
/// with non-decreasing instants, returns the first instant at which the
/// hypervolume reached `fraction` of the final sample's value (`None` for
/// an empty curve or a final hypervolume of zero). This is the
/// time-to-90%-of-final-hypervolume statistic when called with 0.9.
pub fn time_to_fraction(curve: &[(f64, f64)], fraction: f64) -> Option<f64> {
    let (_, last) = curve.last()?;
    if *last <= 0.0 {
        return None;
    }
    let threshold = last * fraction;
    curve
        .iter()
        .find(|(_, hv)| *hv >= threshold)
        .map(|(t, _)| *t)
}

fn hv_rec(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let dim = reference.len();
    match dim {
        1 => {
            let best = points.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
            (reference[0] - best).max(0.0)
        }
        2 => hv2(points, reference),
        _ => {
            // Slice along the last objective.
            let last = dim - 1;
            let mut order: Vec<usize> = (0..points.len()).collect();
            order.sort_by(|&a, &b| points[a][last].total_cmp(&points[b][last]));
            let mut volume = 0.0;
            for (rank, &idx) in order.iter().enumerate() {
                let z_lo = points[idx][last];
                let z_hi = order
                    .get(rank + 1)
                    .map_or(reference[last], |&next| points[next][last]);
                let depth = (z_hi - z_lo).max(0.0);
                if depth == 0.0 {
                    continue;
                }
                // All points at or below z_lo participate in this slab.
                let slab: Vec<Vec<f64>> = order[..=rank]
                    .iter()
                    .map(|&i| points[i][..last].to_vec())
                    .collect();
                volume += hv_rec(&slab, &reference[..last]) * depth;
            }
            volume
        }
    }
}

fn hv2(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts: Vec<(f64, f64)> = points.iter().map(|p| (p[0], p[1])).collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut volume = 0.0;
    let mut y_bound = reference[1];
    for (x, y) in pts {
        if y < y_bound {
            volume += (reference[0] - x).max(0.0) * (y_bound - y);
            y_bound = y;
        }
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cv(v: &[f64]) -> CostVector {
        CostVector::new(v)
    }

    #[test]
    fn single_point_rectangle() {
        let hv = hypervolume(&[cv(&[1.0, 2.0])], &cv(&[3.0, 4.0]));
        assert!((hv - (3.0 - 1.0) * (4.0 - 2.0)).abs() < 1e-12);
    }

    #[test]
    fn two_point_staircase() {
        // (1,3) and (2,1) vs ref (4,4): 2x1 + 1x3... compute: sweep x asc:
        // (1,3): (4-1)*(4-3)=3; (2,1): (4-2)*(3-1)=4; total 7.
        let hv = hypervolume(&[cv(&[1.0, 3.0]), cv(&[2.0, 1.0])], &cv(&[4.0, 4.0]));
        assert!((hv - 7.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_add_nothing() {
        let base = hypervolume(&[cv(&[1.0, 1.0])], &cv(&[2.0, 2.0]));
        let with_dominated = hypervolume(&[cv(&[1.0, 1.0]), cv(&[1.5, 1.5])], &cv(&[2.0, 2.0]));
        assert!((base - with_dominated).abs() < 1e-12);
    }

    #[test]
    fn empty_and_out_of_box() {
        assert_eq!(hypervolume(&[], &cv(&[1.0, 1.0])), 0.0);
        // A point beyond the reference contributes zero volume.
        let hv = hypervolume(&[cv(&[5.0, 5.0])], &cv(&[1.0, 1.0]));
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn one_dimensional_case() {
        let hv = hypervolume(&[cv(&[2.0]), cv(&[3.0])], &cv(&[10.0]));
        assert!((hv - 8.0).abs() < 1e-12);
    }

    #[test]
    fn three_dimensional_box_union() {
        // Two boxes: (1,1,1) and (2,2,0.5) vs ref (3,3,3).
        // Box A: 2*2*2 = 8. Box B: 1*1*2.5 = 2.5. Intersection: 1*1*2 = 2.
        // Union = 8.5.
        let hv = hypervolume(
            &[cv(&[1.0, 1.0, 1.0]), cv(&[2.0, 2.0, 0.5])],
            &cv(&[3.0, 3.0, 3.0]),
        );
        assert!((hv - 8.5).abs() < 1e-9, "hv = {hv}");
    }

    #[test]
    fn tracker_matches_batch_hypervolume() {
        let reference = cv(&[10.0, 10.0]);
        let stream = [
            cv(&[5.0, 5.0]),
            cv(&[6.0, 6.0]), // dominated
            cv(&[2.0, 8.0]),
            cv(&[5.0, 5.0]), // duplicate
            cv(&[8.0, 2.0]),
            cv(&[1.0, 1.0]), // dominates everything so far
        ];
        let mut tracker = HvTracker::new(reference);
        assert!(tracker.is_empty());
        assert_eq!(tracker.hypervolume(), 0.0);
        let mut changes = 0;
        for p in &stream {
            if tracker.insert(p) {
                changes += 1;
            }
            let recomputed = hypervolume(tracker.frontier(), &reference);
            assert!((tracker.hypervolume() - recomputed).abs() < 1e-12);
        }
        assert_eq!(changes, 4, "two offers were screened out");
        assert_eq!(tracker.len(), 1, "the last point dominates the rest");
        let batch = hypervolume(&stream, &reference);
        assert!((tracker.hypervolume() - batch).abs() < 1e-12);
    }

    #[test]
    fn tracker_insert_all_counts_survivors() {
        let mut tracker = HvTracker::new(cv(&[4.0, 4.0]));
        let n = tracker.insert_all(&[cv(&[1.0, 3.0]), cv(&[2.0, 1.0]), cv(&[3.0, 3.0])]);
        assert_eq!(n, 2);
        assert_eq!(tracker.len(), 2);
        assert!((tracker.hypervolume() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn time_to_fraction_finds_first_crossing() {
        let curve = [(1.0, 0.0), (2.0, 5.0), (4.0, 9.5), (8.0, 10.0)];
        assert_eq!(time_to_fraction(&curve, 0.9), Some(4.0));
        assert_eq!(time_to_fraction(&curve, 0.5), Some(2.0));
        assert_eq!(time_to_fraction(&curve, 1.0), Some(8.0));
        assert_eq!(time_to_fraction(&[], 0.9), None);
        assert_eq!(time_to_fraction(&[(1.0, 0.0)], 0.9), None);
    }

    proptest! {
        /// Hypervolume is monotone: adding points never shrinks it.
        #[test]
        fn monotone_in_points(
            a in proptest::collection::vec(proptest::collection::vec(0.1f64..9.0, 2), 1..6),
            b in proptest::collection::vec(0.1f64..9.0, 2),
        ) {
            let pts: Vec<CostVector> = a.iter().map(|v| CostVector::new(v)).collect();
            let reference = cv(&[10.0, 10.0]);
            let before = hypervolume(&pts, &reference);
            let mut more = pts.clone();
            more.push(CostVector::new(&b));
            prop_assert!(hypervolume(&more, &reference) >= before - 1e-9);
        }

        /// 3-D slicing agrees with 2-D sweep when the third coordinate is
        /// constant: hv3 = hv2 * depth.
        #[test]
        fn slicing_consistent_with_sweep(
            a in proptest::collection::vec(proptest::collection::vec(0.1f64..9.0, 2), 1..6),
            z in 0.1f64..5.0,
        ) {
            let flat: Vec<CostVector> = a.iter().map(|v| {
                CostVector::new(&[v[0], v[1], z])
            }).collect();
            let hv3 = hypervolume(&flat, &cv(&[10.0, 10.0, 10.0]));
            let flat2: Vec<CostVector> = a.iter().map(|v| CostVector::new(v)).collect();
            let hv2 = hypervolume(&flat2, &cv(&[10.0, 10.0]));
            prop_assert!((hv3 - hv2 * (10.0 - z)).abs() < 1e-6, "{hv3} vs {}", hv2 * (10.0 - z));
        }
    }
}
