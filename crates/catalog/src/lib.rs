//! # moqo-catalog — database catalog substrate
//!
//! The paper models a query as a set of tables to be joined (§3); what the
//! cost models need beyond that is a *catalog*: per-table cardinalities and
//! a join graph annotating table pairs with predicate selectivities. This
//! crate provides that substrate: [`Catalog`] (tables + join edges),
//! [`CatalogBuilder`], and [`Query`] (a validated table set over a catalog).
//!
//! Selectivities between *sets* of tables follow the textbook independence
//! assumption: the joint selectivity of joining table set `A` with table set
//! `B` is the product of the edge selectivities crossing the cut — table
//! pairs without a join predicate contribute factor 1 (cross product), which
//! realizes the paper's *unconstrained* bushy plan space (§6.1).

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;

use moqo_core::tables::{TableId, TableSet, MAX_TABLES};

/// Metadata of one base table.
#[derive(Clone, Debug)]
pub struct TableMeta {
    /// Human-readable table name.
    pub name: String,
    /// Base cardinality in rows.
    pub rows: f64,
}

/// A join-graph edge: a predicate between two tables with a selectivity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinEdge {
    /// One endpoint.
    pub a: TableId,
    /// The other endpoint.
    pub b: TableId,
    /// Predicate selectivity in `(0, 1]`.
    pub selectivity: f64,
}

/// A database catalog: tables with cardinalities plus a join graph.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: Vec<TableMeta>,
    /// Adjacency list: `adj[t]` holds `(neighbor, selectivity)` pairs.
    adj: Vec<Vec<(TableId, f64)>>,
    edges: Vec<JoinEdge>,
}

impl Catalog {
    /// Starts building a catalog.
    pub fn builder() -> CatalogBuilder {
        CatalogBuilder::default()
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Metadata of table `t`.
    ///
    /// # Panics
    /// Panics if `t` is not a table of this catalog.
    pub fn table(&self, t: TableId) -> &TableMeta {
        &self.tables[t.index()]
    }

    /// Base cardinality of table `t` in rows.
    pub fn rows(&self, t: TableId) -> f64 {
        self.tables[t.index()].rows
    }

    /// All join edges.
    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    /// The `(neighbor, selectivity)` pairs of table `t`.
    pub fn neighbors(&self, t: TableId) -> &[(TableId, f64)] {
        &self.adj[t.index()]
    }

    /// Selectivity of the predicate between `a` and `b`; `1.0` when no
    /// predicate exists (cross product).
    pub fn selectivity(&self, a: TableId, b: TableId) -> f64 {
        self.adj[a.index()]
            .iter()
            .find(|(n, _)| *n == b)
            .map_or(1.0, |(_, s)| *s)
    }

    /// Joint selectivity of joining table set `a` with table set `b`:
    /// the product of edge selectivities crossing the cut (independence
    /// assumption).
    ///
    /// # Panics
    /// Panics in debug builds if the sets overlap.
    pub fn joint_selectivity(&self, a: TableSet, b: TableSet) -> f64 {
        debug_assert!(a.is_disjoint(b), "joint selectivity of overlapping sets");
        // Iterate neighbors of the smaller side for speed.
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        let mut sel = 1.0;
        for t in small.iter() {
            for &(n, s) in &self.adj[t.index()] {
                if large.contains(n) {
                    sel *= s;
                }
            }
        }
        sel
    }

    /// The set of all tables in the catalog.
    pub fn all_tables(&self) -> TableSet {
        TableSet::prefix(self.tables.len())
    }

    /// A stable 64-bit fingerprint of the catalog's contents (table names,
    /// cardinalities, and join edges with selectivities, in declaration
    /// order). Catalogs built through the same construction sequence get
    /// the same fingerprint; the hash is order-sensitive, so logically
    /// identical catalogs assembled in a different table/edge order
    /// fingerprint differently (a safe false-negative for cache keying —
    /// never a false sharing). This keys caches that share optimizer
    /// state *across queries over the same database* — partial plans
    /// costed against one catalog are only meaningful for sessions seeing
    /// identical statistics. Cost-model configuration is *not* part of the
    /// catalog;
    /// combine this with a model discriminator when the cache key must
    /// distinguish cost semantics (see `moqo-service`).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical byte rendering.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(self.tables.len() as u64).to_le_bytes());
        for t in &self.tables {
            eat(t.name.as_bytes());
            eat(&[0xff]); // name terminator
            eat(&t.rows.to_bits().to_le_bytes());
        }
        eat(&(self.edges.len() as u64).to_le_bytes());
        for e in &self.edges {
            eat(&[e.a.index() as u8, e.b.index() as u8]);
            eat(&e.selectivity.to_bits().to_le_bytes());
        }
        h
    }

    /// Whether the join graph restricted to `q` is connected (queries over
    /// disconnected sets require cross products).
    pub fn is_connected(&self, q: TableSet) -> bool {
        let Some(start) = q.first() else {
            return true;
        };
        let mut seen = TableSet::singleton(start);
        let mut stack = vec![start];
        while let Some(t) = stack.pop() {
            for &(n, _) in &self.adj[t.index()] {
                if q.contains(n) && !seen.contains(n) {
                    seen = seen.with(n);
                    stack.push(n);
                }
            }
        }
        seen == q
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Catalog: {} tables, {} edges",
            self.tables.len(),
            self.edges.len()
        )?;
        for (i, t) in self.tables.iter().enumerate() {
            writeln!(f, "  T{i} {} ({} rows)", t.name, t.rows)?;
        }
        Ok(())
    }
}

/// Incremental [`Catalog`] construction.
#[derive(Default)]
pub struct CatalogBuilder {
    tables: Vec<TableMeta>,
    edges: Vec<JoinEdge>,
}

impl CatalogBuilder {
    /// Adds a table, returning its id.
    ///
    /// # Panics
    /// Panics if the catalog is full ([`MAX_TABLES`]) or `rows` is not a
    /// positive finite number.
    pub fn add_table(&mut self, name: impl Into<String>, rows: f64) -> TableId {
        assert!(self.tables.len() < MAX_TABLES, "catalog full");
        assert!(
            rows.is_finite() && rows >= 1.0,
            "invalid cardinality {rows}"
        );
        let id = TableId::new(self.tables.len());
        self.tables.push(TableMeta {
            name: name.into(),
            rows,
        });
        id
    }

    /// Adds a join predicate between `a` and `b` with the given selectivity.
    ///
    /// # Panics
    /// Panics if the selectivity is outside `(0, 1]`, the endpoints
    /// coincide, or an edge between the pair already exists.
    pub fn add_join(&mut self, a: TableId, b: TableId, selectivity: f64) -> &mut Self {
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selectivity {selectivity} outside (0, 1]"
        );
        assert_ne!(a, b, "self-join edge");
        assert!(a.index() < self.tables.len() && b.index() < self.tables.len());
        assert!(
            !self
                .edges
                .iter()
                .any(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a)),
            "duplicate edge {a}-{b}"
        );
        self.edges.push(JoinEdge { a, b, selectivity });
        self
    }

    /// Finalizes the catalog.
    pub fn build(self) -> Catalog {
        let mut adj = vec![Vec::new(); self.tables.len()];
        for e in &self.edges {
            adj[e.a.index()].push((e.b, e.selectivity));
            adj[e.b.index()].push((e.a, e.selectivity));
        }
        Catalog {
            tables: self.tables,
            adj,
            edges: self.edges,
        }
    }
}

/// A validated query: a non-empty set of catalog tables to join.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Query {
    tables: TableSet,
}

impl Query {
    /// A query joining all tables of `catalog`.
    ///
    /// # Panics
    /// Panics if the catalog is empty.
    pub fn all(catalog: &Catalog) -> Self {
        assert!(catalog.num_tables() > 0, "empty catalog");
        Query {
            tables: catalog.all_tables(),
        }
    }

    /// A query over an explicit table set.
    ///
    /// # Errors
    /// Fails if the set is empty or references tables outside the catalog.
    pub fn new(catalog: &Catalog, tables: TableSet) -> Result<Self, QueryError> {
        if tables.is_empty() {
            return Err(QueryError::Empty);
        }
        if !tables.is_subset(catalog.all_tables()) {
            return Err(QueryError::UnknownTables(
                tables.difference(catalog.all_tables()),
            ));
        }
        Ok(Query { tables })
    }

    /// The tables to join.
    pub fn tables(&self) -> TableSet {
        self.tables
    }

    /// Number of tables joined (the paper's `n`).
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the query is empty (never true for constructed queries).
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// Query construction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The table set was empty.
    Empty,
    /// The table set references tables not in the catalog.
    UnknownTables(TableSet),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Empty => write!(f, "query has no tables"),
            QueryError::UnknownTables(t) => write!(f, "unknown tables {t}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A serializable catalog description: the interchange format accepted by
/// the `optimize` CLI and any embedding application. Mirrors exactly what
/// [`CatalogBuilder`] consumes — table names with cardinalities plus join
/// edges with selectivities, tables referenced by index.
///
/// ```
/// use moqo_catalog::{CatalogSpec, TableSpec, JoinSpec};
/// let spec = CatalogSpec {
///     tables: vec![
///         TableSpec { name: "orders".into(), rows: 1_000_000.0 },
///         TableSpec { name: "customers".into(), rows: 50_000.0 },
///     ],
///     joins: vec![JoinSpec { a: 0, b: 1, selectivity: 1.0 / 50_000.0 }],
/// };
/// let catalog = spec.build().unwrap();
/// assert_eq!(catalog.num_tables(), 2);
/// ```
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CatalogSpec {
    /// Tables in id order.
    pub tables: Vec<TableSpec>,
    /// Join predicates.
    #[serde(default)]
    pub joins: Vec<JoinSpec>,
}

/// One table of a [`CatalogSpec`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Base cardinality in rows (positive).
    pub rows: f64,
}

/// One join predicate of a [`CatalogSpec`], endpoints as table indices.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct JoinSpec {
    /// First endpoint (index into `tables`).
    pub a: usize,
    /// Second endpoint (index into `tables`).
    pub b: usize,
    /// Predicate selectivity in `(0, 1]`.
    pub selectivity: f64,
}

/// Errors validating a [`CatalogSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec contains no tables.
    NoTables,
    /// Too many tables for the optimizer's table-set width.
    TooManyTables(usize),
    /// A table has a non-positive or non-finite cardinality.
    BadCardinality(String, f64),
    /// A join references a table index out of range.
    BadJoinEndpoint(usize),
    /// A join's selectivity is outside `(0, 1]`.
    BadSelectivity(f64),
    /// Two joins connect the same table pair, or a join is a self-loop.
    BadJoinPair(usize, usize),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoTables => write!(f, "catalog spec has no tables"),
            SpecError::TooManyTables(n) => {
                write!(f, "{n} tables exceed the maximum of {MAX_TABLES}")
            }
            SpecError::BadCardinality(name, rows) => {
                write!(f, "table '{name}' has invalid cardinality {rows}")
            }
            SpecError::BadJoinEndpoint(i) => write!(f, "join references table index {i}"),
            SpecError::BadSelectivity(s) => write!(f, "selectivity {s} outside (0, 1]"),
            SpecError::BadJoinPair(a, b) => {
                write!(f, "invalid or duplicate join between tables {a} and {b}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl CatalogSpec {
    /// Extracts the spec of an existing catalog (for archiving workloads).
    pub fn from_catalog(catalog: &Catalog) -> Self {
        CatalogSpec {
            tables: (0..catalog.num_tables())
                .map(|i| {
                    let meta = catalog.table(TableId::new(i));
                    TableSpec {
                        name: meta.name.clone(),
                        rows: meta.rows,
                    }
                })
                .collect(),
            joins: catalog
                .edges()
                .iter()
                .map(|e| JoinSpec {
                    a: e.a.index(),
                    b: e.b.index(),
                    selectivity: e.selectivity,
                })
                .collect(),
        }
    }

    /// Validates the spec and builds the catalog.
    pub fn build(&self) -> Result<Catalog, SpecError> {
        if self.tables.is_empty() {
            return Err(SpecError::NoTables);
        }
        if self.tables.len() > MAX_TABLES {
            return Err(SpecError::TooManyTables(self.tables.len()));
        }
        for t in &self.tables {
            if !t.rows.is_finite() || t.rows < 1.0 {
                return Err(SpecError::BadCardinality(t.name.clone(), t.rows));
            }
        }
        let mut seen_pairs = std::collections::HashSet::new();
        for j in &self.joins {
            if j.a >= self.tables.len() {
                return Err(SpecError::BadJoinEndpoint(j.a));
            }
            if j.b >= self.tables.len() {
                return Err(SpecError::BadJoinEndpoint(j.b));
            }
            if j.a == j.b || !seen_pairs.insert((j.a.min(j.b), j.a.max(j.b))) {
                return Err(SpecError::BadJoinPair(j.a, j.b));
            }
            if !(j.selectivity > 0.0 && j.selectivity <= 1.0) {
                return Err(SpecError::BadSelectivity(j.selectivity));
            }
        }
        let mut b = CatalogBuilder::default();
        for t in &self.tables {
            b.add_table(t.name.clone(), t.rows);
        }
        for j in &self.joins {
            b.add_join(TableId::new(j.a), TableId::new(j.b), j.selectivity);
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_catalog(n: usize) -> Catalog {
        let mut b = Catalog::builder();
        let ids: Vec<TableId> = (0..n)
            .map(|i| b.add_table(format!("t{i}"), 100.0 * (i + 1) as f64))
            .collect();
        for w in ids.windows(2) {
            b.add_join(w[0], w[1], 0.01);
        }
        b.build()
    }

    #[test]
    fn builder_round_trip() {
        let c = chain_catalog(4);
        assert_eq!(c.num_tables(), 4);
        assert_eq!(c.edges().len(), 3);
        assert_eq!(c.rows(TableId::new(2)), 300.0);
        assert_eq!(c.table(TableId::new(0)).name, "t0");
        assert_eq!(c.neighbors(TableId::new(1)).len(), 2);
        assert_eq!(c.all_tables(), TableSet::prefix(4));
    }

    #[test]
    fn pairwise_selectivity() {
        let c = chain_catalog(4);
        assert_eq!(c.selectivity(TableId::new(0), TableId::new(1)), 0.01);
        assert_eq!(c.selectivity(TableId::new(1), TableId::new(0)), 0.01);
        assert_eq!(c.selectivity(TableId::new(0), TableId::new(2)), 1.0);
    }

    #[test]
    fn joint_selectivity_multiplies_crossing_edges() {
        let c = chain_catalog(4);
        // Cut {0,1} | {2,3}: only edge 1-2 crosses.
        let a = TableSet::from_bits(0b0011);
        let b = TableSet::from_bits(0b1100);
        assert!((c.joint_selectivity(a, b) - 0.01).abs() < 1e-15);
        // Cut {0,2} | {1,3}: edges 0-1, 1-2, 2-3 all cross.
        let a = TableSet::from_bits(0b0101);
        let b = TableSet::from_bits(0b1010);
        assert!((c.joint_selectivity(a, b) - 0.01f64.powi(3)).abs() < 1e-18);
    }

    #[test]
    fn joint_selectivity_is_symmetric() {
        let c = chain_catalog(6);
        let a = TableSet::from_bits(0b010110);
        let b = TableSet::from_bits(0b101001);
        assert!((c.joint_selectivity(a, b) - c.joint_selectivity(b, a)).abs() < 1e-18);
    }

    #[test]
    fn connectivity() {
        let c = chain_catalog(5);
        assert!(c.is_connected(TableSet::prefix(5)));
        assert!(c.is_connected(TableSet::from_bits(0b00110)));
        // {0, 2} is not connected on a chain.
        assert!(!c.is_connected(TableSet::from_bits(0b00101)));
        assert!(c.is_connected(TableSet::singleton(TableId::new(3))));
        assert!(c.is_connected(TableSet::empty()));
    }

    #[test]
    fn query_validation() {
        let c = chain_catalog(3);
        assert_eq!(Query::all(&c).len(), 3);
        assert_eq!(Query::new(&c, TableSet::empty()), Err(QueryError::Empty));
        let q = Query::new(&c, TableSet::prefix(2)).unwrap();
        assert_eq!(q.tables(), TableSet::prefix(2));
        assert!(!q.is_empty());
        let err = Query::new(&c, TableSet::from_bits(0b1001)).unwrap_err();
        assert_eq!(err, QueryError::UnknownTables(TableSet::from_bits(0b1000)));
        assert!(err.to_string().contains("unknown tables"));
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected() {
        let mut b = Catalog::builder();
        let t0 = b.add_table("a", 10.0);
        let t1 = b.add_table("b", 10.0);
        b.add_join(t0, t1, 0.5);
        b.add_join(t1, t0, 0.5);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn invalid_selectivity_rejected() {
        let mut b = Catalog::builder();
        let t0 = b.add_table("a", 10.0);
        let t1 = b.add_table("b", 10.0);
        b.add_join(t0, t1, 0.0);
    }

    #[test]
    fn display_is_informative() {
        let c = chain_catalog(2);
        let s = c.to_string();
        assert!(s.contains("2 tables"));
        assert!(s.contains("t1"));
    }

    proptest::proptest! {
        /// Joint selectivity decomposes multiplicatively over disjoint unions:
        /// sel(A ∪ B, C) = sel(A, C) · sel(B, C).
        #[test]
        fn joint_selectivity_decomposes(bits_a in 0u16..64, bits_b in 0u16..64, bits_c in 0u16..64) {
            let c = chain_catalog(6);
            let a = TableSet::from_bits(bits_a as u128);
            let b = TableSet::from_bits((bits_b as u128) & !(bits_a as u128));
            let cc = TableSet::from_bits((bits_c as u128) & !(bits_a as u128) & !(b.bits()));
            let lhs = c.joint_selectivity(a.union(b), cc);
            let rhs = c.joint_selectivity(a, cc) * c.joint_selectivity(b, cc);
            proptest::prop_assert!((lhs - rhs).abs() <= 1e-12 * lhs.max(rhs).max(1.0));
        }
    }

    #[test]
    fn fingerprint_distinguishes_catalog_contents() {
        let a = chain_catalog(4);
        let b = chain_catalog(4);
        assert_eq!(a.fingerprint(), b.fingerprint(), "same contents, same fp");
        assert_ne!(
            a.fingerprint(),
            chain_catalog(5).fingerprint(),
            "different table count"
        );
        // Same shape, one selectivity differs.
        let mut builder = Catalog::builder();
        let ids: Vec<TableId> = (0..4)
            .map(|i| builder.add_table(format!("t{i}"), 100.0 * (i + 1) as f64))
            .collect();
        for w in ids.windows(2) {
            builder.add_join(w[0], w[1], 0.02);
        }
        assert_ne!(a.fingerprint(), builder.build().fingerprint());
        // Same structure, one table renamed.
        let mut builder = Catalog::builder();
        let ids: Vec<TableId> = (0..4)
            .map(|i| builder.add_table(format!("u{i}"), 100.0 * (i + 1) as f64))
            .collect();
        for w in ids.windows(2) {
            builder.add_join(w[0], w[1], 0.01);
        }
        assert_ne!(a.fingerprint(), builder.build().fingerprint());
    }

    #[test]
    fn spec_round_trips_through_catalog() {
        let c = chain_catalog(5);
        let spec = CatalogSpec::from_catalog(&c);
        assert_eq!(spec.tables.len(), 5);
        assert_eq!(spec.joins.len(), 4);
        let rebuilt = spec.build().expect("valid spec");
        assert_eq!(rebuilt.num_tables(), c.num_tables());
        for i in 0..5 {
            let t = TableId::new(i);
            assert_eq!(rebuilt.rows(t), c.rows(t));
            assert_eq!(rebuilt.table(t).name, c.table(t).name);
        }
        for (e1, e2) in rebuilt.edges().iter().zip(c.edges()) {
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn spec_validation_rejects_bad_inputs() {
        let empty = CatalogSpec {
            tables: vec![],
            joins: vec![],
        };
        assert_eq!(empty.build().unwrap_err(), SpecError::NoTables);

        let bad_rows = CatalogSpec {
            tables: vec![TableSpec {
                name: "t".into(),
                rows: -5.0,
            }],
            joins: vec![],
        };
        assert!(matches!(
            bad_rows.build().unwrap_err(),
            SpecError::BadCardinality(_, _)
        ));

        let two = || {
            vec![
                TableSpec {
                    name: "a".into(),
                    rows: 10.0,
                },
                TableSpec {
                    name: "b".into(),
                    rows: 10.0,
                },
            ]
        };
        let bad_endpoint = CatalogSpec {
            tables: two(),
            joins: vec![JoinSpec {
                a: 0,
                b: 7,
                selectivity: 0.5,
            }],
        };
        assert_eq!(
            bad_endpoint.build().unwrap_err(),
            SpecError::BadJoinEndpoint(7)
        );

        let self_loop = CatalogSpec {
            tables: two(),
            joins: vec![JoinSpec {
                a: 1,
                b: 1,
                selectivity: 0.5,
            }],
        };
        assert_eq!(self_loop.build().unwrap_err(), SpecError::BadJoinPair(1, 1));

        let dup = CatalogSpec {
            tables: two(),
            joins: vec![
                JoinSpec {
                    a: 0,
                    b: 1,
                    selectivity: 0.5,
                },
                JoinSpec {
                    a: 1,
                    b: 0,
                    selectivity: 0.2,
                },
            ],
        };
        assert_eq!(dup.build().unwrap_err(), SpecError::BadJoinPair(1, 0));

        let bad_sel = CatalogSpec {
            tables: two(),
            joins: vec![JoinSpec {
                a: 0,
                b: 1,
                selectivity: 1.5,
            }],
        };
        assert_eq!(bad_sel.build().unwrap_err(), SpecError::BadSelectivity(1.5));
    }

    #[test]
    fn spec_errors_display() {
        assert!(SpecError::NoTables.to_string().contains("no tables"));
        assert!(SpecError::TooManyTables(999).to_string().contains("999"));
        assert!(SpecError::BadSelectivity(2.0).to_string().contains("2"));
    }
}
