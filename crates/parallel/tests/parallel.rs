//! Integration tests of the parallel optimizer: the deterministic-reduction
//! contract (differential against literally-sequential reference runs),
//! seed-determinism pins, deadline enforcement across threads, and the
//! same contracts when sessions run as climb batches on the shared
//! work-stealing executor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use moqo_core::archive::Admission;
use moqo_core::model::testing::StubModel;
use moqo_core::optimizer::Budget;
use moqo_core::pareto::ParetoSet;
use moqo_core::plan::PlanRef;
use moqo_core::rmq::{Rmq, RmqConfig};
use moqo_core::tables::TableSet;
use moqo_parallel::{ExecPool, ParRmq, ParRmqConfig, TaskSpec, TaskStatus};
use proptest::prelude::*;

/// Runs `f` as a root task on a fresh `workers`-wide executor and returns
/// its result. The test thread never helps — placement stays on pool
/// workers, so `f` observes `ExecPool::current()` and `ParRmq::optimize`
/// takes its pooled path.
fn run_on_pool<T: Send + 'static>(workers: usize, f: impl FnOnce() -> T + Send + 'static) -> T {
    let pool = ExecPool::new(workers);
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let mut f = Some(f);
    pool.handle().spawn(TaskSpec::root(), move || {
        let f = f.take().expect("root task runs once");
        *slot.lock().unwrap() = Some(f());
        TaskStatus::Done
    });
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(v) = result.lock().unwrap().take() {
            return v;
        }
        assert!(Instant::now() < deadline, "pool task timed out");
        std::thread::yield_now();
    }
}

/// The reference reduction: run `workers` *sequential* RMQ instances with
/// the derived per-worker seeds and iteration splits, then unite their
/// frontiers in worker order through exact `SigBetter` pruning — the
/// "sequential union of the per-worker runs" the deterministic mode must
/// reproduce bit-identically.
fn sequential_union(
    model: &StubModel,
    query: TableSet,
    seed: u64,
    workers: usize,
    total_iters: u64,
) -> Vec<PlanRef> {
    let mut union: ParetoSet<PlanRef> = ParetoSet::new();
    for w in 0..workers as u64 {
        let iters = total_iters / workers as u64 + u64::from(w < total_iters % workers as u64);
        let mut rmq = Rmq::new(model, query, RmqConfig::seeded(seed ^ w));
        for _ in 0..iters {
            rmq.iterate();
        }
        for plan in rmq.frontier() {
            union.insert(plan, &Admission::exact());
        }
    }
    union.into_plans()
}

/// Renders a frontier as `(algebra string, exact cost bits)` pairs — the
/// bit-identity relation of the deterministic contract.
fn rendered(model: &StubModel, plans: &[PlanRef]) -> Vec<(String, Vec<u64>)> {
    plans
        .iter()
        .map(|p| {
            (
                p.display(model),
                p.cost().as_slice().iter().map(|c| c.to_bits()).collect(),
            )
        })
        .collect()
}

fn det_frontier(
    model: &StubModel,
    query: TableSet,
    seed: u64,
    workers: usize,
    total_iters: u64,
) -> Vec<PlanRef> {
    let cfg = ParRmqConfig::seeded(seed, workers).deterministic();
    let mut par = ParRmq::new(model.clone(), query, cfg);
    let stats = par.optimize(Budget::Iterations(total_iters));
    assert_eq!(stats.iterations, total_iters);
    par.frontier()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Differential: the parallel merged frontier in deterministic mode
    /// equals the sequential `ParetoSet` union — same survivors, same
    /// costs, same order — across seeds, query sizes, and 2–8 workers.
    #[test]
    fn deterministic_mode_equals_sequential_union(
        seed in 0u64..1000,
        tables in 3usize..8,
        workers in 2usize..=8,
        iters in 4u64..16,
    ) {
        let model = StubModel::line(tables, 2, 17);
        let query = TableSet::prefix(tables);
        let par = det_frontier(&model, query, seed, workers, iters);
        let reference = sequential_union(&model, query, seed, workers, iters);
        prop_assert_eq!(rendered(&model, &par), rendered(&model, &reference));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Differential, executor edition: deterministic mode pins its climb
    /// batches (no stealing), so running the session as a pool task must
    /// produce the same bit-identical sequential union as the scoped
    /// path — across seeds, fan-outs, and pool widths (including a pool
    /// narrower than the fan-out, which forces batch queueing).
    #[test]
    fn deterministic_mode_on_the_pool_equals_sequential_union(
        seed in 0u64..1000,
        workers in 2usize..=6,
        pool_workers in 1usize..=4,
        iters in 4u64..16,
    ) {
        let model = StubModel::line(6, 2, 17);
        let query = TableSet::prefix(6);
        let pooled_model = model.clone();
        let par = run_on_pool(pool_workers, move || {
            let cfg = ParRmqConfig::seeded(seed, workers).deterministic();
            let mut par = ParRmq::new(pooled_model, query, cfg);
            let stats = par.optimize(Budget::Iterations(iters));
            assert_eq!(stats.iterations, iters);
            par.frontier()
        });
        let reference = sequential_union(&model, query, seed, workers, iters);
        prop_assert_eq!(rendered(&model, &par), rendered(&model, &reference));
    }

    /// Iteration budgets are exact on the pool in live mode too: workers
    /// pull quotas from one shared claim counter, so awkward totals that
    /// don't divide by fan-out or batch size still land exactly.
    #[test]
    fn live_iteration_budget_is_exact_under_the_shared_claim_counter(
        seed in 0u64..1000,
        workers in 2usize..=4,
        total in 1u64..64,
    ) {
        let (iterations, frontier_len) = run_on_pool(2, move || {
            let model = StubModel::line(7, 2, 19);
            let query = TableSet::prefix(7);
            let mut cfg = ParRmqConfig::seeded(seed, workers);
            cfg.batch = 4;
            let mut par = ParRmq::new(model, query, cfg);
            let stats = par.optimize(Budget::Iterations(total));
            (stats.iterations, par.frontier().len())
        });
        prop_assert_eq!(iterations, total);
        prop_assert!(frontier_len > 0);
    }
}

#[test]
fn deterministic_frontiers_are_pinned_across_seeds_and_sizes() {
    // Seed-determinism pins, mirroring the arena-vs-legacy pins in
    // `moqo-core`: 3 seeds × 2 query sizes, 3 workers. Each deterministic
    // frontier must (a) be bit-identical to the sequential union and
    // (b) reproduce bit-identically on a second run — thread scheduling
    // must leave no trace.
    for tables in [6usize, 9] {
        for seed in [1u64, 2, 3] {
            let model = StubModel::line(tables, 2, 17);
            let query = TableSet::prefix(tables);
            let first = det_frontier(&model, query, seed, 3, 18);
            let second = det_frontier(&model, query, seed, 3, 18);
            assert_eq!(
                rendered(&model, &first),
                rendered(&model, &second),
                "rerun diverged (n={tables}, seed={seed})"
            );
            let reference = sequential_union(&model, query, seed, 3, 18);
            assert_eq!(
                rendered(&model, &first),
                rendered(&model, &reference),
                "sequential union diverged (n={tables}, seed={seed})"
            );
            assert!(!first.is_empty());
        }
    }
}

#[test]
fn deterministic_mode_is_step_granularity_invariant() {
    // Driving the optimizer in rounds (the service's slicing) must land on
    // the same frontier as one shot, as long as total per-worker
    // iterations match: 3 rounds × (2 workers × 4 batch) == 24 one-shot.
    let model = StubModel::line(6, 2, 17);
    let query = TableSet::prefix(6);
    let mut cfg = ParRmqConfig::seeded(5, 2).deterministic();
    cfg.batch = 4;
    let mut stepped = ParRmq::new(model.clone(), query, cfg);
    for _ in 0..3 {
        use moqo_core::optimizer::Optimizer;
        stepped.step();
    }
    let one_shot = det_frontier(&model, query, 5, 2, 24);
    assert_eq!(
        rendered(&model, &stepped.frontier()),
        rendered(&model, &one_shot)
    );
}

#[test]
fn live_mode_frontier_is_valid_and_exchange_converges_workers() {
    // Live mode gives up bit-reproducibility for exchange; the invariants
    // that must survive: every published plan is valid, the global frontier
    // is mutually non-dominated per format, and absorbed plans show up in
    // worker caches (the island-migration effect).
    let model = StubModel::line(8, 2, 11);
    let query = TableSet::prefix(8);
    let mut cfg = ParRmqConfig::seeded(21, 4);
    cfg.exchange_period = 3;
    let mut par = ParRmq::new(model.clone(), query, cfg);
    par.optimize(Budget::Iterations(80));
    let frontier = par.frontier();
    assert!(!frontier.is_empty());
    for p in &frontier {
        assert!(p.validate(query).is_ok());
    }
    for a in &frontier {
        for b in &frontier {
            if !std::sync::Arc::ptr_eq(a, b) && a.same_output(b) {
                assert!(!a.cost().strictly_dominates(b.cost()));
            }
        }
    }
    let ex = par.exchange_stats();
    assert!(ex.publishes >= 4, "every worker publishes at least once");
    assert!(ex.merged > 0);
    // The reduced frontier (which includes unpublished survivors) covers
    // the published snapshot: nothing is lost by the final merge.
    let reduced = par.reduced_frontier();
    for p in &frontier {
        assert!(
            reduced
                .iter()
                .any(|r| r.cost().approx_dominates(p.cost(), 1.0 + 1e-9)),
            "reduction lost coverage of a published plan"
        );
    }
}

#[test]
fn deadline_overruns_are_bounded_on_eight_workers() {
    // The deadline satellite: a 50 ms deadline on 8 threads must never run
    // more than 2× over, because every climber checks the shared stop flag
    // once per climb step. Query size is chosen so individual climb steps
    // are far below the margin even on a loaded single-core CI box.
    let model = StubModel::line(10, 2, 3);
    let query = TableSet::prefix(10);
    let deadline = Duration::from_millis(50);
    let mut par = ParRmq::new(model, query, ParRmqConfig::seeded(7, 8));
    let started = Instant::now();
    let stats = par.optimize(Budget::Deadline(started + deadline));
    let elapsed = started.elapsed();
    assert!(
        elapsed <= deadline * 2,
        "50 ms deadline ran {}ms (> 2x) on 8 workers",
        elapsed.as_millis()
    );
    assert!(stats.iterations > 0, "some iterations must complete");
    assert!(!par.frontier().is_empty());
}

#[test]
fn deadline_is_bounded_on_an_oversubscribed_pool() {
    // The deadline satellite, executor edition: 8 sessions × fan-out 2 on
    // a 4-worker pool — four times as many climb batches as workers, so
    // batches queue, get stolen, and get donated. Every batch checks the
    // deadline per iteration, so the whole oversubscribed mix must still
    // land within 2× of a 50 ms deadline.
    let pool = ExecPool::new(4);
    let model = StubModel::line(10, 2, 3);
    let query = TableSet::prefix(10);
    let finished = Arc::new(AtomicUsize::new(0));
    let results: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let deadline = Duration::from_millis(50);
    let stop_at = started + deadline;
    for s in 0..8u64 {
        let model = model.clone();
        let finished = Arc::clone(&finished);
        let results = Arc::clone(&results);
        let mut par = Some(ParRmq::new(model, query, ParRmqConfig::seeded(100 + s, 2)));
        pool.handle().spawn(TaskSpec::root(), move || {
            let mut par = par.take().expect("session task runs once");
            let stats = par.optimize(Budget::Deadline(stop_at));
            results
                .lock()
                .unwrap()
                .push((stats.iterations, par.frontier().len()));
            finished.fetch_add(1, Ordering::SeqCst);
            TaskStatus::Done
        });
    }
    while finished.load(Ordering::SeqCst) < 8 {
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "oversubscribed sessions never finished"
        );
        std::thread::yield_now();
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed <= deadline * 2,
        "50 ms deadline ran {}ms (> 2x) with 8 sessions on 4 workers",
        elapsed.as_millis()
    );
    let results = results.lock().unwrap();
    assert_eq!(results.len(), 8);
    let total_iters: u64 = results.iter().map(|(i, _)| i).sum();
    assert!(total_iters > 0, "some iterations must complete");
    for (iters, frontier) in results.iter() {
        // A session that got iterations must have produced plans.
        assert!(*iters == 0 || *frontier > 0);
    }
}

#[test]
fn stop_flag_cancels_stolen_batches_on_the_pool() {
    // Fan-out 4 on a 2-worker pool: the session's root task cannot run all
    // four climb batches itself, so at least some execute on the other
    // worker via stealing or donation. Raising the stop flag must cancel
    // those remotely-executing batches too — the run ends promptly even
    // though the deadline is half a minute out.
    let pool = ExecPool::new(2);
    let model = StubModel::line(9, 2, 13);
    let query = TableSet::prefix(9);
    let par = ParRmq::new(model, query, ParRmqConfig::seeded(4, 4));
    let flag = par.stop_handle();
    let result: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let started = Instant::now();
    let mut par = Some(par);
    pool.handle().spawn(TaskSpec::root(), move || {
        let mut par = par.take().expect("session task runs once");
        let stats = par.optimize(Budget::Deadline(Instant::now() + Duration::from_secs(30)));
        *slot.lock().unwrap() = Some(stats.iterations);
        TaskStatus::Done
    });
    // Let the climbers get going, then raise the flag — repeatedly, so the
    // signal sticks even if optimize() entry (which clears the flag) races
    // with the first stop().
    std::thread::sleep(Duration::from_millis(40));
    let iterations = loop {
        flag.stop();
        if let Some(iters) = result.lock().unwrap().take() {
            break iters;
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "stop() must cancel batches running on other workers"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stop() must end the run long before the deadline"
    );
    assert!(iterations > 0, "the session ran before being cancelled");
}

#[test]
fn time_budget_counts_from_call_entry() {
    let model = StubModel::line(8, 2, 5);
    let query = TableSet::prefix(8);
    let mut par = ParRmq::new(model, query, ParRmqConfig::seeded(1, 2));
    let started = Instant::now();
    par.optimize(Budget::Time(Duration::from_millis(30)));
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(5),
        "budget ended too early"
    );
    assert!(elapsed <= Duration::from_millis(300), "budget ran far over");
}

#[test]
fn stop_handle_cancels_a_long_deadline_promptly() {
    // Raise the flag from another thread mid-run: the workers must wind
    // down long before the (distant) deadline.
    let model = StubModel::line(9, 2, 13);
    let query = TableSet::prefix(9);
    let mut par = ParRmq::new(model, query, ParRmqConfig::seeded(4, 4));
    let flag = par.stop_handle();
    let started = Instant::now();
    let canceller = std::thread::spawn(move || {
        // Arm well after optimize() has started (and cleared the flag).
        std::thread::sleep(Duration::from_millis(40));
        flag.stop();
    });
    par.optimize(Budget::Deadline(started + Duration::from_secs(30)));
    canceller.join().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stop() must end the run long before the deadline"
    );
}
