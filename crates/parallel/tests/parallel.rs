//! Integration tests of the parallel optimizer: the deterministic-reduction
//! contract (differential against literally-sequential reference runs),
//! seed-determinism pins, and deadline enforcement across threads.

use std::time::{Duration, Instant};

use moqo_core::archive::Admission;
use moqo_core::model::testing::StubModel;
use moqo_core::optimizer::Budget;
use moqo_core::pareto::ParetoSet;
use moqo_core::plan::PlanRef;
use moqo_core::rmq::{Rmq, RmqConfig};
use moqo_core::tables::TableSet;
use moqo_parallel::{ParRmq, ParRmqConfig};
use proptest::prelude::*;

/// The reference reduction: run `workers` *sequential* RMQ instances with
/// the derived per-worker seeds and iteration splits, then unite their
/// frontiers in worker order through exact `SigBetter` pruning — the
/// "sequential union of the per-worker runs" the deterministic mode must
/// reproduce bit-identically.
fn sequential_union(
    model: &StubModel,
    query: TableSet,
    seed: u64,
    workers: usize,
    total_iters: u64,
) -> Vec<PlanRef> {
    let mut union: ParetoSet<PlanRef> = ParetoSet::new();
    for w in 0..workers as u64 {
        let iters = total_iters / workers as u64 + u64::from(w < total_iters % workers as u64);
        let mut rmq = Rmq::new(model, query, RmqConfig::seeded(seed ^ w));
        for _ in 0..iters {
            rmq.iterate();
        }
        for plan in rmq.frontier() {
            union.insert(plan, &Admission::exact());
        }
    }
    union.into_plans()
}

/// Renders a frontier as `(algebra string, exact cost bits)` pairs — the
/// bit-identity relation of the deterministic contract.
fn rendered(model: &StubModel, plans: &[PlanRef]) -> Vec<(String, Vec<u64>)> {
    plans
        .iter()
        .map(|p| {
            (
                p.display(model),
                p.cost().as_slice().iter().map(|c| c.to_bits()).collect(),
            )
        })
        .collect()
}

fn det_frontier(
    model: &StubModel,
    query: TableSet,
    seed: u64,
    workers: usize,
    total_iters: u64,
) -> Vec<PlanRef> {
    let cfg = ParRmqConfig::seeded(seed, workers).deterministic();
    let mut par = ParRmq::new(model.clone(), query, cfg);
    let stats = par.optimize(Budget::Iterations(total_iters));
    assert_eq!(stats.iterations, total_iters);
    par.frontier()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Differential: the parallel merged frontier in deterministic mode
    /// equals the sequential `ParetoSet` union — same survivors, same
    /// costs, same order — across seeds, query sizes, and 2–8 workers.
    #[test]
    fn deterministic_mode_equals_sequential_union(
        seed in 0u64..1000,
        tables in 3usize..8,
        workers in 2usize..=8,
        iters in 4u64..16,
    ) {
        let model = StubModel::line(tables, 2, 17);
        let query = TableSet::prefix(tables);
        let par = det_frontier(&model, query, seed, workers, iters);
        let reference = sequential_union(&model, query, seed, workers, iters);
        prop_assert_eq!(rendered(&model, &par), rendered(&model, &reference));
    }
}

#[test]
fn deterministic_frontiers_are_pinned_across_seeds_and_sizes() {
    // Seed-determinism pins, mirroring the arena-vs-legacy pins in
    // `moqo-core`: 3 seeds × 2 query sizes, 3 workers. Each deterministic
    // frontier must (a) be bit-identical to the sequential union and
    // (b) reproduce bit-identically on a second run — thread scheduling
    // must leave no trace.
    for tables in [6usize, 9] {
        for seed in [1u64, 2, 3] {
            let model = StubModel::line(tables, 2, 17);
            let query = TableSet::prefix(tables);
            let first = det_frontier(&model, query, seed, 3, 18);
            let second = det_frontier(&model, query, seed, 3, 18);
            assert_eq!(
                rendered(&model, &first),
                rendered(&model, &second),
                "rerun diverged (n={tables}, seed={seed})"
            );
            let reference = sequential_union(&model, query, seed, 3, 18);
            assert_eq!(
                rendered(&model, &first),
                rendered(&model, &reference),
                "sequential union diverged (n={tables}, seed={seed})"
            );
            assert!(!first.is_empty());
        }
    }
}

#[test]
fn deterministic_mode_is_step_granularity_invariant() {
    // Driving the optimizer in rounds (the service's slicing) must land on
    // the same frontier as one shot, as long as total per-worker
    // iterations match: 3 rounds × (2 workers × 4 batch) == 24 one-shot.
    let model = StubModel::line(6, 2, 17);
    let query = TableSet::prefix(6);
    let mut cfg = ParRmqConfig::seeded(5, 2).deterministic();
    cfg.batch = 4;
    let mut stepped = ParRmq::new(model.clone(), query, cfg);
    for _ in 0..3 {
        use moqo_core::optimizer::Optimizer;
        stepped.step();
    }
    let one_shot = det_frontier(&model, query, 5, 2, 24);
    assert_eq!(
        rendered(&model, &stepped.frontier()),
        rendered(&model, &one_shot)
    );
}

#[test]
fn live_mode_frontier_is_valid_and_exchange_converges_workers() {
    // Live mode gives up bit-reproducibility for exchange; the invariants
    // that must survive: every published plan is valid, the global frontier
    // is mutually non-dominated per format, and absorbed plans show up in
    // worker caches (the island-migration effect).
    let model = StubModel::line(8, 2, 11);
    let query = TableSet::prefix(8);
    let mut cfg = ParRmqConfig::seeded(21, 4);
    cfg.exchange_period = 3;
    let mut par = ParRmq::new(model.clone(), query, cfg);
    par.optimize(Budget::Iterations(80));
    let frontier = par.frontier();
    assert!(!frontier.is_empty());
    for p in &frontier {
        assert!(p.validate(query).is_ok());
    }
    for a in &frontier {
        for b in &frontier {
            if !std::sync::Arc::ptr_eq(a, b) && a.same_output(b) {
                assert!(!a.cost().strictly_dominates(b.cost()));
            }
        }
    }
    let ex = par.exchange_stats();
    assert!(ex.publishes >= 4, "every worker publishes at least once");
    assert!(ex.merged > 0);
    // The reduced frontier (which includes unpublished survivors) covers
    // the published snapshot: nothing is lost by the final merge.
    let reduced = par.reduced_frontier();
    for p in &frontier {
        assert!(
            reduced
                .iter()
                .any(|r| r.cost().approx_dominates(p.cost(), 1.0 + 1e-9)),
            "reduction lost coverage of a published plan"
        );
    }
}

#[test]
fn deadline_overruns_are_bounded_on_eight_workers() {
    // The deadline satellite: a 50 ms deadline on 8 threads must never run
    // more than 2× over, because every climber checks the shared stop flag
    // once per climb step. Query size is chosen so individual climb steps
    // are far below the margin even on a loaded single-core CI box.
    let model = StubModel::line(10, 2, 3);
    let query = TableSet::prefix(10);
    let deadline = Duration::from_millis(50);
    let mut par = ParRmq::new(model, query, ParRmqConfig::seeded(7, 8));
    let started = Instant::now();
    let stats = par.optimize(Budget::Deadline(started + deadline));
    let elapsed = started.elapsed();
    assert!(
        elapsed <= deadline * 2,
        "50 ms deadline ran {}ms (> 2x) on 8 workers",
        elapsed.as_millis()
    );
    assert!(stats.iterations > 0, "some iterations must complete");
    assert!(!par.frontier().is_empty());
}

#[test]
fn time_budget_counts_from_call_entry() {
    let model = StubModel::line(8, 2, 5);
    let query = TableSet::prefix(8);
    let mut par = ParRmq::new(model, query, ParRmqConfig::seeded(1, 2));
    let started = Instant::now();
    par.optimize(Budget::Time(Duration::from_millis(30)));
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(5),
        "budget ended too early"
    );
    assert!(elapsed <= Duration::from_millis(300), "budget ran far over");
}

#[test]
fn stop_handle_cancels_a_long_deadline_promptly() {
    // Raise the flag from another thread mid-run: the workers must wind
    // down long before the (distant) deadline.
    let model = StubModel::line(9, 2, 13);
    let query = TableSet::prefix(9);
    let mut par = ParRmq::new(model, query, ParRmqConfig::seeded(4, 4));
    let flag = par.stop_handle();
    let started = Instant::now();
    let canceller = std::thread::spawn(move || {
        // Arm well after optimize() has started (and cleared the flag).
        std::thread::sleep(Duration::from_millis(40));
        flag.stop();
    });
    par.optimize(Budget::Deadline(started + Duration::from_secs(30)));
    canceller.join().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stop() must end the run long before the deadline"
    );
}
