//! The epoch-versioned shared global frontier worker threads exchange
//! plans through.
//!
//! The structure is split into a **merge side** and a **read side** so the
//! two never contend:
//!
//! * The merge side — a shared session [`PlanArena`] plus the master
//!   `ParetoSet<PlanId>` — lives behind one mutex. Writers batch-merge a
//!   whole worker frontier per lock acquisition
//!   ([`ParetoSet::merge_with`]): each candidate is admission-tested
//!   against the global frontier by its inline cost metadata, and only
//!   *survivors* are adopted into the shared arena
//!   ([`PlanArena::adopt`] with a reused memo), so a publish whose plans
//!   are all dominated costs a few dominance probes and no interning.
//! * The read side is a double-buffered **snapshot**: an immutable
//!   `Arc<FrontierSnapshot>` swapped wholesale whenever a merge changes the
//!   frontier. Readers clone the `Arc` under a short lock that is never
//!   held during merging or exporting, so anytime-frontier reads and
//!   worker absorptions proceed at full speed while another worker merges.
//!
//! Every snapshot swap bumps the **exchange epoch**. Workers remember the
//! last epoch they absorbed and skip the (already-seen) snapshot otherwise,
//! which makes the absorb path O(1) between global improvements.
//!
//! Besides the full-query frontier, the structure keeps **partial-plan
//! frontiers**: per-table-set Pareto sets of sub-query plans
//! ([`SharedFrontier::publish_partials`]), merged through the same
//! [`Admission`] entry point and snapshotted under their own epoch. This is
//! where the redundant work across workers actually hides — the
//! approximation-scheme line shows intermediate frontiers, not full-query
//! survivors, carry most of the reusable information — so workers absorb
//! them straight into their partial-plan caches via `warm_start`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use moqo_obs::{journal, metrics};

use moqo_core::archive::Admission;
use moqo_core::arena::{PlanArena, PlanId};
use moqo_core::fxhash::FxHashMap;
use moqo_core::pareto::ParetoSet;
use moqo_core::plan::PlanRef;
use moqo_core::tables::TableSet;

/// An immutable point-in-time view of the shared global frontier.
///
/// Plans are exported `Arc<Plan>` trees (the cross-arena exchange format),
/// so holders never touch the shared arena — reading a snapshot after it
/// has been superseded is always safe and lock-free.
#[derive(Clone, Debug, Default)]
pub struct FrontierSnapshot {
    /// Exchange epoch of this snapshot: strictly increases with every
    /// frontier change. `0` means nothing has been published yet.
    pub epoch: u64,
    /// The global Pareto frontier at this epoch.
    pub plans: Vec<PlanRef>,
}

/// Lifetime counters of the exchange machinery (cheap, monotone; reported
/// by the perf-baseline harness as the exchange-overhead signal).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExchangeStats {
    /// Publish calls (one per worker batch-merge).
    pub publishes: u64,
    /// Plans offered across all publishes.
    pub offered: u64,
    /// Offered plans that survived the merge into the global frontier.
    pub merged: u64,
    /// Snapshot swaps (= the current exchange epoch).
    pub epochs: u64,
    /// Plans workers absorbed back out of snapshots.
    pub absorbed: u64,
    /// Shared-arena occupancy (distinct interned nodes).
    pub arena_nodes: usize,
    /// Sub-query plans offered across all partial-frontier publishes.
    pub partial_offered: u64,
    /// Offered sub-query plans that survived their per-table-set merge.
    pub partial_merged: u64,
    /// Partial-snapshot swaps (= the current partial-frontier epoch).
    pub partial_epochs: u64,
    /// Distinct table sets with a shared partial frontier.
    pub partial_table_sets: usize,
}

/// Merge-side state: everything a publishing worker mutates under the lock.
struct MergeState {
    /// The shared session arena plans cross thread boundaries into.
    arena: PlanArena,
    /// The master global frontier, keyed into `arena`.
    global: ParetoSet<PlanId>,
    /// Reused id-translation memo for adoptions (cleared per publish;
    /// source ids are arena-relative, so a memo never spans publishers).
    memo: FxHashMap<PlanId, PlanId>,
    epoch: u64,
    publishes: u64,
    offered: u64,
    merged: u64,
    /// Per-table-set sub-query frontiers, keyed into the same `arena`.
    partials: FxHashMap<TableSet, ParetoSet<PlanId>>,
    partial_epoch: u64,
    partial_offered: u64,
    partial_merged: u64,
}

/// An immutable point-in-time view of the shared partial-plan frontiers,
/// flattened for absorption: `Rmq::warm_start` re-files each plan under its
/// own table set with subset filtering, so consumers need no keying here.
#[derive(Clone, Debug, Default)]
pub struct PartialSnapshot {
    /// Partial-frontier epoch: strictly increases with every change to any
    /// per-table-set frontier. `0` means nothing has been published yet.
    pub epoch: u64,
    /// Every shared sub-query survivor across all table sets.
    pub plans: Vec<PlanRef>,
}

/// The shared epoch-versioned global frontier (see the module docs).
pub struct SharedFrontier {
    merge: Mutex<MergeState>,
    /// The published snapshot. The lock is held only to clone or replace
    /// the `Arc` — never while merging or exporting — so readers are
    /// effectively lock-free.
    snapshot: Mutex<Arc<FrontierSnapshot>>,
    /// The published partial-plan snapshot, same locking discipline.
    partial_snapshot: Mutex<Arc<PartialSnapshot>>,
    /// Plans absorbed by workers (updated outside the merge lock).
    absorbed: AtomicU64,
    /// Publish tick used to sample merge-mutex wait time (see
    /// [`MUTEX_WAIT_SAMPLE`]); bumped before taking the lock.
    publish_ticks: AtomicU64,
}

/// Every `N`th publish times its merge-mutex acquisition into the
/// `exchange.mutex_wait_ns` histogram. Sampling keeps `Instant::now` off
/// the common publish path while still exposing contention trends.
const MUTEX_WAIT_SAMPLE: u64 = 8;

impl Default for SharedFrontier {
    fn default() -> Self {
        SharedFrontier::new()
    }
}

impl SharedFrontier {
    /// Creates an empty shared frontier at epoch 0.
    pub fn new() -> Self {
        SharedFrontier {
            merge: Mutex::new(MergeState {
                arena: PlanArena::new(),
                global: ParetoSet::new(),
                memo: FxHashMap::default(),
                epoch: 0,
                publishes: 0,
                offered: 0,
                merged: 0,
                partials: FxHashMap::default(),
                partial_epoch: 0,
                partial_offered: 0,
                partial_merged: 0,
            }),
            snapshot: Mutex::new(Arc::new(FrontierSnapshot::default())),
            partial_snapshot: Mutex::new(Arc::new(PartialSnapshot::default())),
            absorbed: AtomicU64::new(0),
            publish_ticks: AtomicU64::new(0),
        }
    }

    /// Batch-merges a worker frontier into the global frontier: every
    /// member of `frontier` (ids into the worker's `src` arena) is
    /// admission-tested against the global set with exact pruning (α = 1),
    /// and survivors are adopted into the shared arena. If anything
    /// changed, the epoch advances and a fresh snapshot is swapped in.
    /// Returns the number of plans that survived the merge.
    pub fn publish(&self, src: &PlanArena, frontier: &ParetoSet<PlanId>) -> usize {
        let obs = metrics();
        // Sample merge-mutex wait time on every MUTEX_WAIT_SAMPLE'th
        // publish: one `Instant` pair around the acquisition, off the
        // common path.
        let sampled = self.publish_ticks.fetch_add(1, Ordering::Relaxed) % MUTEX_WAIT_SAMPLE == 0;
        let mut state = if sampled {
            let before = Instant::now();
            let state = self.merge.lock().unwrap();
            obs.exchange_mutex_wait_ns
                .record(before.elapsed().as_nanos() as u64);
            state
        } else {
            self.merge.lock().unwrap()
        };
        state.publishes += 1;
        state.offered += frontier.len() as u64;
        obs.exchange_publishes.incr();
        obs.exchange_offered.add(frontier.len() as u64);
        let MergeState {
            arena,
            global,
            memo,
            ..
        } = &mut *state;
        memo.clear();
        let inserted = global.merge_with(frontier, &Admission::exact(), |&id| {
            arena.adopt(src, id, memo)
        });
        let screen = global.take_screen_counters();
        obs.pareto_blocks_screened.add(screen.blocks_screened);
        obs.pareto_eps_rejects.add(screen.eps_rejects);
        if inserted == 0 {
            // No admission: the epoch must not move (the invariant the
            // concurrent-exchange tests pin), so no snapshot swap either.
            let epoch = state.epoch;
            drop(state);
            journal::emit_with(journal::Target::Exchange, journal::Level::Debug, || {
                journal::EventKind::ExchangePublish {
                    offered: frontier.len() as u64,
                    merged: 0,
                    epoch,
                }
            });
            return 0;
        }
        state.merged += inserted as u64;
        state.epoch += 1;
        obs.exchange_merged.add(inserted as u64);
        obs.exchange_epochs.incr();
        // Export under the merge lock (exports are memoized per node, so
        // only newly adopted plans build trees), then swap the read-side
        // Arc under its own short lock.
        let plans: Vec<PlanRef> = state
            .global
            .iter()
            .map(|&id| state.arena.export(id))
            .collect();
        let epoch = state.epoch;
        let fresh = Arc::new(FrontierSnapshot { epoch, plans });
        *self.snapshot.lock().unwrap() = fresh;
        drop(state);
        journal::emit_with(journal::Target::Exchange, journal::Level::Info, || {
            journal::EventKind::ExchangePublish {
                offered: frontier.len() as u64,
                merged: inserted as u64,
                epoch,
            }
        });
        inserted
    }

    /// Batch-merges a worker's partial-plan (sub-query) frontiers into the
    /// shared per-table-set frontiers: each `(table set, frontier)` pair —
    /// ids into the worker's `src` arena, typically
    /// `PlanCache::entry_sets` filtered to proper sub-queries — is merged
    /// into the matching shared frontier through the same exact
    /// [`Admission`] entry point as the full-query path, with survivors
    /// adopted into the shared arena. If anything changed, the partial
    /// epoch advances and a fresh [`PartialSnapshot`] is swapped in.
    /// Returns the number of sub-query plans that survived.
    pub fn publish_partials<'a>(
        &self,
        src: &PlanArena,
        sets: impl Iterator<Item = (TableSet, &'a ParetoSet<PlanId>)>,
    ) -> usize {
        let obs = metrics();
        let mut state = self.merge.lock().unwrap();
        let MergeState {
            arena,
            memo,
            partials,
            partial_offered,
            partial_merged,
            ..
        } = &mut *state;
        let mut offered = 0usize;
        let mut inserted = 0usize;
        for (rel, frontier) in sets {
            offered += frontier.len();
            memo.clear();
            let shared_set = partials.entry(rel).or_default();
            inserted += shared_set.merge_with(frontier, &Admission::exact(), |&id| {
                arena.adopt(src, id, memo)
            });
            let screen = shared_set.take_screen_counters();
            obs.pareto_blocks_screened.add(screen.blocks_screened);
            obs.pareto_eps_rejects.add(screen.eps_rejects);
        }
        *partial_offered += offered as u64;
        *partial_merged += inserted as u64;
        obs.exchange_partial_offered.add(offered as u64);
        obs.exchange_partial_merged.add(inserted as u64);
        if inserted == 0 {
            return 0;
        }
        state.partial_epoch += 1;
        let plans: Vec<PlanRef> = state
            .partials
            .values()
            .flat_map(|set| set.iter().map(|&id| state.arena.export(id)))
            .collect();
        let fresh = Arc::new(PartialSnapshot {
            epoch: state.partial_epoch,
            plans,
        });
        *self.partial_snapshot.lock().unwrap() = fresh;
        inserted
    }

    /// The current snapshot (clones one `Arc` under a short lock).
    pub fn snapshot(&self) -> Arc<FrontierSnapshot> {
        Arc::clone(&self.snapshot.lock().unwrap())
    }

    /// The current partial-plan snapshot (clones one `Arc` under a short
    /// lock).
    pub fn partial_snapshot(&self) -> Arc<PartialSnapshot> {
        Arc::clone(&self.partial_snapshot.lock().unwrap())
    }

    /// The current partial-frontier epoch without cloning the snapshot.
    pub fn partial_epoch(&self) -> u64 {
        self.partial_snapshot.lock().unwrap().epoch
    }

    /// The current exchange epoch without cloning the snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot.lock().unwrap().epoch
    }

    /// Records `n` plans absorbed by a worker (for [`ExchangeStats`]).
    pub fn record_absorbed(&self, n: usize) {
        self.absorbed.fetch_add(n as u64, Ordering::Relaxed);
        metrics().exchange_absorbed.add(n as u64);
    }

    /// Lifetime exchange counters.
    pub fn stats(&self) -> ExchangeStats {
        let state = self.merge.lock().unwrap();
        ExchangeStats {
            publishes: state.publishes,
            offered: state.offered,
            merged: state.merged,
            epochs: state.epoch,
            absorbed: self.absorbed.load(Ordering::Relaxed),
            arena_nodes: state.arena.len(),
            partial_offered: state.partial_offered,
            partial_merged: state.partial_merged,
            partial_epochs: state.partial_epoch,
            partial_table_sets: state.partials.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_core::model::testing::StubModel;
    use moqo_core::rmq::{Rmq, RmqConfig};
    use moqo_core::tables::TableSet;

    fn worker_frontier(seed: u64, iters: u64) -> (Rmq<StubModel>, usize) {
        let model = StubModel::line(6, 2, 7);
        let mut rmq = Rmq::new(model, TableSet::prefix(6), RmqConfig::seeded(seed));
        for _ in 0..iters {
            rmq.iterate();
        }
        let len = rmq.frontier_set().map_or(0, ParetoSet::len);
        (rmq, len)
    }

    #[test]
    fn publish_advances_the_epoch_and_snapshot() {
        let shared = SharedFrontier::new();
        assert_eq!(shared.epoch(), 0);
        assert!(shared.snapshot().plans.is_empty());

        let (rmq, len) = worker_frontier(1, 10);
        assert!(len > 0);
        let merged = shared.publish(rmq.arena(), rmq.frontier_set().unwrap());
        assert!(merged > 0);
        assert_eq!(shared.epoch(), 1);
        let snap = shared.snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.plans.len(), merged);
        for p in &snap.plans {
            assert!(p.validate(TableSet::prefix(6)).is_ok());
        }

        // Re-publishing the identical frontier changes nothing: every
        // member is weakly dominated by its own copy.
        let before = shared.stats();
        assert_eq!(shared.publish(rmq.arena(), rmq.frontier_set().unwrap()), 0);
        assert_eq!(shared.epoch(), 1, "no-op publish must not bump the epoch");
        let after = shared.stats();
        assert_eq!(after.publishes, before.publishes + 1);
        assert_eq!(after.merged, before.merged);
    }

    #[test]
    fn merge_keeps_the_pareto_invariant_across_publishers() {
        let shared = SharedFrontier::new();
        for seed in [1u64, 2, 3, 4] {
            let (rmq, _) = worker_frontier(seed, 8);
            shared.publish(rmq.arena(), rmq.frontier_set().unwrap());
        }
        let snap = shared.snapshot();
        assert!(!snap.plans.is_empty());
        for a in &snap.plans {
            for b in &snap.plans {
                if !Arc::ptr_eq(a, b) && a.same_output(b) {
                    assert!(
                        !a.cost().strictly_dominates(b.cost()),
                        "global frontier holds a dominated plan"
                    );
                }
            }
        }
        let stats = shared.stats();
        assert_eq!(stats.publishes, 4);
        assert!(stats.offered >= stats.merged);
        assert!(stats.arena_nodes > 0);
        assert!(stats.epochs >= 1);
    }

    #[test]
    fn counters_consistent_under_concurrent_exchange() {
        // Satellite invariants: merged ≤ offered, the epoch bumps only on
        // admission (so epochs ≤ merged), and the published snapshot's
        // epoch always equals the stats' epoch once the dust settles —
        // regardless of how publishes interleave across threads.
        let shared = SharedFrontier::new();
        // `Rmq` is intentionally !Sync (interior RefCell caches), so each
        // thread builds and owns its worker — as in real ParRmq usage.
        std::thread::scope(|s| {
            let shared = &shared;
            for seed in 1..=4u64 {
                s.spawn(move || {
                    let (rmq, _) = worker_frontier(seed, 6);
                    for _ in 0..3 {
                        shared.publish(rmq.arena(), rmq.frontier_set().unwrap());
                        let snap = shared.snapshot();
                        shared.record_absorbed(snap.plans.len());
                    }
                });
            }
        });
        let stats = shared.stats();
        assert_eq!(stats.publishes, 12);
        assert!(stats.merged <= stats.offered, "{stats:?}");
        assert!(
            stats.epochs <= stats.merged,
            "every epoch bump must admit at least one plan: {stats:?}"
        );
        assert!(stats.epochs >= 1);
        assert_eq!(shared.snapshot().epoch, stats.epochs);
        assert!(stats.absorbed > 0);
        // The surviving global frontier cannot exceed what was merged.
        assert!(shared.snapshot().plans.len() as u64 <= stats.merged);
    }

    #[test]
    fn partial_publish_merges_subquery_frontiers_per_table_set() {
        let shared = SharedFrontier::new();
        assert_eq!(shared.partial_epoch(), 0);
        let (rmq, _) = worker_frontier(1, 12);
        let query = TableSet::prefix(6);
        fn subs(
            r: &Rmq<StubModel>,
            query: TableSet,
        ) -> impl Iterator<Item = (TableSet, &ParetoSet<PlanId>)> + '_ {
            r.cache().entry_sets().filter(move |(rel, _)| *rel != query)
        }
        let merged = shared.publish_partials(rmq.arena(), subs(&rmq, query));
        assert!(merged > 0, "sub-query frontiers must merge");
        assert_eq!(shared.partial_epoch(), 1);
        let snap = shared.partial_snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.plans.len(), merged);
        assert!(snap.plans.iter().all(|p| p.rel() != query));

        // Re-publishing the identical partial frontiers merges nothing and
        // leaves the epoch alone.
        assert_eq!(shared.publish_partials(rmq.arena(), subs(&rmq, query)), 0);
        assert_eq!(shared.partial_epoch(), 1);

        // A different worker's partials contribute under the same keys.
        let (other, _) = worker_frontier(7, 12);
        shared.publish_partials(other.arena(), subs(&other, query));
        let stats = shared.stats();
        assert!(stats.partial_offered >= stats.partial_merged);
        assert!(stats.partial_table_sets > 0);
        assert_eq!(stats.partial_epochs, shared.partial_epoch());

        // Full-query exchange state is untouched by partial publishes.
        assert_eq!(shared.epoch(), 0);
        assert_eq!(stats.publishes, 0);
    }

    #[test]
    fn snapshots_are_immutable_under_later_publishes() {
        let shared = SharedFrontier::new();
        let (a, _) = worker_frontier(1, 6);
        shared.publish(a.arena(), a.frontier_set().unwrap());
        let old = shared.snapshot();
        let old_rendered: Vec<String> = old.plans.iter().map(|p| format!("{}", p.cost())).collect();
        let (b, _) = worker_frontier(9, 12);
        shared.publish(b.arena(), b.frontier_set().unwrap());
        // The old snapshot is untouched even though the global moved on.
        let rendered_again: Vec<String> =
            old.plans.iter().map(|p| format!("{}", p.cost())).collect();
        assert_eq!(old_rendered, rendered_again);
        shared.record_absorbed(3);
        assert_eq!(shared.stats().absorbed, 3);
    }
}
