//! Adaptive exchange period: exponential backoff when publishes stop
//! merging, immediate tightening after admissions.
//!
//! The exchange period governs how often each `ParRmq` worker pauses its
//! climb loop to publish its local frontier into the [`SharedFrontier`]
//! and absorb the global one. Early in a run almost every publish admits
//! new survivors, so a short period spreads good plans fast; late in a
//! run frontiers converge and publishes become pure synchronization
//! overhead. [`AdaptiveExchange`] tracks the live `exchange.offered` /
//! `exchange.merged` outcome of each publish:
//!
//! * **Back off** — when a full *window* of consecutive publishes merges
//!   nothing (`merged == 0`), double the period (up to `base << MAX_LEVEL`)
//!   and record the new level in the `exchange.backoff_level` gauge, with
//!   a `Note` journal event so `serve --obs-json` makes the adaptation
//!   visible.
//! * **Tighten** — the moment any publish merges at least one plan, reset
//!   to the base period: an admission means the frontiers are moving
//!   again and information is worth spreading.
//!
//! The policy is shared by all workers of one `ParRmq` (one publish
//! anywhere that merges resets everyone), which is what makes the
//! backoff an estimate of *global* convergence rather than one worker's
//! luck. Deterministic mode never consults it — its exchange schedule is
//! part of the reproducible contract.
//!
//! [`SharedFrontier`]: crate::SharedFrontier

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use moqo_obs::journal::{self, EventKind, Level, Target};
use moqo_obs::metrics;

/// Highest backoff level: the period saturates at `base << MAX_LEVEL`
/// (64× the configured period).
pub const MAX_BACKOFF_LEVEL: u32 = 6;

/// Shared adaptive-exchange state for one parallel optimizer run. See the
/// module docs for the policy.
#[derive(Debug)]
pub struct AdaptiveExchange {
    base_period: u64,
    /// Publishes with `merged == 0` required to escalate one level.
    window: u32,
    /// Current backoff level; period = `base_period << level`.
    level: AtomicU32,
    /// Consecutive zero-merge publishes in the current window.
    dry_publishes: Mutex<u32>,
}

impl AdaptiveExchange {
    /// Creates the policy for a run with the given configured period and
    /// worker count (the window scales with the fan-out so one full round
    /// of dry publishes — every worker reporting nothing — escalates).
    pub fn new(base_period: u64, workers: usize) -> Self {
        AdaptiveExchange {
            base_period: base_period.max(1),
            window: (workers.max(1)) as u32,
            level: AtomicU32::new(0),
            dry_publishes: Mutex::new(0),
        }
    }

    /// The current exchange period in iterations. Cheap (one relaxed
    /// load); called on every climb iteration.
    #[inline]
    pub fn period(&self) -> u64 {
        self.base_period << self.level.load(Ordering::Relaxed)
    }

    /// The current backoff level (0 = base period).
    pub fn level(&self) -> u32 {
        self.level.load(Ordering::Relaxed)
    }

    /// Records the outcome of one publish: `merged` plans admitted into
    /// the global frontier. Tightens to the base period on any admission;
    /// escalates one level after a full window of dry publishes.
    pub fn on_publish(&self, merged: usize) {
        if merged > 0 {
            let mut dry = self.dry_publishes.lock().unwrap();
            *dry = 0;
            if self.level.swap(0, Ordering::Relaxed) != 0 {
                metrics().exchange_backoff_level.set(0);
            }
            return;
        }
        let mut dry = self.dry_publishes.lock().unwrap();
        *dry += 1;
        if *dry < self.window {
            return;
        }
        *dry = 0;
        let level = self.level.load(Ordering::Relaxed);
        if level >= MAX_BACKOFF_LEVEL {
            return;
        }
        let next = level + 1;
        self.level.store(next, Ordering::Relaxed);
        metrics().exchange_backoff_level.set(next as u64);
        journal::emit_with(Target::Exchange, Level::Info, || {
            EventKind::Note("exchange backoff: window of publishes merged nothing")
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_starts_at_base_and_doubles_per_window() {
        let adapt = AdaptiveExchange::new(8, 2);
        assert_eq!(adapt.period(), 8);
        // One dry publish is not a full window of two.
        adapt.on_publish(0);
        assert_eq!(adapt.period(), 8);
        adapt.on_publish(0);
        assert_eq!(adapt.period(), 16);
        assert_eq!(adapt.level(), 1);
        // Two more dry publishes: next level.
        adapt.on_publish(0);
        adapt.on_publish(0);
        assert_eq!(adapt.period(), 32);
    }

    #[test]
    fn any_merge_resets_to_base() {
        let adapt = AdaptiveExchange::new(4, 1);
        for _ in 0..3 {
            adapt.on_publish(0);
        }
        assert!(adapt.period() > 4);
        adapt.on_publish(2);
        assert_eq!(adapt.period(), 4);
        assert_eq!(adapt.level(), 0);
    }

    #[test]
    fn backoff_saturates_at_max_level() {
        let adapt = AdaptiveExchange::new(1, 1);
        for _ in 0..100 {
            adapt.on_publish(0);
        }
        assert_eq!(adapt.level(), MAX_BACKOFF_LEVEL);
        assert_eq!(adapt.period(), 1 << MAX_BACKOFF_LEVEL);
    }

    #[test]
    fn zero_base_period_is_clamped() {
        let adapt = AdaptiveExchange::new(0, 0);
        assert_eq!(adapt.period(), 1);
    }
}
