//! The shared work-stealing executor: one pool for every session and every
//! intra-query worker.
//!
//! The unit of work is a **climb batch**: a task is a resumable closure
//! that runs at most one batch of hill-climbing iterations per invocation
//! and returns [`TaskStatus::Yield`] (more work left) or
//! [`TaskStatus::Done`]. Scheduling is classic work stealing adapted to the
//! crate's `#![deny(unsafe_code)]` policy — per-worker deques are
//! `Mutex<VecDeque>` rather than Chase–Lev arrays, which is the right
//! trade here because tasks are batch-granular (hundreds of microseconds to
//! milliseconds), so queue operations are far off the hot path:
//!
//! ```text
//!            submit()                 spawn_in() from a pool worker
//!               │                            │
//!               ▼                            ▼
//!          ┌─────────┐   pop-front   ┌──────────────┐
//!          │injector │──────────────▶│ worker deque │◀─ yield re-push
//!          └─────────┘               └──────┬───────┘   (own back)
//!               ▲                           │ steal-on-idle
//!               │                           ▼
//!        external threads          other idle workers
//! ```
//!
//! * A pool worker takes, in order: the **injector** (global FIFO — new
//!   sessions are admitted oldest-first), its **own deque** (front;
//!   yielded tasks re-enter at the back, so a worker round-robins its
//!   resident tasks), and finally **steals** the oldest *stealable* task
//!   from another worker's deque (`exec_pool.steals`).
//! * A thread that must wait for a [`TaskGroup`] (e.g. a `ParRmq` round
//!   fanned out as sub-tasks) never blocks idle: [`PoolHandle::help_until`]
//!   runs its own group's tasks first and otherwise **donates** batches to
//!   foreign groups (`exec_pool.donations`), so a waiting wide session is
//!   itself a worker.
//! * Tasks submitted with `stealable: false` (deterministic-mode `ParRmq`
//!   splits) never migrate between worker deques; only their own group's
//!   helper may claim them from afar. Determinism never *depends* on this —
//!   per-worker RNG streams are thread-independent — but it keeps the
//!   deterministic mode's scheduling inert, as its differential-oracle role
//!   demands.
//!
//! Worker threads advertise the pool through a thread local;
//! [`ExecPool::current`] is how `ParRmq` discovers it is being stepped *on*
//! the pool (by the optimization service) and routes its fan-out through
//! shared workers instead of spawning private scoped threads.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use moqo_obs::metrics;
use moqo_obs::spans::{self, SpanId, SpanKind};

/// What a task invocation reports back to the executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskStatus {
    /// The task has more batches to run: re-queue it.
    Yield,
    /// The task is finished: drop it (and credit its group, if any).
    Done,
}

/// Scheduling attributes of a task.
#[derive(Clone, Copy, Debug)]
pub struct TaskSpec {
    /// Whether idle workers may steal the task off another worker's deque.
    /// Deterministic-mode splits set `false` to keep scheduling inert.
    pub stealable: bool,
    /// Whether a helper waiting on a *different* group may run the task as
    /// a donation. Leaf batch tasks set `true`; tasks that may themselves
    /// wait on a group (session slices) must set `false`, which bounds the
    /// helper recursion depth to one nested task frame.
    pub helpable: bool,
}

impl TaskSpec {
    /// A leaf climb-batch task: stealable and donation-eligible.
    pub fn batch() -> Self {
        TaskSpec {
            stealable: true,
            helpable: true,
        }
    }

    /// A deterministic-mode batch: pinned to its deque, claimable only by
    /// its own group's helper.
    pub fn pinned_batch() -> Self {
        TaskSpec {
            stealable: false,
            helpable: false,
        }
    }

    /// A top-level task that may itself fan out and wait on a group (a
    /// service session slice): stealable between workers, but never run
    /// inside another task's helping wait.
    pub fn root() -> Self {
        TaskSpec {
            stealable: true,
            helpable: false,
        }
    }
}

struct Task {
    run: Box<dyn FnMut() -> TaskStatus + Send>,
    spec: TaskSpec,
    /// Group membership: `0` = none. Kept separately from `group` so
    /// helpers can match without touching the `Arc`.
    group_id: u64,
    group: Option<Arc<GroupInner>>,
    /// The spawner's ambient span, captured at submission when tracing is
    /// enabled ([`SpanId::NONE`] otherwise). The executor re-installs it as
    /// the running thread's ambient span around every invocation, so spans
    /// begun inside a stolen or donated batch still parent to the session
    /// that spawned the work — causality survives migration.
    span: SpanId,
}

/// The spawner's ambient span when tracing is on; the disabled path is the
/// one relaxed load of [`spans::enabled`].
fn spawn_span() -> SpanId {
    if spans::enabled() {
        spans::current()
    } else {
        SpanId::NONE
    }
}

struct GroupInner {
    id: u64,
    /// Tasks spawned into the group that have not yet reported `Done`.
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl GroupInner {
    fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock().unwrap();
            self.cond.notify_all();
        }
    }
}

/// A completion latch over a set of tasks spawned with
/// [`PoolHandle::spawn_in`]. Wait for it with [`PoolHandle::help_until`]
/// (which lends the waiting thread to the pool) — there is deliberately no
/// blocking `wait()`: a pool worker that parked on its own sub-tasks would
/// deadlock a saturated pool.
#[derive(Clone)]
pub struct TaskGroup {
    inner: Arc<GroupInner>,
}

impl TaskGroup {
    /// Whether every task in the group has completed.
    pub fn is_done(&self) -> bool {
        self.inner.remaining.load(Ordering::Acquire) == 0
    }

    /// Briefly parks the calling thread until the group *may* be done (a
    /// completion notification or a short timeout). Used between helping
    /// attempts; never a substitute for [`PoolHandle::help_until`].
    fn wait_brief(&self) {
        let guard = self.inner.lock.lock().unwrap();
        if !self.is_done() {
            let _ = self
                .inner
                .cond
                .wait_timeout(guard, Duration::from_micros(200))
                .unwrap();
        }
    }
}

thread_local! {
    /// The pool whose worker loop is running on this thread, if any.
    static CURRENT_POOL: RefCell<Option<Weak<PoolInner>>> = const { RefCell::new(None) };
    /// This thread's worker index within [`CURRENT_POOL`].
    static CURRENT_WORKER: Cell<Option<usize>> = const { Cell::new(None) };
}

struct PoolInner {
    /// Per-worker deques (resident tasks; steal targets).
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Global FIFO for external submissions and helper re-queues.
    injector: Mutex<VecDeque<Task>>,
    /// Parking condvar, paired with the injector mutex.
    park: Condvar,
    /// Tasks currently sitting in the injector or any deque. Pushers bump
    /// it *before* notifying; parkers re-check it under the injector lock,
    /// which closes the missed-wakeup race.
    pending: AtomicUsize,
    shutdown: AtomicBool,
    next_group: AtomicU64,
}

impl PoolInner {
    fn push_task(&self, task: Task, prefer: Option<usize>) {
        match prefer {
            Some(w) if w < self.deques.len() => {
                self.deques[w].lock().unwrap().push_back(task);
            }
            _ => {
                self.injector.lock().unwrap().push_back(task);
            }
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        // Notify under the injector lock so a parker that checked `pending`
        // before our increment is already inside `wait` and gets woken.
        let _guard = self.injector.lock().unwrap();
        self.park.notify_one();
    }

    fn take_pending(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    /// Next task for pool worker `me`: injector, own deque, then steal.
    fn next_task(&self, me: usize) -> Option<Task> {
        if let Some(task) = self.injector.lock().unwrap().pop_front() {
            self.take_pending();
            return Some(task);
        }
        if let Some(task) = self.deques[me].lock().unwrap().pop_front() {
            self.take_pending();
            return Some(task);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (me + off) % n;
            let mut deque = self.deques[victim].lock().unwrap();
            if let Some(pos) = deque.iter().position(|t| t.spec.stealable) {
                let task = deque.remove(pos).expect("position is in range");
                drop(deque);
                self.take_pending();
                metrics().exec_pool_steals.incr();
                // Link the migration into the stolen task's causal tree:
                // arg packs (stealer + 1) << 32 | (victim + 1), pool-worker
                // indices 1-based so 0 keeps meaning "unknown".
                spans::instant(
                    SpanKind::Steal,
                    task.span,
                    ((me as u64 + 1) << 32) | (victim as u64 + 1),
                );
                return Some(task);
            }
        }
        None
    }

    /// Next task for a helper waiting on group `gid`: its own group's tasks
    /// from anywhere first (work conservation — not a steal), then any
    /// donation-eligible foreign task. Returns the task and whether running
    /// it is a donation.
    fn claim_for_helper(&self, gid: u64) -> Option<(Task, bool)> {
        let take = |queue: &Mutex<VecDeque<Task>>, pred: &dyn Fn(&Task) -> bool| {
            let mut queue = queue.lock().unwrap();
            let pos = queue.iter().position(pred)?;
            queue.remove(pos)
        };
        let own: &dyn Fn(&Task) -> bool = &|t: &Task| t.group_id == gid;
        for queue in std::iter::once(&self.injector).chain(self.deques.iter()) {
            if let Some(task) = take(queue, own) {
                self.take_pending();
                return Some((task, false));
            }
        }
        let foreign: &dyn Fn(&Task) -> bool = &|t: &Task| t.spec.helpable;
        for queue in std::iter::once(&self.injector).chain(self.deques.iter()) {
            if let Some(task) = take(queue, foreign) {
                self.take_pending();
                return Some((task, true));
            }
        }
        None
    }

    /// Runs one task invocation; re-queues on yield (to `requeue_to`'s
    /// deque when given, else the injector), credits the group on done.
    fn run_task(&self, mut task: Task, requeue_to: Option<usize>) {
        metrics().exec_pool_batches.incr();
        // Re-install the spawner's ambient span for the invocation so
        // spans begun inside the task parent correctly even after a steal
        // or donation; restore the runner's own ambient span afterwards.
        let prev = if spans::enabled() {
            Some(spans::set_current(task.span))
        } else {
            None
        };
        let status = (task.run)();
        if let Some(prev) = prev {
            spans::set_current(prev);
        }
        match status {
            TaskStatus::Yield => self.push_task(task, requeue_to),
            TaskStatus::Done => {
                if let Some(group) = task.group.take() {
                    group.complete_one();
                }
            }
        }
    }

    fn worker_loop(self: &Arc<Self>, me: usize) {
        CURRENT_POOL.with(|c| *c.borrow_mut() = Some(Arc::downgrade(self)));
        CURRENT_WORKER.with(|c| c.set(Some(me)));
        loop {
            if let Some(task) = self.next_task(me) {
                self.run_task(task, Some(me));
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let guard = self.injector.lock().unwrap();
            if self.pending.load(Ordering::SeqCst) == 0 && !self.shutdown.load(Ordering::Acquire) {
                // Timed, not indefinite: belt-and-braces against any wakeup
                // path this module grows later.
                let _ = self
                    .park
                    .wait_timeout(guard, Duration::from_millis(10))
                    .unwrap();
            }
        }
    }

    /// Pops any queued task (shutdown drain).
    fn pop_any(&self) -> Option<Task> {
        if let Some(task) = self.injector.lock().unwrap().pop_front() {
            self.take_pending();
            return Some(task);
        }
        for deque in &self.deques {
            if let Some(task) = deque.lock().unwrap().pop_front() {
                self.take_pending();
                return Some(task);
            }
        }
        None
    }
}

/// A cheap cloneable handle for submitting work to an [`ExecPool`].
#[derive(Clone)]
pub struct PoolHandle {
    inner: Arc<PoolInner>,
}

impl PoolHandle {
    /// Number of pool worker threads.
    pub fn workers(&self) -> usize {
        self.inner.deques.len()
    }

    /// Tasks currently queued (injector + deques), excluding tasks being
    /// executed right now.
    pub fn queued_tasks(&self) -> usize {
        self.inner.pending.load(Ordering::SeqCst)
    }

    /// Creates an empty task group.
    pub fn group(&self) -> TaskGroup {
        TaskGroup {
            inner: Arc::new(GroupInner {
                id: self.inner.next_group.fetch_add(1, Ordering::Relaxed) + 1,
                remaining: AtomicUsize::new(0),
                lock: Mutex::new(()),
                cond: Condvar::new(),
            }),
        }
    }

    /// Submits a free-standing resumable task (no group). When called from
    /// a pool worker the task lands on that worker's deque (locality);
    /// otherwise it enters the global injector.
    pub fn spawn(&self, spec: TaskSpec, run: impl FnMut() -> TaskStatus + Send + 'static) {
        self.inner.push_task(
            Task {
                run: Box::new(run),
                spec,
                group_id: 0,
                group: None,
                span: spawn_span(),
            },
            current_worker_of(&self.inner),
        );
    }

    /// Submits a task into `group`; the group completes when every spawned
    /// task has returned [`TaskStatus::Done`]. Spawned from a pool worker,
    /// the task lands on that worker's own deque (steal targets for idle
    /// workers); otherwise it enters the injector.
    pub fn spawn_in(
        &self,
        group: &TaskGroup,
        spec: TaskSpec,
        run: impl FnMut() -> TaskStatus + Send + 'static,
    ) {
        group.inner.remaining.fetch_add(1, Ordering::AcqRel);
        self.inner.push_task(
            Task {
                run: Box::new(run),
                spec,
                group_id: group.inner.id,
                group: Some(Arc::clone(&group.inner)),
                span: spawn_span(),
            },
            current_worker_of(&self.inner),
        );
    }

    /// Waits for `group` to complete by **helping**: the calling thread
    /// runs the group's queued tasks itself, and donates batches to foreign
    /// groups when its own group's tasks are all in flight elsewhere. This
    /// is the only wait primitive — it keeps a saturated pool deadlock-free
    /// (a worker waiting on sub-tasks executes them) and turns waiting wide
    /// sessions into extra workers.
    pub fn help_until(&self, group: &TaskGroup) {
        while !group.is_done() {
            match self.inner.claim_for_helper(group.inner.id) {
                Some((task, donation)) => {
                    if donation {
                        metrics().exec_pool_donations.incr();
                        spans::instant(SpanKind::Donation, task.span, task.group_id);
                    }
                    self.inner.run_task(task, current_worker_of(&self.inner));
                }
                None => group.wait_brief(),
            }
        }
    }
}

/// Returns the calling thread's worker index if it is a worker of `inner`.
fn current_worker_of(inner: &Arc<PoolInner>) -> Option<usize> {
    let ours = CURRENT_POOL.with(|c| {
        c.borrow()
            .as_ref()
            .and_then(Weak::upgrade)
            .is_some_and(|p| Arc::ptr_eq(&p, inner))
    });
    if ours {
        CURRENT_WORKER.with(Cell::get)
    } else {
        None
    }
}

/// The owning side of the executor: worker threads plus shutdown. See the
/// module docs for the scheduling model.
pub struct ExecPool {
    inner: Arc<PoolInner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ExecPool {
    /// Starts a pool with `workers` threads. `0` is allowed: tasks queue
    /// until an external thread drains them via [`PoolHandle::help_until`]
    /// or [`ExecPool::shutdown`] (admission tests, manual draining).
    pub fn new(workers: usize) -> Self {
        let inner = Arc::new(PoolInner {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            park: Condvar::new(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            next_group: AtomicU64::new(0),
        });
        let threads = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("moqo-exec-{i}"))
                    .spawn(move || inner.worker_loop(i))
                    .expect("spawn pool worker")
            })
            .collect();
        ExecPool {
            inner,
            threads: Mutex::new(threads),
        }
    }

    /// A submission handle.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The pool whose worker loop is running on the calling thread, if any
    /// — how `ParRmq` detects it is being stepped on shared workers and
    /// fans out through them instead of private scoped threads.
    pub fn current() -> Option<PoolHandle> {
        CURRENT_POOL.with(|c| {
            c.borrow()
                .as_ref()
                .and_then(Weak::upgrade)
                .map(|inner| PoolHandle { inner })
        })
    }

    /// Shuts the pool down: workers finish draining the queues and exit;
    /// any tasks left behind (or submitted to a zero-worker pool) are run
    /// to completion inline. Tasks are responsible for observing their
    /// external shutdown signals and finishing promptly once asked.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.inner.injector.lock().unwrap();
            self.inner.park.notify_all();
        }
        for thread in self.threads.lock().unwrap().drain(..) {
            let _ = thread.join();
        }
        while let Some(mut task) = self.inner.pop_any() {
            loop {
                match (task.run)() {
                    TaskStatus::Yield => continue,
                    TaskStatus::Done => {
                        if let Some(group) = task.group.take() {
                            group.complete_one();
                        }
                        break;
                    }
                }
            }
        }
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn delta(read: impl Fn() -> u64, body: impl FnOnce()) -> u64 {
        let before = read();
        body();
        read().saturating_sub(before)
    }

    /// Spin-waits (yielding) until `done` holds, with a generous timeout —
    /// used where a task must run on a pool worker, so the test thread
    /// cannot help without perturbing placement.
    fn spin_until(done: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !done() {
            assert!(
                std::time::Instant::now() < deadline,
                "pool made no progress"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn groups_complete_and_yield_requeues() {
        let pool = ExecPool::new(2);
        let handle = pool.handle();
        let group = handle.group();
        let total = Arc::new(AtomicU32::new(0));
        for _ in 0..8 {
            let total = Arc::clone(&total);
            let mut left = 3u32;
            handle.spawn_in(&group, TaskSpec::batch(), move || {
                total.fetch_add(1, Ordering::SeqCst);
                left -= 1;
                if left == 0 {
                    TaskStatus::Done
                } else {
                    TaskStatus::Yield
                }
            });
        }
        handle.help_until(&group);
        assert!(group.is_done());
        // Every task ran all three of its batches.
        assert_eq!(total.load(Ordering::SeqCst), 24);
        pool.shutdown();
    }

    #[test]
    fn zero_worker_pool_runs_everything_through_helpers() {
        let pool = ExecPool::new(0);
        let handle = pool.handle();
        assert_eq!(handle.workers(), 0);
        let group = handle.group();
        let ran = Arc::new(AtomicU32::new(0));
        for _ in 0..4 {
            let ran = Arc::clone(&ran);
            handle.spawn_in(&group, TaskSpec::batch(), move || {
                ran.fetch_add(1, Ordering::SeqCst);
                TaskStatus::Done
            });
        }
        assert_eq!(handle.queued_tasks(), 4);
        handle.help_until(&group);
        assert_eq!(ran.load(Ordering::SeqCst), 4);
        assert_eq!(handle.queued_tasks(), 0);
    }

    #[test]
    fn idle_workers_steal_queued_batches() {
        // One worker busy-holds the pool's attention with a long task while
        // batches pile onto its deque; the other worker must steal them.
        // The test thread never helps — placement must stay on the pool.
        let pool = ExecPool::new(2);
        let handle = pool.handle();
        let steals = delta(
            || metrics().exec_pool_steals.get(),
            || {
                let done = Arc::new(AtomicBool::new(false));
                // A root task that, once running on some worker, spawns its
                // sub-tasks (landing on that worker's own deque) and then
                // spins without helping until everything else finished —
                // forcing the other worker to steal.
                let inner_handle = handle.clone();
                let inner_group = handle.group();
                let done_in = Arc::clone(&done);
                handle.spawn(TaskSpec::root(), move || {
                    for _ in 0..6 {
                        inner_handle.spawn_in(&inner_group, TaskSpec::batch(), || TaskStatus::Done);
                    }
                    while !inner_group.is_done() {
                        std::hint::spin_loop();
                    }
                    done_in.store(true, Ordering::SeqCst);
                    TaskStatus::Done
                });
                spin_until(|| done.load(Ordering::SeqCst));
            },
        );
        assert!(steals > 0, "the idle worker must have stolen batches");
        pool.shutdown();
    }

    #[test]
    fn unstealable_tasks_stay_put_but_helpers_claim_them() {
        let pool = ExecPool::new(1);
        let handle = pool.handle();
        let group = handle.group();
        let ran = Arc::new(AtomicU32::new(0));
        for _ in 0..3 {
            let ran = Arc::clone(&ran);
            handle.spawn_in(&group, TaskSpec::pinned_batch(), move || {
                ran.fetch_add(1, Ordering::SeqCst);
                TaskStatus::Done
            });
        }
        handle.help_until(&group);
        assert_eq!(ran.load(Ordering::SeqCst), 3);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_tasks_inline() {
        let pool = ExecPool::new(0);
        let handle = pool.handle();
        let ran = Arc::new(AtomicU32::new(0));
        for _ in 0..5 {
            let ran = Arc::clone(&ran);
            let mut yielded = false;
            handle.spawn(TaskSpec::root(), move || {
                if !yielded {
                    yielded = true;
                    return TaskStatus::Yield;
                }
                ran.fetch_add(1, Ordering::SeqCst);
                TaskStatus::Done
            });
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 5);
        assert_eq!(handle.queued_tasks(), 0);
    }

    #[test]
    fn span_causality_survives_stealing() {
        // An oversubscribed scenario: the root session task occupies one of
        // the two workers and spins without helping, so every batch it
        // spawned onto its own deque must be *stolen* by the other worker.
        // Causality contract: batch spans begun on the stealing worker
        // still parent to the session span, and every steal instant links
        // into the session's tree with a stealer/victim pair.
        spans::set_capacity(1024);
        spans::drain();
        spans::enable();
        let pool = ExecPool::new(2);
        let handle = pool.handle();
        let session_id = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicBool::new(false));
        let (sid_in, done_in) = (Arc::clone(&session_id), Arc::clone(&done));
        let inner_handle = handle.clone();
        handle.spawn(TaskSpec::root(), move || {
            let session = spans::begin(SpanKind::Session, SpanId::NONE);
            sid_in.store(spans::id_of(&session).raw(), Ordering::SeqCst);
            let prev = spans::set_current(spans::id_of(&session));
            let group = inner_handle.group();
            for _ in 0..6 {
                inner_handle.spawn_in(&group, TaskSpec::batch(), || {
                    let span = spans::begin(SpanKind::Batch, SpanId::NONE);
                    spans::finish(span);
                    TaskStatus::Done
                });
            }
            while !group.is_done() {
                std::hint::spin_loop();
            }
            spans::set_current(prev);
            spans::finish(session);
            done_in.store(true, Ordering::SeqCst);
            TaskStatus::Done
        });
        spin_until(|| done.load(Ordering::SeqCst));
        pool.shutdown();
        spans::disable();
        let records = spans::drain();
        let session = session_id.load(Ordering::SeqCst);
        assert_ne!(session, 0, "the session span must have been recorded");
        let batches: Vec<_> = records
            .iter()
            .filter(|r| r.kind == SpanKind::Batch)
            .collect();
        assert_eq!(batches.len(), 6, "every stolen batch must record a span");
        for b in &batches {
            assert_eq!(
                b.parent, session,
                "a stolen batch must still parent to its session span"
            );
        }
        let steals: Vec<_> = records
            .iter()
            .filter(|r| r.kind == SpanKind::Steal && r.parent == session)
            .collect();
        assert!(
            !steals.is_empty(),
            "the idle worker must have stolen session batches"
        );
        for s in steals {
            let stealer = (s.arg >> 32) as u32;
            let victim = (s.arg & 0xffff_ffff) as u32;
            assert!(stealer >= 1 && victim >= 1, "packed 1-based indices");
            assert_ne!(stealer, victim, "a steal links two distinct workers");
        }
    }

    #[test]
    fn current_is_none_off_pool_and_some_on_workers() {
        assert!(ExecPool::current().is_none());
        let pool = ExecPool::new(1);
        let handle = pool.handle();
        let saw = Arc::new(AtomicU32::new(0));
        let saw_in = Arc::clone(&saw);
        // Plain spawn + spin-wait: the test thread must not help, or the
        // task could run here (off-pool) instead of on the worker.
        handle.spawn(TaskSpec::root(), move || {
            let on_pool = ExecPool::current().is_some();
            saw_in.store(if on_pool { 1 } else { 2 }, Ordering::SeqCst);
            TaskStatus::Done
        });
        spin_until(|| saw.load(Ordering::SeqCst) != 0);
        assert_eq!(saw.load(Ordering::SeqCst), 1, "workers advertise the pool");
        pool.shutdown();
    }
}
