//! # moqo-parallel — intra-query parallel anytime optimization
//!
//! The paper's RMQ algorithm is a multi-start randomized hill climber whose
//! restarts are independent: the anytime frontier is just the Pareto union
//! of per-climb local optima, which makes a *single query* embarrassingly
//! parallel. [`ParRmq`] exploits that: it runs RMQ for one query across `N`
//! worker threads, each owning a private [`Rmq`] instance (its own session
//! arena, transient climb arena, partial-plan cache, and RNG stream seeded
//! deterministically as `seed ⊕ worker_id`), and periodically exchanges
//! survivors through a shared epoch-versioned global frontier
//! ([`SharedFrontier`]) — the island-model migration scheme of parallel
//! evolutionary multi-objective optimizers, applied to RMQ's restart
//! structure. Approximation-precision guarantees are unchanged: every plan
//! still enters a frontier through the paper's `SigBetter` pruning rule.
//!
//! ## Execution model
//!
//! [`ParRmq::optimize`] fans the budget out over scoped worker threads:
//!
//! * [`Budget::Iterations`] is honored **exactly** by a shared atomic
//!   counter — workers claim iterations until the counter reaches the
//!   budget, so the total is independent of thread scheduling.
//! * [`Budget::Time`] / [`Budget::Deadline`] are honored by wall clock with
//!   a shared [`StopFlag`]: the first worker to observe the deadline raises
//!   the flag, and every climber checks it once per hill-climbing step
//!   (see [`Rmq::iterate_aborting`]) — so all threads wind down within one
//!   climb step of the deadline instead of one full iteration.
//!
//! [`ParRmq`] also implements the anytime [`Optimizer`] trait:
//! [`Optimizer::step`] runs one bounded *round* (`workers × batch`
//! iterations), which is how the optimization service schedules it in
//! slices alongside other sessions.
//!
//! ## Deterministic reduction mode
//!
//! With [`ParRmqConfig::deterministic`] set, workers never exchange plans
//! mid-run and an iteration budget is split statically across workers
//! (worker `w` runs `⌊n/N⌋ + (w < n mod N)` iterations). Each worker is
//! then an independent, fully deterministic sequential RMQ run, and
//! [`ParRmq::frontier`] reduces them in worker order through exact
//! `SigBetter` pruning — producing a frontier **bit-identical to the
//! sequential union of the per-worker runs**, regardless of thread
//! scheduling. The differential test suite pins this equivalence against
//! literally-sequential reference runs.
//!
//! ## When to prefer `ParRmq` over per-session parallelism
//!
//! The optimization service already parallelizes *across* sessions; fan a
//! single session out with `ParRmq` when one query's time-to-frontier
//! matters more than aggregate throughput — a latency-critical query under
//! a tight deadline on an otherwise idle pool. Under saturation,
//! per-session parallelism wastes no work on duplicate exploration and
//! remains the better default.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod frontier;

pub use frontier::{ExchangeStats, FrontierSnapshot, SharedFrontier};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use moqo_core::archive::Admission;
use moqo_core::model::CostModel;
use moqo_core::optimizer::{AbortCheck, Budget, Optimizer, PlanExchange, StopFlag};
use moqo_core::pareto::ParetoSet;
use moqo_core::plan::PlanRef;
use moqo_core::rmq::{Rmq, RmqConfig};
use moqo_core::tables::TableSet;

/// Configuration of the parallel optimizer.
#[derive(Clone, Copy, Debug)]
pub struct ParRmqConfig {
    /// Worker threads (≥ 1). Worker `w` runs an independent RMQ seeded
    /// `base.seed ⊕ w`, so worker 0 reproduces the sequential run.
    pub workers: usize,
    /// Per-worker RMQ configuration (seed, climb rules, α schedule, plan
    /// space). The seed is the *base* of the per-worker seed derivation.
    pub base: RmqConfig,
    /// Iterations per worker per [`Optimizer::step`] round.
    pub batch: u64,
    /// Live-mode exchange period: every worker publishes its query frontier
    /// into the shared global frontier — and absorbs the latest global
    /// snapshot — after this many completed iterations. Ignored (no
    /// exchange) in deterministic mode.
    pub exchange_period: u64,
    /// Deterministic reduction mode: no mid-run exchange, static iteration
    /// split, frontier bit-identical to the sequential union of the
    /// per-worker runs (see the crate docs).
    pub deterministic: bool,
}

impl Default for ParRmqConfig {
    fn default() -> Self {
        ParRmqConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            base: RmqConfig::default(),
            batch: 16,
            exchange_period: 8,
            deterministic: false,
        }
    }
}

impl ParRmqConfig {
    /// Default configuration with the given base seed and worker count.
    pub fn seeded(seed: u64, workers: usize) -> Self {
        ParRmqConfig {
            workers,
            base: RmqConfig::seeded(seed),
            ..ParRmqConfig::default()
        }
    }

    /// The same configuration in deterministic reduction mode.
    pub fn deterministic(mut self) -> Self {
        self.deterministic = true;
        self
    }
}

/// Statistics of one [`ParRmq::optimize`] call.
#[derive(Clone, Debug, Default)]
pub struct ParRunStats {
    /// Iterations completed across all workers.
    pub iterations: u64,
    /// Iterations completed per worker (index = worker id).
    pub per_worker: Vec<u64>,
    /// Wall-clock time of the call.
    pub elapsed: Duration,
    /// Exchange counters at the end of the call (lifetime totals).
    pub exchange: ExchangeStats,
}

/// One worker: a private sequential RMQ plus its exchange bookkeeping.
struct Worker<M: CostModel> {
    rmq: Rmq<M>,
    /// Completed iterations over the optimizer's lifetime.
    iterations: u64,
    /// Iterations since the last exchange (live mode).
    since_exchange: u64,
    /// Last global epoch this worker absorbed.
    last_seen_epoch: u64,
    /// Plans absorbed from global snapshots over the lifetime.
    absorbed: u64,
}

/// How a worker decides whether to run its next iteration.
enum WorkPlan<'a> {
    /// Run exactly this many iterations (deterministic split).
    Fixed(u64),
    /// Claim iterations from a shared counter until `total` are issued.
    Claim { issued: &'a AtomicU64, total: u64 },
    /// Run until the abort condition fires (deadline / stop flag).
    Until(AbortCheck),
}

/// The worker thread body: iterate under the plan, exchanging through the
/// shared frontier at the configured period (live mode). Returns the number
/// of iterations completed by this call.
fn run_worker<M: CostModel>(
    worker: &mut Worker<M>,
    plan: WorkPlan<'_>,
    exchange: Option<(&SharedFrontier, u64)>,
) -> u64 {
    let mut done = 0u64;
    loop {
        match &plan {
            WorkPlan::Fixed(n) => {
                if done >= *n {
                    break;
                }
            }
            WorkPlan::Claim { issued, total } => {
                if issued.fetch_add(1, Ordering::Relaxed) >= *total {
                    break;
                }
            }
            WorkPlan::Until(abort) => {
                if abort.should_abort() {
                    break;
                }
            }
        }
        let completed = match &plan {
            // Deadline iterations run guarded: the abort condition is
            // re-checked inside the climb, bounding overshoot to one step.
            WorkPlan::Until(abort) => worker.rmq.iterate_aborting(abort).is_some(),
            _ => {
                worker.rmq.iterate();
                true
            }
        };
        if !completed {
            break;
        }
        done += 1;
        worker.iterations += 1;
        if let Some((shared, period)) = exchange {
            worker.since_exchange += 1;
            if worker.since_exchange >= period {
                worker.since_exchange = 0;
                publish_frontier(worker, shared);
                absorb_global(worker, shared);
            }
        }
    }
    // Survivors found since the last periodic exchange must not be lost:
    // one final publish per worker per run.
    if let Some((shared, _)) = exchange {
        publish_frontier(worker, shared);
    }
    done
}

fn publish_frontier<M: CostModel>(worker: &Worker<M>, shared: &SharedFrontier) {
    if let Some(set) = worker.rmq.frontier_set() {
        if !set.is_empty() {
            shared.publish(worker.rmq.arena(), set);
        }
    }
}

fn absorb_global<M: CostModel>(worker: &mut Worker<M>, shared: &SharedFrontier) {
    let snap = shared.snapshot();
    if snap.epoch <= worker.last_seen_epoch {
        return;
    }
    worker.last_seen_epoch = snap.epoch;
    // Same model on every worker, so no dimension filtering is needed;
    // warm_start inserts with exact pruning and can never evict better
    // plans the worker finds later.
    let absorbed = worker.rmq.warm_start(snap.plans.iter().cloned());
    worker.absorbed += absorbed as u64;
    shared.record_absorbed(absorbed);
    moqo_obs::ctx::set_epoch(snap.epoch);
    if moqo_obs::journal::enabled(
        moqo_obs::journal::Target::Exchange,
        moqo_obs::journal::Level::Debug,
    ) {
        moqo_obs::journal::emit_with(
            moqo_obs::journal::Target::Exchange,
            moqo_obs::journal::Level::Debug,
            || moqo_obs::journal::EventKind::ExchangeAbsorb {
                epoch: snap.epoch,
                absorbed: absorbed as u64,
            },
        );
    }
}

/// The parallel RMQ optimizer (see the crate docs).
///
/// Generic over how each worker holds the cost model: `M` is cloned once
/// per worker, so pass `&model` for borrowed scoped usage (clones are
/// pointer copies) or an `Arc<Model>` for a `'static + Send` optimizer the
/// optimization service can schedule.
pub struct ParRmq<M: CostModel + Clone + Send> {
    query: TableSet,
    cfg: ParRmqConfig,
    workers: Vec<Worker<M>>,
    shared: SharedFrontier,
    stop: StopFlag,
    rounds: u64,
}

impl<M: CostModel + Clone + Send> ParRmq<M> {
    /// Creates a parallel optimizer for `query` over `model` — one private
    /// [`Rmq`] per worker, seeded `cfg.base.seed ⊕ worker_id`.
    ///
    /// # Panics
    /// Panics if `cfg.workers` is zero or `query` is empty.
    pub fn new(model: M, query: TableSet, cfg: ParRmqConfig) -> Self {
        assert!(cfg.workers >= 1, "ParRmq needs at least one worker");
        let workers = (0..cfg.workers)
            .map(|w| Worker {
                rmq: Rmq::new(
                    model.clone(),
                    query,
                    RmqConfig {
                        seed: cfg.base.seed ^ w as u64,
                        ..cfg.base
                    },
                ),
                iterations: 0,
                since_exchange: 0,
                last_seen_epoch: 0,
                absorbed: 0,
            })
            .collect();
        ParRmq {
            query,
            cfg,
            workers,
            shared: SharedFrontier::new(),
            stop: StopFlag::new(),
            rounds: 0,
        }
    }

    /// Runs the workers until `budget` is exhausted (see the crate docs for
    /// how each budget kind is honored across threads). `Budget::Time`
    /// counts from this call's entry. May be called repeatedly; worker
    /// state (caches, arenas, RNG streams) persists across calls.
    pub fn optimize(&mut self, budget: Budget) -> ParRunStats {
        let start = Instant::now();
        self.stop.clear();
        let cfg = self.cfg;
        let shared = &self.shared;
        let stop = &self.stop;
        let exchange = (!cfg.deterministic).then_some((shared, cfg.exchange_period.max(1)));
        let issued = AtomicU64::new(0);
        let per_worker: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .enumerate()
                .map(|(w, worker)| {
                    let plan = match budget {
                        Budget::Iterations(n) if cfg.deterministic => {
                            let (w, n, k) = (w as u64, n, cfg.workers as u64);
                            WorkPlan::Fixed(n / k + u64::from(w < n % k))
                        }
                        Budget::Iterations(n) => WorkPlan::Claim {
                            issued: &issued,
                            total: n,
                        },
                        Budget::Time(d) => {
                            WorkPlan::Until(AbortCheck::new(stop.clone(), Some(start + d)))
                        }
                        Budget::Deadline(at) => {
                            WorkPlan::Until(AbortCheck::new(stop.clone(), Some(at)))
                        }
                    };
                    s.spawn(move || {
                        // Tag the thread's observability context so journal
                        // events carry the worker id (1-based; 0 = unset).
                        moqo_obs::ctx::set_worker(w as u32 + 1);
                        run_worker(worker, plan, exchange)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("ParRmq worker panicked"))
                .collect()
        });
        self.rounds += 1;
        ParRunStats {
            iterations: per_worker.iter().sum(),
            per_worker,
            elapsed: start.elapsed(),
            exchange: self.shared.stats(),
        }
    }

    /// Requests cooperative cancellation of a deadline-budget `optimize`
    /// call running on the workers (cleared again at the next call).
    pub fn stop(&self) {
        self.stop.stop();
    }

    /// A movable handle onto the optimizer's stop flag, so another thread
    /// can cancel a running deadline-budget [`ParRmq::optimize`] call while
    /// the optimizer itself is mutably borrowed by it. Note the flag is
    /// cleared at each `optimize` entry: arm cancellation after the call
    /// has started (or between calls).
    pub fn stop_handle(&self) -> StopFlag {
        self.stop.clone()
    }

    /// The deterministic reduction: per-worker frontiers united in worker
    /// order through exact `SigBetter` pruning — the frontier contract of
    /// deterministic mode (also usable in live mode as a final merge that
    /// includes not-yet-published survivors).
    pub fn reduced_frontier(&self) -> Vec<PlanRef> {
        let mut union: ParetoSet<PlanRef> = ParetoSet::new();
        for worker in &self.workers {
            for plan in worker.rmq.frontier() {
                union.insert(plan, &Admission::exact());
            }
        }
        union.into_plans()
    }

    /// The current global frontier: the published shared snapshot in live
    /// mode, the deterministic reduction in deterministic mode.
    pub fn frontier(&self) -> Vec<PlanRef> {
        if self.cfg.deterministic {
            self.reduced_frontier()
        } else {
            self.shared.snapshot().plans.clone()
        }
    }

    /// Lifetime exchange counters of the shared frontier.
    pub fn exchange_stats(&self) -> ExchangeStats {
        self.shared.stats()
    }

    /// The current exchange epoch (0 until the first publish).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch()
    }

    /// Iterations completed per worker over the optimizer's lifetime.
    pub fn worker_iterations(&self) -> Vec<u64> {
        self.workers.iter().map(|w| w.iterations).collect()
    }

    /// Plans absorbed from global snapshots per worker.
    pub fn worker_absorbed(&self) -> Vec<u64> {
        self.workers.iter().map(|w| w.absorbed).collect()
    }

    /// Read access to the per-worker sequential optimizers (diagnostics
    /// and differential tests).
    pub fn worker_rmqs(&self) -> impl Iterator<Item = &Rmq<M>> {
        self.workers.iter().map(|w| &w.rmq)
    }

    /// Completed [`Optimizer::step`] / [`ParRmq::optimize`] rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The query being optimized.
    pub fn query(&self) -> TableSet {
        self.query
    }

    /// The configuration.
    pub fn config(&self) -> &ParRmqConfig {
        &self.cfg
    }
}

impl<M: CostModel + Clone + Send> Optimizer for ParRmq<M> {
    fn name(&self) -> &str {
        "ParRMQ"
    }

    /// One bounded round: `workers × batch` iterations fanned out over the
    /// worker threads (claimed dynamically in live mode, split statically
    /// in deterministic mode).
    fn step(&mut self) -> bool {
        let round = self.cfg.batch.max(1) * self.cfg.workers as u64;
        self.optimize(Budget::Iterations(round));
        true
    }

    fn frontier(&self) -> Vec<PlanRef> {
        ParRmq::frontier(self)
    }
}

impl<M: CostModel + Clone + Send> PlanExchange for ParRmq<M> {
    /// Warm-starts **every** worker with the given plans (each worker has
    /// its own cache, so all of them benefit); returns the total absorbed
    /// across workers.
    fn absorb_plans(&mut self, plans: &[PlanRef]) -> usize {
        self.workers
            .iter_mut()
            .map(|w| PlanExchange::absorb_plans(&mut w.rmq, plans))
            .sum()
    }

    /// Exports the merged query frontier via the deterministic reduction
    /// in **both** modes — in live mode the reduction covers the published
    /// snapshot and additionally includes survivors workers found since
    /// their last publish, so exports never trail the exchange period.
    /// Unlike [`Rmq::export_plans`], partial plans of sub-queries are not
    /// exported — the shared frontier only tracks full-query survivors.
    fn export_plans(&self) -> Vec<PlanRef> {
        self.reduced_frontier()
    }

    fn fan_out(&self) -> usize {
        self.cfg.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_core::model::testing::StubModel;
    use moqo_core::optimizer::{drive, NullObserver};

    fn model(n: usize) -> StubModel {
        StubModel::line(n, 2, 7)
    }

    #[test]
    fn iteration_budget_is_exact_across_workers() {
        for deterministic in [false, true] {
            let mut cfg = ParRmqConfig::seeded(3, 3);
            cfg.deterministic = deterministic;
            let mut par = ParRmq::new(model(6), TableSet::prefix(6), cfg);
            let stats = par.optimize(Budget::Iterations(31));
            assert_eq!(stats.iterations, 31, "det={deterministic}");
            assert_eq!(stats.per_worker.len(), 3);
            assert_eq!(stats.per_worker.iter().sum::<u64>(), 31);
            if deterministic {
                // Static split: 31 = 11 + 10 + 10.
                assert_eq!(stats.per_worker, vec![11, 10, 10]);
            }
            assert!(!par.frontier().is_empty());
        }
    }

    #[test]
    fn single_worker_deterministic_mode_matches_sequential_rmq() {
        let m = model(6);
        let cfg = ParRmqConfig::seeded(9, 1).deterministic();
        let mut par = ParRmq::new(&m, TableSet::prefix(6), cfg);
        par.optimize(Budget::Iterations(20));
        let mut seq = Rmq::new(&m, TableSet::prefix(6), RmqConfig::seeded(9));
        for _ in 0..20 {
            seq.iterate();
        }
        let par_rendered: Vec<String> = par.frontier().iter().map(|p| p.display(&m)).collect();
        let seq_rendered: Vec<String> = seq.frontier().iter().map(|p| p.display(&m)).collect();
        assert_eq!(par_rendered, seq_rendered);
    }

    #[test]
    fn live_mode_exchanges_plans_through_the_shared_frontier() {
        let mut cfg = ParRmqConfig::seeded(5, 4);
        cfg.exchange_period = 2;
        let mut par = ParRmq::new(model(7), TableSet::prefix(7), cfg);
        par.optimize(Budget::Iterations(60));
        let ex = par.exchange_stats();
        assert!(ex.publishes > 0, "workers must publish");
        assert!(ex.merged > 0, "someone's survivors must merge");
        assert!(ex.epochs > 0);
        assert!(ex.arena_nodes > 0);
        let frontier = par.frontier();
        assert!(!frontier.is_empty());
        for p in &frontier {
            assert!(p.validate(TableSet::prefix(7)).is_ok());
        }
        // The snapshot equals the epoch the stats report.
        assert_eq!(par.epoch(), ex.epochs);
    }

    #[test]
    fn optimizer_trait_steps_in_rounds() {
        let mut cfg = ParRmqConfig::seeded(2, 2);
        cfg.batch = 5;
        let mut par = ParRmq::new(model(6), TableSet::prefix(6), cfg);
        let stats = drive(&mut par, Budget::Iterations(3), &mut NullObserver);
        assert_eq!(stats.steps, 3);
        assert_eq!(par.worker_iterations().iter().sum::<u64>(), 3 * 2 * 5);
        assert_eq!(par.rounds(), 3);
        assert_eq!(par.name(), "ParRMQ");
        assert!(!Optimizer::frontier(&par).is_empty());
    }

    #[test]
    fn plan_exchange_fans_out_and_reports_width() {
        let m = model(6);
        let mut donor = Rmq::new(&m, TableSet::prefix(6), RmqConfig::seeded(1));
        for _ in 0..10 {
            donor.iterate();
        }
        let exported = PlanExchange::export_plans(&donor);
        let mut par = ParRmq::new(&m, TableSet::prefix(6), ParRmqConfig::seeded(8, 3));
        assert_eq!(par.fan_out(), 3);
        let absorbed = PlanExchange::absorb_plans(&mut par, &exported);
        assert!(
            absorbed > 0,
            "every worker should absorb overlapping partial plans"
        );
        par.optimize(Budget::Iterations(12));
        assert!(!PlanExchange::export_plans(&par).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let cfg = ParRmqConfig {
            workers: 0,
            ..ParRmqConfig::default()
        };
        let _ = ParRmq::new(model(3), TableSet::prefix(3), cfg);
    }
}
