//! # moqo-parallel — intra-query parallel anytime optimization
//!
//! The paper's RMQ algorithm is a multi-start randomized hill climber whose
//! restarts are independent: the anytime frontier is just the Pareto union
//! of per-climb local optima, which makes a *single query* embarrassingly
//! parallel. [`ParRmq`] exploits that: it runs RMQ for one query across `N`
//! workers, each owning a private [`Rmq`] instance (its own session
//! arena, transient climb arena, partial-plan cache, and RNG stream seeded
//! deterministically as `seed ⊕ worker_id`), and periodically exchanges
//! survivors through a shared epoch-versioned global frontier
//! ([`SharedFrontier`]) — the island-model migration scheme of parallel
//! evolutionary multi-objective optimizers, applied to RMQ's restart
//! structure. Approximation-precision guarantees are unchanged: every plan
//! still enters a frontier through the paper's `SigBetter` pruning rule.
//!
//! ## The work-stealing executor
//!
//! The crate also hosts [`ExecPool`], the shared work-stealing executor
//! whose unit of work is a **climb batch** (see the [`pool`] module docs
//! for the deque/steal diagram). [`ParRmq::optimize`] runs in one of two
//! modes depending on where it is called:
//!
//! * **Standalone** (not on a pool worker): the classic PR 4 shape — one
//!   scoped OS thread per worker, joined before the call returns.
//! * **Pooled** (called from a pool worker thread, detected via
//!   [`ExecPool::current`]): the fan-out becomes a group of resumable
//!   batch tasks on the *shared* pool. The calling thread waits by
//!   helping — running its own batches and donating spare capacity to
//!   other sessions' batches — and idle pool workers steal batches, so a
//!   wide session never holds threads it is not using. This is how the
//!   optimization service schedules every session (fan-out ≥ 1) through
//!   one executor instead of nested private thread pools.
//!
//! In pooled mode the *effective* fan-out is elastic: the service grants a
//! width per scheduled slice via [`PlanExchange::set_effective_fan_out`]
//! (clamped to `1..=workers`), and only that many workers climb during the
//! slice. Correctness never depends on the granted width — iteration
//! budgets are claimed from a shared [`ClaimCounter`], so totals stay
//! exact at any width.
//!
//! ## Execution model
//!
//! * [`Budget::Iterations`] is honored **exactly** by a shared
//!   [`ClaimCounter`] — workers claim batches until the counter is
//!   exhausted, so the total is independent of thread scheduling and of
//!   the granted width.
//! * [`Budget::Time`] / [`Budget::Deadline`] are honored by wall clock with
//!   a shared [`StopFlag`]: the first worker to observe the deadline raises
//!   the flag, and every climber checks it once per hill-climbing step
//!   (see [`Rmq::iterate_aborting`]) — so all workers (including stolen
//!   batches on foreign pool threads) wind down within one climb step of
//!   the deadline instead of one full iteration.
//!
//! ## Adaptive exchange and partial-plan sharing
//!
//! Live-mode workers exchange through [`SharedFrontier`] at an **adaptive
//! period** ([`AdaptiveExchange`]): starting from
//! [`ParRmqConfig::exchange_period`], the period doubles each time a full
//! window of publishes merges nothing (the frontiers have converged;
//! publishing is pure overhead) and snaps back to the base the moment any
//! publish merges (information is moving again). Alongside the full-query
//! frontier, workers publish their **partial-plan (sub-query) frontiers**
//! — the per-table-set survivors of their private caches — and absorb the
//! shared ones via subset-filtered `warm_start`, so workers stop
//! rediscovering each other's intermediate frontiers.
//!
//! [`ParRmq`] also implements the anytime [`Optimizer`] trait:
//! [`Optimizer::step`] runs one bounded *round* (`workers × batch`
//! iterations), which is how the optimization service schedules it in
//! slices alongside other sessions.
//!
//! ## Deterministic reduction mode
//!
//! With [`ParRmqConfig::deterministic`] set, workers never exchange plans
//! mid-run and an iteration budget is split statically across workers
//! (worker `w` runs `⌊n/N⌋ + (w < n mod N)` iterations). Each worker is
//! then an independent, fully deterministic sequential RMQ run, and
//! [`ParRmq::frontier`] reduces them in worker order through exact
//! `SigBetter` pruning — producing a frontier **bit-identical to the
//! sequential union of the per-worker runs**, regardless of thread
//! scheduling. On the pool, deterministic batches are **unstealable**
//! (pinned to their deque; only their own session's waiting thread runs
//! them), the exchange period stays fixed, and the effective fan-out is
//! always the configured width — the mode is the differential oracle, so
//! its schedule must stay inert. The differential test suite pins the
//! equivalence against literally-sequential reference runs.
//!
//! ## When to prefer `ParRmq` over per-session parallelism
//!
//! The optimization service already parallelizes *across* sessions; fan a
//! single session out with `ParRmq` when one query's time-to-frontier
//! matters more than aggregate throughput — a latency-critical query under
//! a tight deadline. On the shared pool the old caveat about wasted
//! duplicate exploration under saturation is softened: a wide session
//! shrinks to its granted width, and its batches only occupy workers that
//! would otherwise idle.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod adaptive;
mod frontier;
pub mod pool;

pub use adaptive::{AdaptiveExchange, MAX_BACKOFF_LEVEL};
pub use frontier::{ExchangeStats, FrontierSnapshot, PartialSnapshot, SharedFrontier};
pub use pool::{ExecPool, PoolHandle, TaskGroup, TaskSpec, TaskStatus};

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use moqo_core::archive::Admission;
use moqo_core::model::CostModel;
use moqo_core::optimizer::{
    AbortCheck, Budget, ClaimCounter, ConvergencePoint, Optimizer, PlanExchange, StopFlag,
};
use moqo_core::pareto::ParetoSet;
use moqo_core::plan::PlanRef;
use moqo_core::rmq::{Rmq, RmqConfig};
use moqo_core::tables::TableSet;
use moqo_obs::spans::{self, SpanId, SpanKind};

/// Configuration of the parallel optimizer.
#[derive(Clone, Copy, Debug)]
pub struct ParRmqConfig {
    /// Worker count (≥ 1). Worker `w` runs an independent RMQ seeded
    /// `base.seed ⊕ w`, so worker 0 reproduces the sequential run. This is
    /// the *maximum* fan-out; in pooled live mode the effective width per
    /// round may be lower (see [`PlanExchange::set_effective_fan_out`]).
    pub workers: usize,
    /// Per-worker RMQ configuration (seed, climb rules, α schedule, plan
    /// space). The seed is the *base* of the per-worker seed derivation.
    pub base: RmqConfig,
    /// Iterations per worker per [`Optimizer::step`] round — also the
    /// climb-batch granularity on the shared executor: pooled tasks yield
    /// back to the pool after this many iterations, and iteration budgets
    /// are claimed from the shared counter in chunks of this size.
    pub batch: u64,
    /// Live-mode **base** exchange period: every worker publishes its
    /// frontiers into the shared global frontier — and absorbs the latest
    /// global snapshots — after this many completed iterations. The live
    /// period adapts upward from here when publishes stop merging (see
    /// [`AdaptiveExchange`]). Ignored (no exchange) in deterministic mode.
    pub exchange_period: u64,
    /// Deterministic reduction mode: no mid-run exchange, static iteration
    /// split, no stealing, frontier bit-identical to the sequential union
    /// of the per-worker runs (see the crate docs).
    pub deterministic: bool,
}

impl Default for ParRmqConfig {
    fn default() -> Self {
        ParRmqConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            base: RmqConfig::default(),
            batch: 16,
            exchange_period: 8,
            deterministic: false,
        }
    }
}

impl ParRmqConfig {
    /// Default configuration with the given base seed and worker count.
    pub fn seeded(seed: u64, workers: usize) -> Self {
        ParRmqConfig {
            workers,
            base: RmqConfig::seeded(seed),
            ..ParRmqConfig::default()
        }
    }

    /// The same configuration in deterministic reduction mode.
    pub fn deterministic(mut self) -> Self {
        self.deterministic = true;
        self
    }
}

/// Statistics of one [`ParRmq::optimize`] call.
#[derive(Clone, Debug, Default)]
pub struct ParRunStats {
    /// Iterations completed across all workers.
    pub iterations: u64,
    /// Iterations completed per worker (index = worker id).
    pub per_worker: Vec<u64>,
    /// Wall-clock time of the call.
    pub elapsed: Duration,
    /// Exchange counters at the end of the call (lifetime totals).
    pub exchange: ExchangeStats,
}

/// One worker: a private sequential RMQ plus its exchange bookkeeping.
struct Worker<M: CostModel> {
    rmq: Rmq<M>,
    /// Completed iterations over the optimizer's lifetime.
    iterations: u64,
    /// Iterations since the last exchange (live mode).
    since_exchange: u64,
    /// Last global epoch this worker absorbed.
    last_seen_epoch: u64,
    /// Last partial-frontier epoch this worker absorbed.
    last_seen_partial_epoch: u64,
    /// Plans absorbed from global snapshots over the lifetime.
    absorbed: u64,
}

/// How a worker decides whether to run its next iterations. Owned (no
/// borrows) so pooled tasks can carry their plan across yields.
enum WorkPlan {
    /// Run exactly this many more iterations (deterministic split).
    Fixed(u64),
    /// Claim chunks from a shared counter until the budget is issued.
    Claim { counter: ClaimCounter, chunk: u64 },
    /// Run until the abort condition fires (deadline / stop flag).
    Until(AbortCheck),
}

impl WorkPlan {
    /// Permission for up to `room` more iterations; `0` means the plan is
    /// exhausted. Deadline plans grant one iteration at a time (the abort
    /// flag is also re-checked inside the climb); claim plans pay one
    /// fetch-add per chunk.
    fn next_quota(&mut self, room: u64) -> u64 {
        match self {
            WorkPlan::Fixed(remaining) => {
                let quota = (*remaining).min(room);
                *remaining -= quota;
                quota
            }
            WorkPlan::Claim { counter, chunk } => counter.claim_batch(room.min(*chunk)),
            WorkPlan::Until(abort) => {
                if abort.should_abort() {
                    0
                } else {
                    1
                }
            }
        }
    }
}

/// Everything a live-mode exchange point needs.
struct ExchangeCtx<'a> {
    shared: &'a SharedFrontier,
    adaptive: &'a AdaptiveExchange,
    query: TableSet,
}

/// Runs up to `max_iters` iterations of `worker` under `plan`, exchanging
/// through the shared frontier at the adaptive period (live mode). Returns
/// `(completed, finished)` where `finished` means the plan is exhausted
/// (budget done or abort observed) as opposed to the chunk limit.
fn run_chunk<M: CostModel>(
    worker: &mut Worker<M>,
    plan: &mut WorkPlan,
    max_iters: u64,
    exchange: Option<&ExchangeCtx<'_>>,
) -> (u64, bool) {
    let mut done = 0u64;
    while done < max_iters {
        let quota = plan.next_quota(max_iters - done);
        if quota == 0 {
            return (done, true);
        }
        for _ in 0..quota {
            let completed = match plan {
                // Deadline iterations run guarded: the abort condition is
                // re-checked inside the climb, bounding overshoot to one
                // step — also on pool threads running stolen batches.
                WorkPlan::Until(abort) => worker.rmq.iterate_aborting(abort).is_some(),
                _ => {
                    worker.rmq.iterate();
                    true
                }
            };
            if !completed {
                return (done, true);
            }
            done += 1;
            worker.iterations += 1;
            if let Some(ex) = exchange {
                worker.since_exchange += 1;
                if worker.since_exchange >= ex.adaptive.period() {
                    worker.since_exchange = 0;
                    exchange_point(worker, ex);
                }
            }
        }
    }
    (done, false)
}

/// One full exchange: publish the query frontier and the sub-query
/// (partial-plan) frontiers, feed the merge outcome to the adaptive
/// period, then absorb whatever the rest of the run published. Both halves
/// are traced as spans (publish arg = plans merged, absorb arg = plans
/// absorbed), parented to the ambient batch/session span.
fn exchange_point<M: CostModel>(worker: &mut Worker<M>, ex: &ExchangeCtx<'_>) {
    publish_point(worker, ex);
    let mut span = spans::begin(SpanKind::ExchangeAbsorb, SpanId::NONE);
    let before = worker.absorbed;
    absorb_global(worker, ex.shared);
    absorb_partials(worker, ex);
    if let Some(s) = span.as_mut() {
        s.set_arg(worker.absorbed - before);
    }
    spans::finish(span);
}

/// One publish half (periodic or final flush): offer the query and
/// sub-query frontiers, feed the merge outcome to the adaptive period.
fn publish_point<M: CostModel>(worker: &Worker<M>, ex: &ExchangeCtx<'_>) {
    let mut span = spans::begin(SpanKind::ExchangePublish, SpanId::NONE);
    let merged = publish_frontier(worker, ex.shared) + publish_partials(worker, ex);
    if let Some(s) = span.as_mut() {
        s.set_arg(merged as u64);
    }
    spans::finish(span);
    ex.adaptive.on_publish(merged);
}

fn publish_frontier<M: CostModel>(worker: &Worker<M>, shared: &SharedFrontier) -> usize {
    match worker.rmq.frontier_set() {
        Some(set) if !set.is_empty() => shared.publish(worker.rmq.arena(), set),
        _ => 0,
    }
}

/// Publishes the worker's multi-table *sub*-query frontiers (single-table
/// frontiers are trivial to rediscover; the full query goes through
/// [`publish_frontier`]).
fn publish_partials<M: CostModel>(worker: &Worker<M>, ex: &ExchangeCtx<'_>) -> usize {
    let query = ex.query;
    let sets = worker
        .rmq
        .cache()
        .entry_sets()
        .filter(|(rel, _)| *rel != query && rel.iter().count() > 1);
    ex.shared.publish_partials(worker.rmq.arena(), sets)
}

fn absorb_global<M: CostModel>(worker: &mut Worker<M>, shared: &SharedFrontier) {
    let snap = shared.snapshot();
    if snap.epoch <= worker.last_seen_epoch {
        return;
    }
    worker.last_seen_epoch = snap.epoch;
    // Same model on every worker, so no dimension filtering is needed;
    // warm_start inserts with exact pruning and can never evict better
    // plans the worker finds later.
    let absorbed = worker.rmq.warm_start(snap.plans.iter().cloned());
    worker.absorbed += absorbed as u64;
    shared.record_absorbed(absorbed);
    moqo_obs::ctx::set_epoch(snap.epoch);
    if moqo_obs::journal::enabled(
        moqo_obs::journal::Target::Exchange,
        moqo_obs::journal::Level::Debug,
    ) {
        moqo_obs::journal::emit_with(
            moqo_obs::journal::Target::Exchange,
            moqo_obs::journal::Level::Debug,
            || moqo_obs::journal::EventKind::ExchangeAbsorb {
                epoch: snap.epoch,
                absorbed: absorbed as u64,
            },
        );
    }
}

fn absorb_partials<M: CostModel>(worker: &mut Worker<M>, ex: &ExchangeCtx<'_>) {
    let snap = ex.shared.partial_snapshot();
    if snap.epoch <= worker.last_seen_partial_epoch {
        return;
    }
    worker.last_seen_partial_epoch = snap.epoch;
    // warm_start files each plan under its own table set (subset-filtered),
    // so the flattened partial snapshot lands straight in the cache.
    let absorbed = worker.rmq.warm_start(snap.plans.iter().cloned());
    worker.absorbed += absorbed as u64;
    ex.shared.record_absorbed(absorbed);
}

/// The scoped-thread worker body (standalone mode): iterate until the plan
/// is exhausted, then flush a final publish so survivors found since the
/// last periodic exchange are not lost. Returns iterations completed.
fn run_worker<M: CostModel>(
    worker: &mut Worker<M>,
    mut plan: WorkPlan,
    exchange: Option<&ExchangeCtx<'_>>,
) -> u64 {
    let mut span = spans::begin(SpanKind::Batch, SpanId::NONE);
    // Make the batch span ambient so exchange spans inside the chunk
    // parent to it (restored below; elided entirely when tracing is off).
    let prev = span.as_ref().map(|s| spans::set_current(s.id()));
    let (done, _) = run_chunk(worker, &mut plan, u64::MAX, exchange);
    if let Some(ex) = exchange {
        publish_point(worker, ex);
    }
    if let Some(prev) = prev {
        spans::set_current(prev);
    }
    if let Some(s) = span.as_mut() {
        s.set_arg(done);
    }
    spans::finish(span);
    done
}

/// The parallel RMQ optimizer (see the crate docs).
///
/// Generic over how each worker holds the cost model: `M` is cloned once
/// per worker. Pooled execution moves workers into `'static` tasks, so `M`
/// must be owned — pass the model by value or behind an `Arc`.
pub struct ParRmq<M: CostModel + Clone + Send + 'static> {
    query: TableSet,
    cfg: ParRmqConfig,
    /// Worker slots; `None` only while a pooled round has the worker
    /// checked out on the executor.
    workers: Vec<Option<Worker<M>>>,
    shared: Arc<SharedFrontier>,
    adaptive: Arc<AdaptiveExchange>,
    stop: StopFlag,
    rounds: u64,
    /// Live-mode fan-out granted for the next round (1..=cfg.workers).
    effective_workers: usize,
}

impl<M: CostModel + Clone + Send + 'static> ParRmq<M> {
    /// Creates a parallel optimizer for `query` over `model` — one private
    /// [`Rmq`] per worker, seeded `cfg.base.seed ⊕ worker_id`.
    ///
    /// # Panics
    /// Panics if `cfg.workers` is zero or `query` is empty.
    pub fn new(model: M, query: TableSet, cfg: ParRmqConfig) -> Self {
        assert!(cfg.workers >= 1, "ParRmq needs at least one worker");
        let workers = (0..cfg.workers)
            .map(|w| {
                Some(Worker {
                    rmq: Rmq::new(
                        model.clone(),
                        query,
                        RmqConfig {
                            seed: cfg.base.seed ^ w as u64,
                            ..cfg.base
                        },
                    ),
                    iterations: 0,
                    since_exchange: 0,
                    last_seen_epoch: 0,
                    last_seen_partial_epoch: 0,
                    absorbed: 0,
                })
            })
            .collect();
        ParRmq {
            query,
            cfg,
            workers,
            shared: Arc::new(SharedFrontier::new()),
            adaptive: Arc::new(AdaptiveExchange::new(
                cfg.exchange_period.max(1),
                cfg.workers,
            )),
            stop: StopFlag::new(),
            rounds: 0,
            effective_workers: cfg.workers,
        }
    }

    /// Builds the per-worker plans for `budget`. `active` workers
    /// participate; an iteration budget is shared exactly among them.
    fn make_plans(&self, budget: Budget, start: Instant, active: usize) -> Vec<WorkPlan> {
        let chunk = self.cfg.batch.max(1);
        match budget {
            Budget::Iterations(n) if self.cfg.deterministic => {
                let k = active as u64;
                (0..active as u64)
                    .map(|w| WorkPlan::Fixed(n / k + u64::from(w < n % k)))
                    .collect()
            }
            Budget::Iterations(n) => {
                let counter = ClaimCounter::new(n);
                (0..active)
                    .map(|_| WorkPlan::Claim {
                        counter: counter.clone(),
                        chunk,
                    })
                    .collect()
            }
            Budget::Time(d) => (0..active)
                .map(|_| WorkPlan::Until(AbortCheck::new(self.stop.clone(), Some(start + d))))
                .collect(),
            Budget::Deadline(at) => (0..active)
                .map(|_| WorkPlan::Until(AbortCheck::new(self.stop.clone(), Some(at))))
                .collect(),
        }
    }

    /// Runs the workers until `budget` is exhausted (see the crate docs for
    /// how each budget kind is honored across workers and for the
    /// standalone vs. pooled dispatch). `Budget::Time` counts from this
    /// call's entry. May be called repeatedly; worker state (caches,
    /// arenas, RNG streams) persists across calls.
    pub fn optimize(&mut self, budget: Budget) -> ParRunStats {
        let start = Instant::now();
        self.stop.clear();
        let before: Vec<u64> = self
            .workers
            .iter()
            .map(|w| w.as_ref().expect("worker checked in").iterations)
            .collect();
        match ExecPool::current() {
            Some(pool) => self.optimize_pooled(&pool, budget, start),
            None => self.optimize_scoped(budget, start),
        }
        self.rounds += 1;
        let per_worker: Vec<u64> = self
            .workers
            .iter()
            .zip(&before)
            .map(|(w, b)| w.as_ref().expect("worker checked in").iterations - b)
            .collect();
        ParRunStats {
            iterations: per_worker.iter().sum(),
            per_worker,
            elapsed: start.elapsed(),
            exchange: self.shared.stats(),
        }
    }

    /// Standalone execution: one scoped OS thread per active worker.
    fn optimize_scoped(&mut self, budget: Budget, start: Instant) {
        let cfg = self.cfg;
        let active = if cfg.deterministic {
            cfg.workers
        } else {
            self.effective_workers
        };
        let mut plans = self.make_plans(budget, start, active);
        let shared = Arc::clone(&self.shared);
        let adaptive = Arc::clone(&self.adaptive);
        let query = self.query;
        // Scoped threads start with an empty ambient span; hand them the
        // caller's so their batch spans parent to the enclosing session.
        let parent_span = spans::current();
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .take(active)
                .zip(plans.drain(..))
                .enumerate()
                .map(|(w, (worker, plan))| {
                    let worker = worker.as_mut().expect("worker checked in");
                    let (shared, adaptive) = (&shared, &adaptive);
                    s.spawn(move || {
                        // Tag the thread's observability context so journal
                        // events carry the worker id (1-based; 0 = unset).
                        moqo_obs::ctx::set_worker(w as u32 + 1);
                        spans::set_current(parent_span);
                        let ex = ExchangeCtx {
                            shared,
                            adaptive,
                            query,
                        };
                        let exchange = (!cfg.deterministic).then_some(&ex);
                        run_worker(worker, plan, exchange);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("ParRmq worker panicked");
            }
        });
    }

    /// Pooled execution: the fan-out becomes a group of resumable batch
    /// tasks on the shared executor; the calling (pool-worker) thread waits
    /// by helping. Deterministic batches are pinned (unstealable).
    fn optimize_pooled(&mut self, pool: &PoolHandle, budget: Budget, start: Instant) {
        let cfg = self.cfg;
        let active = if cfg.deterministic {
            cfg.workers
        } else {
            self.effective_workers
        };
        let mut plans = self.make_plans(budget, start, active);
        let spec = if cfg.deterministic {
            TaskSpec::pinned_batch()
        } else {
            TaskSpec::batch()
        };
        let batch = cfg.batch.max(1);
        let checked_in: Arc<Mutex<Vec<Option<Worker<M>>>>> =
            Arc::new(Mutex::new((0..active).map(|_| None).collect()));
        let group = pool.group();
        for (w, plan) in plans.drain(..).enumerate() {
            let mut slot = self.workers[w].take();
            let mut plan = plan;
            let checked_in = Arc::clone(&checked_in);
            let shared = Arc::clone(&self.shared);
            let adaptive = Arc::clone(&self.adaptive);
            let query = self.query;
            let det = cfg.deterministic;
            pool.spawn_in(&group, spec, move || {
                let worker = slot.as_mut().expect("worker moved into this task");
                moqo_obs::ctx::set_worker(w as u32 + 1);
                // One batch span per invocation: the executor installed the
                // spawner's ambient span, so even a stolen batch parents to
                // the session that fanned it out.
                let mut span = spans::begin(SpanKind::Batch, SpanId::NONE);
                let prev = span.as_ref().map(|s| spans::set_current(s.id()));
                let ex = ExchangeCtx {
                    shared: &shared,
                    adaptive: &adaptive,
                    query,
                };
                let exchange = (!det).then_some(&ex);
                let (done, finished) = run_chunk(worker, &mut plan, batch, exchange);
                if let Some(s) = span.as_mut() {
                    s.set_arg(done);
                }
                if !finished {
                    if let Some(prev) = prev {
                        spans::set_current(prev);
                    }
                    spans::finish(span);
                    return TaskStatus::Yield;
                }
                if !det {
                    publish_point(worker, &ex);
                }
                if let Some(prev) = prev {
                    spans::set_current(prev);
                }
                spans::finish(span);
                checked_in.lock().unwrap()[w] = slot.take();
                TaskStatus::Done
            });
        }
        pool.help_until(&group);
        let mut checked_in = checked_in.lock().unwrap();
        for (w, slot) in checked_in.iter_mut().enumerate() {
            self.workers[w] = Some(slot.take().expect("finished task returned its worker"));
        }
    }

    /// Requests cooperative cancellation of a deadline-budget `optimize`
    /// call running on the workers (cleared again at the next call).
    pub fn stop(&self) {
        self.stop.stop();
    }

    /// A movable handle onto the optimizer's stop flag, so another thread
    /// can cancel a running deadline-budget [`ParRmq::optimize`] call while
    /// the optimizer itself is mutably borrowed by it. Note the flag is
    /// cleared at each `optimize` entry: arm cancellation after the call
    /// has started (or between calls).
    pub fn stop_handle(&self) -> StopFlag {
        self.stop.clone()
    }

    /// The deterministic reduction: per-worker frontiers united in worker
    /// order through exact `SigBetter` pruning — the frontier contract of
    /// deterministic mode (also usable in live mode as a final merge that
    /// includes not-yet-published survivors).
    pub fn reduced_frontier(&self) -> Vec<PlanRef> {
        let mut union: ParetoSet<PlanRef> = ParetoSet::new();
        for worker in &self.workers {
            let worker = worker.as_ref().expect("worker checked in");
            for plan in worker.rmq.frontier() {
                union.insert(plan, &Admission::exact());
            }
        }
        union.into_plans()
    }

    /// The current global frontier: the published shared snapshot in live
    /// mode, the deterministic reduction in deterministic mode.
    pub fn frontier(&self) -> Vec<PlanRef> {
        if self.cfg.deterministic {
            self.reduced_frontier()
        } else {
            self.shared.snapshot().plans.clone()
        }
    }

    /// Lifetime exchange counters of the shared frontier.
    pub fn exchange_stats(&self) -> ExchangeStats {
        self.shared.stats()
    }

    /// The current exchange epoch (0 until the first publish).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch()
    }

    /// The current adaptive exchange-backoff level (0 = base period;
    /// always 0 in deterministic mode).
    pub fn backoff_level(&self) -> u32 {
        self.adaptive.level()
    }

    /// The fan-out the next live-mode round will actually use
    /// (1..=`cfg.workers`; deterministic mode always runs full width).
    pub fn effective_fan_out(&self) -> usize {
        self.effective_workers
    }

    /// Iterations completed per worker over the optimizer's lifetime.
    pub fn worker_iterations(&self) -> Vec<u64> {
        self.workers
            .iter()
            .map(|w| w.as_ref().expect("worker checked in").iterations)
            .collect()
    }

    /// Plans absorbed from global snapshots per worker.
    pub fn worker_absorbed(&self) -> Vec<u64> {
        self.workers
            .iter()
            .map(|w| w.as_ref().expect("worker checked in").absorbed)
            .collect()
    }

    /// Read access to the per-worker sequential optimizers (diagnostics
    /// and differential tests).
    pub fn worker_rmqs(&self) -> impl Iterator<Item = &Rmq<M>> {
        self.workers
            .iter()
            .map(|w| &w.as_ref().expect("worker checked in").rmq)
    }

    /// Completed [`Optimizer::step`] / [`ParRmq::optimize`] rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The query being optimized.
    pub fn query(&self) -> TableSet {
        self.query
    }

    /// The configuration.
    pub fn config(&self) -> &ParRmqConfig {
        &self.cfg
    }
}

impl<M: CostModel + Clone + Send + 'static> Optimizer for ParRmq<M> {
    fn name(&self) -> &str {
        "ParRMQ"
    }

    /// One bounded round: `effective × batch` iterations fanned out over
    /// the active workers (claimed dynamically in live mode, split
    /// statically over the full width in deterministic mode).
    fn step(&mut self) -> bool {
        let width = if self.cfg.deterministic {
            self.cfg.workers
        } else {
            self.effective_workers
        };
        let round = self.cfg.batch.max(1) * width as u64;
        self.optimize(Budget::Iterations(round));
        true
    }

    fn frontier(&self) -> Vec<PlanRef> {
        ParRmq::frontier(self)
    }
}

impl<M: CostModel + Clone + Send + 'static> PlanExchange for ParRmq<M> {
    /// Warm-starts **every** worker with the given plans (each worker has
    /// its own cache, so all of them benefit); returns the total absorbed
    /// across workers.
    fn absorb_plans(&mut self, plans: &[PlanRef]) -> usize {
        self.workers
            .iter_mut()
            .map(|w| {
                let w = w.as_mut().expect("worker checked in");
                PlanExchange::absorb_plans(&mut w.rmq, plans)
            })
            .sum()
    }

    /// Exports the merged query frontier via the deterministic reduction
    /// in **both** modes — in live mode the reduction covers the published
    /// snapshot and additionally includes survivors workers found since
    /// their last publish, so exports never trail the exchange period.
    /// Unlike [`Rmq::export_plans`], partial plans of sub-queries are not
    /// exported — those travel through the shared frontier's partial-plan
    /// channel instead.
    fn export_plans(&self) -> Vec<PlanRef> {
        self.reduced_frontier()
    }

    fn fan_out(&self) -> usize {
        self.cfg.workers
    }

    /// Elastic width grant from the scheduler: the next live-mode round
    /// runs `workers` (clamped to `1..=cfg.workers`) of the configured
    /// workers. Deterministic mode ignores the grant — its static split is
    /// part of the reproducibility contract.
    fn set_effective_fan_out(&mut self, workers: usize) {
        self.effective_workers = workers.clamp(1, self.cfg.workers);
    }

    /// The union of every worker's checkpoint stream, ordered by elapsed
    /// time (workers are created together, so their clocks are
    /// comparable). Each point carries that worker's *local* frontier
    /// snapshot; consumers building a session-level quality curve should
    /// feed the points into an incremental tracker in order, so the curve
    /// reflects the running union across workers.
    fn convergence(&self) -> Vec<ConvergencePoint> {
        let mut points: Vec<ConvergencePoint> = self
            .workers
            .iter()
            .flat_map(|w| {
                w.as_ref()
                    .expect("worker checked in")
                    .rmq
                    .convergence_points()
                    .iter()
                    .cloned()
            })
            .collect();
        points.sort_by(|a, b| {
            a.elapsed
                .cmp(&b.elapsed)
                .then(a.iteration.cmp(&b.iteration))
        });
        points
    }

    fn sample_convergence_now(&mut self) {
        for w in &mut self.workers {
            w.as_mut()
                .expect("worker checked in")
                .rmq
                .sample_convergence_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_core::model::testing::StubModel;
    use moqo_core::optimizer::{drive, NullObserver};

    fn model(n: usize) -> StubModel {
        StubModel::line(n, 2, 7)
    }

    #[test]
    fn iteration_budget_is_exact_across_workers() {
        for deterministic in [false, true] {
            let mut cfg = ParRmqConfig::seeded(3, 3);
            cfg.deterministic = deterministic;
            let mut par = ParRmq::new(model(6), TableSet::prefix(6), cfg);
            let stats = par.optimize(Budget::Iterations(31));
            assert_eq!(stats.iterations, 31, "det={deterministic}");
            assert_eq!(stats.per_worker.len(), 3);
            assert_eq!(stats.per_worker.iter().sum::<u64>(), 31);
            if deterministic {
                // Static split: 31 = 11 + 10 + 10.
                assert_eq!(stats.per_worker, vec![11, 10, 10]);
            }
            assert!(!par.frontier().is_empty());
        }
    }

    #[test]
    fn single_worker_deterministic_mode_matches_sequential_rmq() {
        let m = model(6);
        let cfg = ParRmqConfig::seeded(9, 1).deterministic();
        let mut par = ParRmq::new(m.clone(), TableSet::prefix(6), cfg);
        par.optimize(Budget::Iterations(20));
        let mut seq = Rmq::new(&m, TableSet::prefix(6), RmqConfig::seeded(9));
        for _ in 0..20 {
            seq.iterate();
        }
        let par_rendered: Vec<String> = par.frontier().iter().map(|p| p.display(&m)).collect();
        let seq_rendered: Vec<String> = seq.frontier().iter().map(|p| p.display(&m)).collect();
        assert_eq!(par_rendered, seq_rendered);
    }

    #[test]
    fn live_mode_exchanges_plans_through_the_shared_frontier() {
        let mut cfg = ParRmqConfig::seeded(5, 4);
        cfg.exchange_period = 2;
        let mut par = ParRmq::new(model(7), TableSet::prefix(7), cfg);
        par.optimize(Budget::Iterations(60));
        let ex = par.exchange_stats();
        assert!(ex.publishes > 0, "workers must publish");
        assert!(ex.merged > 0, "someone's survivors must merge");
        assert!(ex.epochs > 0);
        assert!(ex.arena_nodes > 0);
        assert!(
            ex.partial_offered > 0,
            "sub-query frontiers must be offered: {ex:?}"
        );
        assert!(ex.partial_merged > 0, "sub-query frontiers must merge");
        assert!(ex.partial_table_sets > 0);
        let frontier = par.frontier();
        assert!(!frontier.is_empty());
        for p in &frontier {
            assert!(p.validate(TableSet::prefix(7)).is_ok());
        }
        // The snapshot equals the epoch the stats report.
        assert_eq!(par.epoch(), ex.epochs);
    }

    #[test]
    fn elastic_fan_out_limits_active_workers() {
        let mut cfg = ParRmqConfig::seeded(11, 4);
        cfg.batch = 4;
        let mut par = ParRmq::new(model(6), TableSet::prefix(6), cfg);
        PlanExchange::set_effective_fan_out(&mut par, 2);
        assert_eq!(par.effective_fan_out(), 2);
        let stats = par.optimize(Budget::Iterations(24));
        assert_eq!(stats.iterations, 24, "budget stays exact at any width");
        assert_eq!(stats.per_worker.len(), 4);
        assert_eq!(stats.per_worker[2], 0, "ungranted workers must not run");
        assert_eq!(stats.per_worker[3], 0);
        // Grants clamp into 1..=workers.
        PlanExchange::set_effective_fan_out(&mut par, 0);
        assert_eq!(par.effective_fan_out(), 1);
        PlanExchange::set_effective_fan_out(&mut par, 99);
        assert_eq!(par.effective_fan_out(), 4);
    }

    #[test]
    fn pooled_mode_runs_rounds_on_the_shared_executor() {
        let pool = ExecPool::new(2);
        let handle = pool.handle();
        let result: Arc<Mutex<Option<(u64, usize, bool)>>> = Arc::new(Mutex::new(None));
        let out = Arc::clone(&result);
        // Plain spawn + polling: the test thread must not help, or the
        // session could run here (off-pool) and take the scoped path.
        handle.spawn(TaskSpec::root(), move || {
            let on_pool = ExecPool::current().is_some();
            let mut cfg = ParRmqConfig::seeded(6, 3);
            cfg.batch = 4;
            let mut par = ParRmq::new(model(6), TableSet::prefix(6), cfg);
            let stats = par.optimize(Budget::Iterations(25));
            *out.lock().unwrap() = Some((stats.iterations, par.frontier().len(), on_pool));
            TaskStatus::Done
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while result.lock().unwrap().is_none() {
            assert!(Instant::now() < deadline, "pooled session made no progress");
            std::thread::yield_now();
        }
        let (iterations, frontier, on_pool) = result.lock().unwrap().expect("session ran");
        assert!(on_pool, "the session must have run on a pool worker");
        assert_eq!(iterations, 25, "pooled budgets stay exact");
        assert!(frontier > 0);
        pool.shutdown();
    }

    #[test]
    fn optimizer_trait_steps_in_rounds() {
        let mut cfg = ParRmqConfig::seeded(2, 2);
        cfg.batch = 5;
        let mut par = ParRmq::new(model(6), TableSet::prefix(6), cfg);
        let stats = drive(&mut par, Budget::Iterations(3), &mut NullObserver);
        assert_eq!(stats.steps, 3);
        assert_eq!(par.worker_iterations().iter().sum::<u64>(), 3 * 2 * 5);
        assert_eq!(par.rounds(), 3);
        assert_eq!(par.name(), "ParRMQ");
        assert!(!Optimizer::frontier(&par).is_empty());
    }

    #[test]
    fn plan_exchange_fans_out_and_reports_width() {
        let m = model(6);
        let mut donor = Rmq::new(&m, TableSet::prefix(6), RmqConfig::seeded(1));
        for _ in 0..10 {
            donor.iterate();
        }
        let exported = PlanExchange::export_plans(&donor);
        let mut par = ParRmq::new(m.clone(), TableSet::prefix(6), ParRmqConfig::seeded(8, 3));
        assert_eq!(par.fan_out(), 3);
        let absorbed = PlanExchange::absorb_plans(&mut par, &exported);
        assert!(
            absorbed > 0,
            "every worker should absorb overlapping partial plans"
        );
        par.optimize(Budget::Iterations(12));
        assert!(!PlanExchange::export_plans(&par).is_empty());
    }

    #[test]
    fn adaptive_backoff_engages_once_frontiers_converge() {
        let mut cfg = ParRmqConfig::seeded(13, 2);
        cfg.exchange_period = 1;
        cfg.batch = 8;
        let mut par = ParRmq::new(model(4), TableSet::prefix(4), cfg);
        // A tiny query converges almost immediately; with a period of 1
        // every subsequent iteration publishes a no-op, so the backoff
        // must engage well within this budget.
        par.optimize(Budget::Iterations(400));
        assert!(
            par.backoff_level() > 0,
            "dry publishes must raise the backoff level: {:?}",
            par.exchange_stats()
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let cfg = ParRmqConfig {
            workers: 0,
            ..ParRmqConfig::default()
        };
        let _ = ParRmq::new(model(3), TableSet::prefix(3), cfg);
    }
}
