//! Figure execution: runs every algorithm over the experiment grid and
//! aggregates median-α trajectories per panel.

use std::time::Duration;

use moqo_core::optimizer::{drive, Budget};
use moqo_cost::ResourceCostModel;
use moqo_metrics::trajectory::checkpoints;
use moqo_metrics::{ReferenceFrontier, Trajectory, TrajectoryRecorder};
use moqo_workload::{pick_metrics, GraphShape, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::algorithms::AlgorithmKind;
use crate::derive_seed;
use crate::figures::{FigureSpec, ReferenceKind};
use crate::stats::median;

/// Aggregated result of one panel (one shape × size cell of a figure).
#[derive(Clone, Debug)]
pub struct PanelResult {
    /// Join graph shape of the panel.
    pub shape: GraphShape,
    /// Query size in tables.
    pub size: usize,
    /// Measurement checkpoints.
    pub checkpoints: Vec<Duration>,
    /// Per algorithm: median α at every checkpoint (paper's plotted lines).
    pub series: Vec<(String, Vec<f64>)>,
}

impl PanelResult {
    /// The algorithm with the lowest final median α, with that α.
    pub fn winner(&self) -> Option<(&str, f64)> {
        self.series
            .iter()
            .filter_map(|(name, s)| s.last().map(|&a| (name.as_str(), a)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Final median α of a given algorithm.
    pub fn final_alpha(&self, algorithm: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|(name, _)| name == algorithm)
            .and_then(|(_, s)| s.last().copied())
    }
}

/// Aggregated result of one figure.
#[derive(Clone, Debug)]
pub struct FigureResult {
    /// Figure id (e.g. `"fig1"`).
    pub id: String,
    /// Figure title.
    pub title: String,
    /// Per-algorithm budget used.
    pub budget: Duration,
    /// Number of cost metrics.
    pub metrics: usize,
    /// Test cases per panel.
    pub cases: usize,
    /// Display cap on α.
    pub alpha_cap: Option<f64>,
    /// One result per (shape, size) cell, shapes outermost.
    pub panels: Vec<PanelResult>,
}

impl FigureResult {
    /// Looks up a panel.
    pub fn panel(&self, shape: GraphShape, size: usize) -> Option<&PanelResult> {
        self.panels
            .iter()
            .find(|p| p.shape == shape && p.size == size)
    }
}

/// Runs a complete figure experiment.
pub fn run_figure(spec: &FigureSpec) -> FigureResult {
    let mut panels = Vec::new();
    for &shape in &spec.shapes {
        for &size in &spec.sizes {
            panels.push(run_panel(spec, shape, size));
        }
    }
    FigureResult {
        id: spec.id.to_string(),
        title: spec.title.to_string(),
        budget: spec.budget,
        metrics: spec.metrics,
        cases: spec.cases,
        alpha_cap: spec.alpha_cap,
        panels,
    }
}

fn shape_index(shape: GraphShape) -> u64 {
    match shape {
        GraphShape::Chain => 0,
        GraphShape::Cycle => 1,
        GraphShape::Star => 2,
        GraphShape::Clique => 3,
    }
}

fn run_panel(spec: &FigureSpec, shape: GraphShape, size: usize) -> PanelResult {
    let cps = checkpoints::linear(spec.checkpoints, spec.budget);
    // alpha_series[algorithm][case] = α per checkpoint.
    let mut alpha_series: Vec<Vec<Vec<f64>>> = vec![Vec::new(); spec.algorithms.len()];
    for case in 0..spec.cases {
        let case_parts = [shape_index(shape), size as u64, case as u64];
        let workload = WorkloadSpec {
            tables: size,
            shape,
            selectivity: spec.selectivity,
            seed: derive_seed(spec.seed, &[case_parts[0], case_parts[1], case_parts[2], 1]),
        };
        let (catalog, query) = workload.generate();
        let mut metric_rng = StdRng::seed_from_u64(derive_seed(
            spec.seed,
            &[case_parts[0], case_parts[1], case_parts[2], 2],
        ));
        let metrics = pick_metrics(spec.metrics, &mut metric_rng);
        let model = ResourceCostModel::new(catalog, &metrics);

        // Run every algorithm under the same budget, recording trajectories.
        let trajectories: Vec<Trajectory> = spec
            .algorithms
            .iter()
            .enumerate()
            .map(|(ai, algo)| {
                let seed = derive_seed(
                    spec.seed,
                    &[case_parts[0], case_parts[1], case_parts[2], 3 + ai as u64],
                );
                let mut opt = algo.build(&model, query.tables(), seed);
                let mut recorder = TrajectoryRecorder::new(cps.clone());
                drive(&mut *opt, Budget::Time(spec.budget), &mut recorder);
                recorder.finish()
            })
            .collect();

        // Reference frontier for this test case.
        let reference = match spec.reference {
            ReferenceKind::UnionOfAll => {
                let all: Vec<_> = trajectories.iter().flat_map(|t| t.all_costs()).collect();
                ReferenceFrontier::from_costs(&all)
            }
            ReferenceKind::ExactDp => {
                let mut dp = AlgorithmKind::Dp101.build(&model, query.tables(), 0);
                // Run to completion (small queries only: bounded subsets).
                drive(&mut *dp, Budget::Iterations(u64::MAX), &mut NoopObserver);
                let plans = dp.frontier();
                assert!(
                    !plans.is_empty(),
                    "exact DP reference did not complete for {size} tables"
                );
                ReferenceFrontier::from_plan_sets([plans.as_slice()])
            }
        };

        for (ai, traj) in trajectories.iter().enumerate() {
            alpha_series[ai].push(traj.alpha_series(&reference));
        }
    }

    // Median per algorithm per checkpoint across cases.
    let series = spec
        .algorithms
        .iter()
        .zip(&alpha_series)
        .map(|(algo, per_case)| {
            let medians: Vec<f64> = (0..spec.checkpoints)
                .map(|cp| {
                    let samples: Vec<f64> = per_case.iter().map(|s| s[cp]).collect();
                    median(&samples).unwrap_or(f64::INFINITY)
                })
                .collect();
            (algo.name().to_string(), medians)
        })
        .collect();

    PanelResult {
        shape,
        size,
        checkpoints: cps,
        series,
    }
}

struct NoopObserver;
impl moqo_core::optimizer::Observer for NoopObserver {
    fn on_step(
        &mut self,
        _: Duration,
        _: u64,
        _: &mut dyn FnMut() -> Vec<moqo_core::plan::PlanRef>,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigureSpec;

    #[test]
    fn smoke_figure_produces_full_grid() {
        let spec = FigureSpec::smoke();
        let result = run_figure(&spec);
        assert_eq!(result.panels.len(), 1);
        let panel = &result.panels[0];
        assert_eq!(panel.series.len(), 2);
        assert_eq!(panel.checkpoints.len(), 3);
        for (name, series) in &panel.series {
            assert_eq!(series.len(), 3, "{name} series wrong length");
            // α values are always ≥ 1 (or ∞ before first result).
            assert!(series.iter().all(|&a| a >= 1.0));
        }
        // Both II and RMQ produce results within the budget on 5 tables.
        let (winner, alpha) = panel.winner().expect("winner exists");
        assert!(winner == "RMQ" || winner == "II");
        assert!(alpha.is_finite());
        assert!(result.panel(GraphShape::Chain, 5).is_some());
        assert!(result.panel(GraphShape::Star, 5).is_none());
    }

    #[test]
    fn exact_dp_reference_works_on_tiny_queries() {
        let mut spec = FigureSpec::smoke();
        spec.sizes = vec![4];
        spec.reference = ReferenceKind::ExactDp;
        spec.alpha_cap = Some(2.0);
        let result = run_figure(&spec);
        let panel = &result.panels[0];
        // Against an exact reference, finite α values are still ≥ 1.
        for (_, series) in &panel.series {
            assert!(series.iter().all(|&a| a >= 1.0));
        }
    }

    #[test]
    fn panel_final_alpha_lookup() {
        let spec = FigureSpec::smoke();
        let result = run_figure(&spec);
        let panel = &result.panels[0];
        assert!(panel.final_alpha("RMQ").is_some());
        assert!(panel.final_alpha("nope").is_none());
    }
}
