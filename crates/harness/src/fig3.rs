//! Figure 3: climbing path lengths and Pareto-plan counts.
//!
//! The paper's Figure 3 reports, for three cost metrics over chain, cycle
//! and star queries of 10–100 tables: (left) the **median path length from
//! a random plan to the next local Pareto optimum**, corroborating the O(n)
//! expectation of §5, and (right) the **median number of Pareto plans found
//! by RMQ**, which grows with the query size and explains why approximation
//! gets harder for large queries. We additionally report the statistical
//! model's predicted path length ([`moqo_core::theory`]) next to the
//! measurement.
//!
//! Path lengths are iteration statistics (no wall clock involved), so test
//! cases run in parallel via `std::thread::scope`.

use moqo_core::optimizer::{drive, Budget, NullObserver};
use moqo_core::rmq::{Rmq, RmqConfig};
use moqo_core::theory;
use moqo_cost::{ResourceCostModel, ResourceMetric};
use moqo_workload::{GraphShape, SelectivityMethod, WorkloadSpec};

use crate::derive_seed;
use crate::stats::{median, median_usize};

/// Specification of the Figure 3 experiment.
#[derive(Clone, Debug)]
pub struct Fig3Spec {
    /// Join graph shapes.
    pub shapes: Vec<GraphShape>,
    /// Query sizes.
    pub sizes: Vec<usize>,
    /// RMQ iterations per test case.
    pub iterations: u64,
    /// Test cases per data point.
    pub cases: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Fig3Spec {
    fn default() -> Self {
        Fig3Spec {
            shapes: GraphShape::PAPER.to_vec(),
            sizes: vec![10, 25, 50, 75, 100],
            iterations: 25,
            cases: 3,
            seed: 0x0F16_0003,
        }
    }
}

/// One data point of Figure 3.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Join graph shape.
    pub shape: GraphShape,
    /// Query size in tables.
    pub size: usize,
    /// Median measured climbing path length (improving moves per climb).
    pub median_path_length: f64,
    /// Expected path length under the §5 statistical model.
    pub predicted_path_length: f64,
    /// Median number of Pareto plans in RMQ's final frontier.
    pub median_pareto_plans: f64,
}

/// Runs the Figure 3 experiment.
pub fn run_fig3(spec: &Fig3Spec) -> Vec<Fig3Row> {
    let mut rows = Vec::new();
    for &shape in &spec.shapes {
        for &size in &spec.sizes {
            rows.push(run_point(spec, shape, size));
        }
    }
    rows
}

fn run_point(spec: &Fig3Spec, shape: GraphShape, size: usize) -> Fig3Row {
    let shape_idx = match shape {
        GraphShape::Chain => 0u64,
        GraphShape::Cycle => 1,
        GraphShape::Star => 2,
        GraphShape::Clique => 3,
    };
    // Independent test cases in parallel: path-length statistics are
    // iteration-based, so wall-clock contention cannot distort them.
    let case_results: Vec<(Vec<usize>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.cases)
            .map(|case| {
                scope.spawn(move || {
                    let workload = WorkloadSpec {
                        tables: size,
                        shape,
                        selectivity: SelectivityMethod::Steinbrunn,
                        seed: derive_seed(spec.seed, &[shape_idx, size as u64, case as u64, 1]),
                    };
                    let (catalog, query) = workload.generate();
                    // Figure 3 uses three cost metrics.
                    let model = ResourceCostModel::new(catalog, &ResourceMetric::ALL);
                    let mut rmq = Rmq::new(
                        &model,
                        query.tables(),
                        RmqConfig::seeded(derive_seed(
                            spec.seed,
                            &[shape_idx, size as u64, case as u64, 2],
                        )),
                    );
                    drive(
                        &mut rmq,
                        Budget::Iterations(spec.iterations),
                        &mut NullObserver,
                    );
                    (rmq.stats().path_lengths.clone(), rmq.frontier().len())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("case thread"))
            .collect()
    });

    let all_paths: Vec<usize> = case_results.iter().flat_map(|(p, _)| p.clone()).collect();
    let pareto_counts: Vec<usize> = case_results.iter().map(|(_, c)| *c).collect();
    Fig3Row {
        shape,
        size,
        median_path_length: median_usize(&all_paths).unwrap_or(0.0),
        predicted_path_length: theory::expected_path_length(size, ResourceMetric::ALL.len()),
        median_pareto_plans: median(&pareto_counts.iter().map(|&c| c as f64).collect::<Vec<_>>())
            .unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_produces_rows_with_sane_statistics() {
        let spec = Fig3Spec {
            shapes: vec![GraphShape::Chain, GraphShape::Star],
            sizes: vec![8, 16],
            iterations: 8,
            cases: 2,
            seed: 0xF3,
        };
        let rows = run_fig3(&spec);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            // Paths are short (Fig 3 reports ~4-6 for up to 100 tables).
            assert!(
                row.median_path_length >= 0.0 && row.median_path_length <= 40.0,
                "path length {} out of range",
                row.median_path_length
            );
            assert!(row.predicted_path_length >= 1.0);
            assert!(row.median_pareto_plans >= 1.0);
        }
    }

    #[test]
    fn pareto_plan_count_grows_with_query_size() {
        // The paper's Fig 3 (right): more tables → more Pareto plans.
        // Enough cases/iterations that the median is a stable statistic
        // regardless of the RNG stream backing plan generation.
        let spec = Fig3Spec {
            shapes: vec![GraphShape::Chain],
            sizes: vec![4, 20],
            iterations: 60,
            cases: 4,
            seed: 0xF4,
        };
        let rows = run_fig3(&spec);
        assert!(
            rows[1].median_pareto_plans >= rows[0].median_pareto_plans,
            "{} < {}",
            rows[1].median_pareto_plans,
            rows[0].median_pareto_plans
        );
    }
}
