//! # moqo-harness — the paper's experimental evaluation, reproducible
//!
//! Drives every experiment of the paper's §6 and appendix: the nine figures
//! comparing DP approximation schemes, SA, 2P, NSGA-II, II, and RMQ on
//! chain/cycle/star queries of 4–100 tables under 2–3 cost metrics, plus
//! the path-length/Pareto-count statistics of Figure 3 and the ablations
//! called out in DESIGN.md.
//!
//! Measurement protocol (§6.1): per test case all algorithms run under the
//! same wall-clock budget; frontiers are snapshotted at regular checkpoints;
//! each snapshot is scored with the ε-indicator α against a reference
//! frontier (union of all algorithms' outputs, or an exact DP frontier for
//! small queries); panels report the **median α per checkpoint** over the
//! test cases.
//!
//! Budgets are scaled down from the paper's 3 s/30 s (a Rust iteration is
//! much cheaper than the paper's Java 1.7 iteration); the scale is
//! controlled by [`EnvConfig`] (`MOQO_TIME_SCALE`, `MOQO_CASES`).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod algorithms;
pub mod export;
pub mod fig3;
pub mod figures;
pub mod report;
pub mod runner;
pub mod stats;

pub use algorithms::AlgorithmKind;
pub use figures::{FigureSpec, ReferenceKind};
pub use runner::{run_figure, FigureResult, PanelResult};

/// Environment-controlled scaling of the experiment suite.
#[derive(Clone, Copy, Debug)]
pub struct EnvConfig {
    /// Multiplier applied to every figure's default (already scaled-down)
    /// budget. `MOQO_TIME_SCALE`, default `1.0`.
    pub time_scale: f64,
    /// Test cases per data point (the paper uses 20, resp. 10 for the long
    /// experiments). `MOQO_CASES`, default figure-specific.
    pub cases_override: Option<usize>,
    /// Restrict panels to at most this many query sizes (smoke tests).
    /// `MOQO_MAX_SIZES`.
    pub max_sizes: Option<usize>,
}

impl EnvConfig {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Self {
        fn parse<T: std::str::FromStr>(key: &str) -> Option<T> {
            std::env::var(key).ok()?.parse().ok()
        }
        EnvConfig {
            time_scale: parse("MOQO_TIME_SCALE").unwrap_or(1.0),
            cases_override: parse("MOQO_CASES"),
            max_sizes: parse("MOQO_MAX_SIZES"),
        }
    }

    /// A fixed configuration (tests).
    pub fn fixed(time_scale: f64, cases: Option<usize>) -> Self {
        EnvConfig {
            time_scale,
            cases_override: cases,
            max_sizes: None,
        }
    }
}

/// SplitMix64 seed derivation for independent experiment streams.
pub fn derive_seed(base: u64, parts: &[u64]) -> u64 {
    let mut x = base;
    for &p in parts {
        x = x
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(p.wrapping_mul(0xff51_afd7_ed55_8ccd));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let a = derive_seed(1, &[2, 3]);
        let b = derive_seed(1, &[2, 4]);
        let c = derive_seed(1, &[2, 3]);
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_ne!(derive_seed(1, &[2, 3]), derive_seed(2, &[2, 3]));
    }

    #[test]
    fn env_config_defaults() {
        let cfg = EnvConfig::fixed(1.0, None);
        assert_eq!(cfg.time_scale, 1.0);
        assert!(cfg.cases_override.is_none());
        assert!(cfg.max_sizes.is_none());
    }
}
