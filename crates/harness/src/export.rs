//! Machine-readable export of figure results (JSON and CSV).
//!
//! The ASCII renderer of [`crate::report`] is what humans read in a
//! terminal; this module produces the same data in formats downstream
//! tooling can consume — `serde_json` for structured archival (the format
//! EXPERIMENTS.md's archived runs use) and a long-format CSV that plotting
//! scripts can pivot into the paper's panel grid directly.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use serde::Serialize;

use crate::fig3::Fig3Row;
use crate::runner::{FigureResult, PanelResult};

/// Serializable mirror of [`FigureResult`] with flattened plain types.
#[derive(Serialize, Debug)]
pub struct FigureExport {
    /// Figure id (e.g. `"fig1"`).
    pub id: String,
    /// Figure title.
    pub title: String,
    /// Per-algorithm budget in milliseconds.
    pub budget_ms: f64,
    /// Number of cost metrics.
    pub metrics: usize,
    /// Test cases per panel.
    pub cases: usize,
    /// Display cap on α (`null` when uncapped).
    pub alpha_cap: Option<f64>,
    /// One entry per (shape, size) panel.
    pub panels: Vec<PanelExport>,
}

/// Serializable mirror of [`PanelResult`].
#[derive(Serialize, Debug)]
pub struct PanelExport {
    /// Join graph shape name.
    pub shape: String,
    /// Query size in tables.
    pub size: usize,
    /// Checkpoint times in milliseconds.
    pub checkpoints_ms: Vec<f64>,
    /// Median-α series per algorithm.
    pub series: Vec<SeriesExport>,
}

/// One algorithm's median-α trajectory within a panel.
#[derive(Serialize, Debug)]
pub struct SeriesExport {
    /// Algorithm display name.
    pub algorithm: String,
    /// Median α at each checkpoint (aligned with `checkpoints_ms`).
    pub alpha: Vec<f64>,
}

impl FigureExport {
    /// Converts a runner result into the serializable mirror.
    pub fn from_result(result: &FigureResult) -> Self {
        FigureExport {
            id: result.id.clone(),
            title: result.title.clone(),
            budget_ms: result.budget.as_secs_f64() * 1e3,
            metrics: result.metrics,
            cases: result.cases,
            alpha_cap: result.alpha_cap,
            panels: result.panels.iter().map(PanelExport::from_panel).collect(),
        }
    }
}

impl PanelExport {
    fn from_panel(panel: &PanelResult) -> Self {
        PanelExport {
            shape: panel.shape.name().to_string(),
            size: panel.size,
            checkpoints_ms: panel
                .checkpoints
                .iter()
                .map(|c| c.as_secs_f64() * 1e3)
                .collect(),
            series: panel
                .series
                .iter()
                .map(|(algorithm, alpha)| SeriesExport {
                    algorithm: algorithm.clone(),
                    alpha: alpha.clone(),
                })
                .collect(),
        }
    }
}

/// Serializes a figure result to pretty-printed JSON.
pub fn figure_to_json(result: &FigureResult) -> String {
    serde_json::to_string_pretty(&FigureExport::from_result(result))
        .expect("figure export contains no non-serializable values")
}

/// Formats α for CSV: infinities become the string `inf` so spreadsheet
/// tools do not silently coerce them.
fn csv_alpha(a: f64) -> String {
    if a.is_finite() {
        format!("{a}")
    } else {
        "inf".to_string()
    }
}

/// Serializes a figure result as long-format CSV with the header
/// `figure,shape,tables,checkpoint_ms,algorithm,median_alpha` — one row per
/// (panel, checkpoint, algorithm) cell.
pub fn figure_to_csv(result: &FigureResult) -> String {
    let mut out = String::from("figure,shape,tables,checkpoint_ms,algorithm,median_alpha\n");
    for panel in &result.panels {
        for (cp_idx, cp) in panel.checkpoints.iter().enumerate() {
            for (algorithm, series) in &panel.series {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{}",
                    result.id,
                    panel.shape.name(),
                    panel.size,
                    cp.as_secs_f64() * 1e3,
                    algorithm,
                    csv_alpha(series[cp_idx])
                );
            }
        }
    }
    out
}

/// Serializes Figure 3 rows as CSV with the header
/// `shape,tables,median_path_length,predicted_path_length,median_pareto_plans`.
pub fn fig3_to_csv(rows: &[Fig3Row]) -> String {
    let mut out =
        String::from("shape,tables,median_path_length,predicted_path_length,median_pareto_plans\n");
    for row in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            row.shape.name(),
            row.size,
            row.median_path_length,
            row.predicted_path_length,
            row.median_pareto_plans
        );
    }
    out
}

/// Writes the three report artifacts (`<id>.txt`, `<id>.json`, `<id>.csv`)
/// for a figure result into `dir`, creating the directory if needed.
/// Returns the paths written.
pub fn write_reports(result: &FigureResult, dir: &Path) -> io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let txt = dir.join(format!("{}.txt", result.id));
    let json = dir.join(format!("{}.json", result.id));
    let csv = dir.join(format!("{}.csv", result.id));
    std::fs::write(&txt, crate::report::render_figure(result))?;
    std::fs::write(&json, figure_to_json(result))?;
    std::fs::write(&csv, figure_to_csv(result))?;
    Ok(vec![txt, json, csv])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigureSpec;
    use crate::runner::run_figure;

    fn smoke_result() -> FigureResult {
        run_figure(&FigureSpec::smoke())
    }

    #[test]
    fn json_round_trips_through_serde_json() {
        let result = smoke_result();
        let json = figure_to_json(&result);
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(value["id"], "smoke");
        assert_eq!(value["panels"].as_array().unwrap().len(), 1);
        let panel = &value["panels"][0];
        assert_eq!(panel["shape"], "Chain");
        assert_eq!(panel["size"], 5);
        let series = panel["series"].as_array().unwrap();
        assert_eq!(series.len(), 2, "II and RMQ");
        for s in series {
            assert_eq!(
                s["alpha"].as_array().unwrap().len(),
                panel["checkpoints_ms"].as_array().unwrap().len()
            );
        }
    }

    #[test]
    fn csv_has_one_row_per_cell_plus_header() {
        let result = smoke_result();
        let csv = figure_to_csv(&result);
        let lines: Vec<&str> = csv.lines().collect();
        let expected_cells: usize = result
            .panels
            .iter()
            .map(|p| p.checkpoints.len() * p.series.len())
            .sum();
        assert_eq!(lines.len(), 1 + expected_cells);
        assert_eq!(
            lines[0],
            "figure,shape,tables,checkpoint_ms,algorithm,median_alpha"
        );
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), 6, "malformed row: {l}");
        }
    }

    #[test]
    fn csv_encodes_infinite_alpha_as_inf() {
        assert_eq!(csv_alpha(f64::INFINITY), "inf");
        assert_eq!(csv_alpha(2.5), "2.5");
    }

    #[test]
    fn fig3_csv_layout() {
        let rows = vec![Fig3Row {
            shape: moqo_workload::GraphShape::Star,
            size: 25,
            median_path_length: 4.5,
            predicted_path_length: 5.1,
            median_pareto_plans: 33.0,
        }];
        let csv = fig3_to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("Star,25,4.5,5.1,33"));
    }

    #[test]
    fn reports_written_to_disk() {
        let result = smoke_result();
        let dir = std::env::temp_dir().join(format!("moqo_export_test_{}", std::process::id()));
        let paths = write_reports(&result, &dir).expect("write reports");
        assert_eq!(paths.len(), 3);
        for p in &paths {
            let content = std::fs::read_to_string(p).expect("readable");
            assert!(!content.is_empty(), "{p:?} empty");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
