//! Algorithm registry: the competitor set of the paper's figures.

use moqo_core::optimizer::Optimizer;
use moqo_core::rmq::{Rmq, RmqConfig};
use moqo_core::tables::TableSet;
use moqo_cost::ResourceCostModel;
use moqo_parallel::{ParRmq, ParRmqConfig};

use moqo_baselines::{
    DpOptimizer, IterativeImprovement, Nsga2, SimulatedAnnealing, TwoPhase, WeightedSum,
};

/// The algorithms of the paper's evaluation (plus the WS extension).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AlgorithmKind {
    /// DP approximation scheme with `α = ∞`.
    DpInfinity,
    /// DP approximation scheme with `α = 1000`.
    Dp1000,
    /// DP approximation scheme with `α = 2`.
    Dp2,
    /// DP approximation scheme with `α = 1.01` (reference generator).
    Dp101,
    /// Multi-objective simulated annealing.
    Sa,
    /// Two-phase optimization.
    TwoPhase,
    /// Non-dominated sorting genetic algorithm II.
    NsgaII,
    /// Multi-objective iterative improvement.
    Ii,
    /// The paper's randomized multi-objective query optimizer.
    Rmq,
    /// RMQ fanned out over 4 intra-query worker threads with
    /// shared-frontier exchange (extension; not in the paper's figures).
    ParRmq,
    /// Weighted-sum scalarization (extension; not in the paper's figures).
    WeightedSum,
}

impl AlgorithmKind {
    /// The eight algorithms shown in every figure, in the paper's legend
    /// order: DP(∞), DP(1000), DP(2), SA, 2P, NSGA-II, II, RMQ.
    pub const PAPER_SET: [AlgorithmKind; 8] = [
        AlgorithmKind::DpInfinity,
        AlgorithmKind::Dp1000,
        AlgorithmKind::Dp2,
        AlgorithmKind::Sa,
        AlgorithmKind::TwoPhase,
        AlgorithmKind::NsgaII,
        AlgorithmKind::Ii,
        AlgorithmKind::Rmq,
    ];

    /// Display name (matches the paper's legend).
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::DpInfinity => "DP(Infinity)",
            AlgorithmKind::Dp1000 => "DP(1000)",
            AlgorithmKind::Dp2 => "DP(2)",
            AlgorithmKind::Dp101 => "DP(1.01)",
            AlgorithmKind::Sa => "SA",
            AlgorithmKind::TwoPhase => "2P",
            AlgorithmKind::NsgaII => "NSGA-II",
            AlgorithmKind::Ii => "II",
            AlgorithmKind::Rmq => "RMQ",
            AlgorithmKind::ParRmq => "ParRMQ",
            AlgorithmKind::WeightedSum => "WS",
        }
    }

    /// Instantiates the optimizer over the given model and query.
    pub fn build<'a>(
        self,
        model: &'a ResourceCostModel,
        query: TableSet,
        seed: u64,
    ) -> Box<dyn Optimizer + 'a> {
        match self {
            AlgorithmKind::DpInfinity => Box::new(DpOptimizer::new(model, query, f64::INFINITY)),
            AlgorithmKind::Dp1000 => Box::new(DpOptimizer::new(model, query, 1000.0)),
            AlgorithmKind::Dp2 => Box::new(DpOptimizer::new(model, query, 2.0)),
            AlgorithmKind::Dp101 => Box::new(DpOptimizer::new(model, query, 1.01)),
            AlgorithmKind::Sa => Box::new(SimulatedAnnealing::new(model, query, seed)),
            AlgorithmKind::TwoPhase => Box::new(TwoPhase::new(model, query, seed)),
            AlgorithmKind::NsgaII => Box::new(Nsga2::new(model, query, seed)),
            AlgorithmKind::Ii => Box::new(IterativeImprovement::new(model, query, seed)),
            AlgorithmKind::Rmq => Box::new(Rmq::new(model, query, RmqConfig::seeded(seed))),
            // The fan-out takes an owned model (climb batches may outlive
            // this borrow on the shared executor); the clone is cheap —
            // the catalog inside is Arc-shared.
            AlgorithmKind::ParRmq => Box::new(ParRmq::new(
                model.clone(),
                query,
                ParRmqConfig::seeded(seed, 4),
            )),
            AlgorithmKind::WeightedSum => Box::new(WeightedSum::new(model, query, seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_catalog::Query;
    use moqo_core::optimizer::{drive, Budget, NullObserver};
    use moqo_workload::WorkloadSpec;

    #[test]
    fn every_algorithm_builds_and_steps() {
        let (catalog, query) = WorkloadSpec::chain(5, 3).generate();
        let model = ResourceCostModel::full(catalog);
        let all = [
            AlgorithmKind::DpInfinity,
            AlgorithmKind::Dp1000,
            AlgorithmKind::Dp2,
            AlgorithmKind::Dp101,
            AlgorithmKind::Sa,
            AlgorithmKind::TwoPhase,
            AlgorithmKind::NsgaII,
            AlgorithmKind::Ii,
            AlgorithmKind::Rmq,
            AlgorithmKind::ParRmq,
            AlgorithmKind::WeightedSum,
        ];
        for kind in all {
            let mut opt = kind.build(&model, query.tables(), 7);
            assert_eq!(opt.name(), kind.name());
            drive(&mut *opt, Budget::Iterations(3), &mut NullObserver);
            for p in opt.frontier() {
                assert!(p.validate(query.tables()).is_ok(), "{}", kind.name());
            }
        }
    }

    #[test]
    fn paper_set_order_matches_legend() {
        let names: Vec<&str> = AlgorithmKind::PAPER_SET.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "DP(Infinity)",
                "DP(1000)",
                "DP(2)",
                "SA",
                "2P",
                "NSGA-II",
                "II",
                "RMQ"
            ]
        );
    }

    #[test]
    fn queries_from_workloads_are_compatible() {
        let (catalog, query) = WorkloadSpec::chain(4, 1).generate();
        let q2 = Query::all(&catalog);
        assert_eq!(query, q2);
    }
}
