//! Small statistics helpers for experiment aggregation.

/// Median of a slice (handles `inf`; NaN-free by construction). Returns
/// `None` for an empty slice.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 0 {
        // Averaging with inf stays inf, as intended for α medians.
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    })
}

/// Median over `usize` samples.
pub fn median_usize(values: &[usize]) -> Option<f64> {
    let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    median(&as_f64)
}

/// Formats an α value the way the paper's axes do: `1.23`, `4.5e3`, `inf`;
/// values above `cap` print as `>cap`.
pub fn format_alpha(alpha: f64, cap: Option<f64>) -> String {
    if alpha.is_infinite() {
        return "inf".to_string();
    }
    if let Some(cap) = cap {
        if alpha > cap {
            return format!(">{}", format_alpha(cap, None));
        }
    }
    if alpha < 1_000.0 {
        format!("{alpha:.3}")
    } else {
        format!("{alpha:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_basics() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[1.0, 3.0]), Some(2.0));
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(median_usize(&[1, 2, 3]), Some(2.0));
    }

    #[test]
    fn median_with_infinities() {
        assert_eq!(median(&[1.0, f64::INFINITY, 2.0]), Some(2.0));
        assert_eq!(
            median(&[f64::INFINITY, f64::INFINITY, 2.0]),
            Some(f64::INFINITY)
        );
    }

    #[test]
    fn alpha_formatting() {
        assert_eq!(format_alpha(1.2345, None), "1.234");
        assert_eq!(format_alpha(f64::INFINITY, None), "inf");
        assert_eq!(format_alpha(4.5e6, None), "4.50e6");
        assert_eq!(format_alpha(3.0, Some(2.0)), ">2.000");
        assert_eq!(format_alpha(1.5, Some(2.0)), "1.500");
        assert_eq!(format_alpha(f64::INFINITY, Some(1e10)), "inf");
    }
}
