//! ASCII rendering of figure results (the series the paper plots).

use std::fmt::Write as _;

use crate::fig3::Fig3Row;
use crate::runner::FigureResult;
use crate::stats::format_alpha;

/// Renders a figure result as a set of per-panel tables: rows are
/// checkpoints, columns are algorithms, cells are median α — exactly the
/// series the paper's figures plot on log axes.
pub fn render_figure(result: &FigureResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", "=".repeat(100));
    let _ = writeln!(
        out,
        "{} — {} (budget {:?}/algorithm, {} cases/panel, l={})",
        result.id.to_uppercase(),
        result.title,
        result.budget,
        result.cases,
        result.metrics
    );
    let _ = writeln!(out, "{}", "=".repeat(100));
    for panel in &result.panels {
        let _ = writeln!(out, "-- {}, {} tables --", panel.shape.name(), panel.size);
        // Header.
        let _ = write!(out, "{:>9} |", "t(ms)");
        for (name, _) in &panel.series {
            let _ = write!(out, "{name:>13} |");
        }
        let _ = writeln!(out);
        // One row per checkpoint.
        for (cp_idx, cp) in panel.checkpoints.iter().enumerate() {
            let _ = write!(out, "{:>9.1} |", cp.as_secs_f64() * 1e3);
            for (_, series) in &panel.series {
                let _ = write!(
                    out,
                    "{:>13} |",
                    format_alpha(series[cp_idx], result.alpha_cap)
                );
            }
            let _ = writeln!(out);
        }
        if let Some((winner, alpha)) = panel.winner() {
            let _ = writeln!(
                out,
                "   best final: {winner} (alpha {})",
                format_alpha(alpha, result.alpha_cap)
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the Figure 3 tables (path lengths and Pareto-plan counts).
pub fn render_fig3(rows: &[Fig3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", "=".repeat(78));
    let _ = writeln!(
        out,
        "FIG3 — Median climb path length & number of Pareto plans (paper Fig. 3, l=3)"
    );
    let _ = writeln!(out, "{}", "=".repeat(78));
    let _ = writeln!(
        out,
        "{:>7} {:>8} | {:>12} {:>15} | {:>13}",
        "shape", "tables", "path(median)", "path(model E)", "#Pareto plans"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>7} {:>8} | {:>12.1} {:>15.2} | {:>13.1}",
            row.shape.name(),
            row.size,
            row.median_path_length,
            row.predicted_path_length,
            row.median_pareto_plans
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigureSpec;
    use crate::runner::run_figure;

    #[test]
    fn figure_rendering_contains_all_series() {
        let result = run_figure(&FigureSpec::smoke());
        let text = render_figure(&result);
        assert!(text.contains("SMOKE"));
        assert!(text.contains("Chain, 5 tables"));
        assert!(text.contains("RMQ"));
        assert!(text.contains("II"));
        assert!(text.contains("best final:"));
        // One row per checkpoint (3) plus headers.
        assert!(text.lines().count() > 7);
    }

    #[test]
    fn fig3_rendering_has_one_line_per_row() {
        let rows = vec![Fig3Row {
            shape: moqo_workload::GraphShape::Chain,
            size: 10,
            median_path_length: 4.0,
            predicted_path_length: 4.2,
            median_pareto_plans: 12.0,
        }];
        let text = render_fig3(&rows);
        assert!(text.contains("Chain"));
        assert!(text.contains("4.2"));
        assert!(text.contains("12.0"));
    }
}
