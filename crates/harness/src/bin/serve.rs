//! `serve` — replay generated query traffic against the optimization
//! service and report serving metrics.
//!
//! ```text
//! Usage: serve [OPTIONS]
//!
//!   --sessions N       total sessions to replay (default 24)
//!   --waves K          submit sessions in K waves; later waves warm-start
//!                      from earlier waves' published plans (default 3)
//!   --workers W        scheduler worker threads (default 3)
//!   --tables T         tables in the shared catalog (default 12)
//!   --min-tables N     minimum tables per query (default T/2)
//!   --max-tables N     maximum tables per query (default T)
//!   --budget-ms MS     per-session time budget (default: iterations)
//!   --iters N          per-session iteration budget (default 60)
//!   --fan-out W        intra-query worker threads for latency-critical
//!                      sessions (default 1 = all sequential)
//!   --fan-out-every K  tag every K-th session latency-critical (default 4)
//!   --eps FACTOR       run sessions with an ε-box archive at this uniform
//!                      per-metric factor (> 1.0) instead of the paper's
//!                      α-schedule; bounds every frontier by cost precision
//!   --seed S           RNG seed (default 42)
//!   --obs-json PATH    enable the observability journal and periodically
//!                      flush JSON telemetry snapshots to PATH (plus one
//!                      final flush before exit)
//!   --trace-out PATH   record causal spans (sessions, slices, climb
//!                      batches, exchanges, cache lookups) and write them
//!                      as Chrome trace-event JSON on exit
//!   --slo-ttff-ms N    SLO target: p99 time-to-first-frontier (ms)
//!   --slo-queue-ms N   SLO target: p99 queueing delay (ms)
//!   --slo-shed N       SLO target: shed rate (rejected per mille offered)
//!
//! Front-door mode (enabled by --tenants > 0; replays zipfian multi-tenant
//! traffic through the sharded front door instead of one bare service):
//!
//!   --tenants N        number of tenants (default 0 = single-service mode)
//!   --tenant-skew F    Zipf exponent of the tenant distribution (default 1)
//!   --templates N      distinct query templates in the pool (default 16)
//!   --query-skew F     Zipf exponent of the template distribution (default 1)
//!   --shards K         independent service shards (default 4)
//!   --quota-burst N    per-tenant token-bucket burst (default 0 = no quota)
//!   --quota-refill F   per-tenant refill rate, tokens/sec (default 0)
//!   --no-degrade       disable the SLO-aware degradation ladder (the
//!                      ablation: shed outright instead of degrading first)
//! ```
//!
//! Prints one line per session (steps, frontier size, warm-start plans,
//! time to first frontier) and a closing service summary: throughput,
//! p50/p99 time-to-first-frontier, time-to-90%-of-final-hypervolume, the
//! cross-query cache hit rate, and — when any `--slo-*` target is set —
//! the SLO verdict. Front-door mode prints per-wave progress plus a front
//! door summary (coalescing hits, degraded admissions, shed counts, and
//! per-shard service stats) instead of per-session lines.

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use moqo_catalog::Catalog;
use moqo_core::archive::ArchiveConfig;
use moqo_core::optimizer::Budget;
use moqo_core::rmq::{Rmq, RmqConfig};
use moqo_core::EpsFactors;
use moqo_cost::{ResourceCostModel, ResourceMetric};
use moqo_frontdoor::{
    DegradationConfig, FrontDoor, FrontDoorConfig, FrontRequest, FrontdoorError, QuotaConfig,
};
use moqo_parallel::{ParRmq, ParRmqConfig};
use moqo_service::{
    context_fingerprint, OptimizationService, PlanExchange, ServiceConfig, SessionHandle,
    SessionRequest, SloConfig, SLO_BIT_QUEUE_DELAY, SLO_BIT_SHED, SLO_BIT_TTFF,
};
use moqo_workload::{GraphShape, SelectivityMethod, TrafficSpec};

struct Options {
    sessions: usize,
    waves: usize,
    workers: usize,
    tables: usize,
    min_tables: Option<usize>,
    max_tables: Option<usize>,
    budget_ms: Option<u64>,
    iters: u64,
    fan_out: usize,
    fan_out_every: usize,
    /// ε-box archive factor for every session's optimizer (None = paper
    /// α-schedule).
    eps: Option<f64>,
    seed: u64,
    obs_json: Option<String>,
    trace_out: Option<String>,
    slo: SloConfig,
    /// Tenants in front-door mode (0 = classic single-service replay).
    tenants: usize,
    tenant_skew: f64,
    templates: usize,
    query_skew: f64,
    shards: usize,
    quota_burst: u64,
    quota_refill: f64,
    degrade: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--sessions N] [--waves K] [--workers W] [--tables T] \
         [--min-tables N] [--max-tables N] [--budget-ms MS] [--iters N] \
         [--fan-out W] [--fan-out-every K] [--eps FACTOR] [--seed S] \
         [--obs-json PATH] [--trace-out PATH] [--slo-ttff-ms N] \
         [--slo-queue-ms N] [--slo-shed N] [--tenants N] [--tenant-skew F] \
         [--templates N] [--query-skew F] [--shards K] [--quota-burst N] \
         [--quota-refill F] [--no-degrade]"
    );
    exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        sessions: 24,
        waves: 3,
        workers: 3,
        tables: 12,
        min_tables: None,
        max_tables: None,
        budget_ms: None,
        iters: 60,
        fan_out: 1,
        fan_out_every: 4,
        eps: None,
        seed: 42,
        obs_json: None,
        trace_out: None,
        slo: SloConfig::default(),
        tenants: 0,
        tenant_skew: 1.0,
        templates: 16,
        query_skew: 1.0,
        shards: 4,
        quota_burst: 0,
        quota_refill: 0.0,
        degrade: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                usage()
            })
        };
        let parsed = |name: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {name}");
                usage()
            })
        };
        let parsed_f64 = |name: &str, v: String| -> f64 {
            let f: f64 = v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {name}");
                usage()
            });
            if !f.is_finite() || f < 0.0 {
                eprintln!("{name} must be finite and non-negative");
                usage()
            }
            f
        };
        match arg.as_str() {
            "--sessions" => opts.sessions = parsed("--sessions", value("--sessions")) as usize,
            "--waves" => opts.waves = parsed("--waves", value("--waves")).max(1) as usize,
            // At least one worker: zero would admit sessions nothing steps.
            "--workers" => opts.workers = parsed("--workers", value("--workers")).max(1) as usize,
            "--tables" => opts.tables = parsed("--tables", value("--tables")) as usize,
            "--min-tables" => {
                opts.min_tables = Some(parsed("--min-tables", value("--min-tables")) as usize)
            }
            "--max-tables" => {
                opts.max_tables = Some(parsed("--max-tables", value("--max-tables")) as usize)
            }
            "--budget-ms" => opts.budget_ms = Some(parsed("--budget-ms", value("--budget-ms"))),
            "--iters" => opts.iters = parsed("--iters", value("--iters")),
            "--fan-out" => opts.fan_out = parsed("--fan-out", value("--fan-out")).max(1) as usize,
            "--fan-out-every" => {
                opts.fan_out_every = parsed("--fan-out-every", value("--fan-out-every")) as usize
            }
            "--eps" => {
                let v: f64 = value("--eps").parse().unwrap_or_else(|_| {
                    eprintln!("invalid value for --eps");
                    usage()
                });
                if v.partial_cmp(&1.0) != Some(std::cmp::Ordering::Greater) {
                    eprintln!("--eps requires a factor > 1.0");
                    usage()
                }
                opts.eps = Some(v);
            }
            "--seed" => opts.seed = parsed("--seed", value("--seed")),
            "--obs-json" => opts.obs_json = Some(value("--obs-json")),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")),
            "--slo-ttff-ms" => {
                opts.slo.ttff_p99 = Some(Duration::from_millis(parsed(
                    "--slo-ttff-ms",
                    value("--slo-ttff-ms"),
                )))
            }
            "--slo-queue-ms" => {
                opts.slo.queue_delay_p99 = Some(Duration::from_millis(parsed(
                    "--slo-queue-ms",
                    value("--slo-queue-ms"),
                )))
            }
            "--slo-shed" => {
                opts.slo.shed_per_mille = Some(parsed("--slo-shed", value("--slo-shed")))
            }
            "--tenants" => opts.tenants = parsed("--tenants", value("--tenants")) as usize,
            "--tenant-skew" => {
                opts.tenant_skew = parsed_f64("--tenant-skew", value("--tenant-skew"))
            }
            "--templates" => {
                opts.templates = parsed("--templates", value("--templates")).max(1) as usize
            }
            "--query-skew" => opts.query_skew = parsed_f64("--query-skew", value("--query-skew")),
            "--shards" => opts.shards = parsed("--shards", value("--shards")).max(1) as usize,
            "--quota-burst" => opts.quota_burst = parsed("--quota-burst", value("--quota-burst")),
            "--quota-refill" => {
                opts.quota_refill = parsed_f64("--quota-refill", value("--quota-refill"))
            }
            "--no-degrade" => opts.degrade = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    opts
}

fn fmt_ms(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.2}ms", d.as_secs_f64() * 1e3),
        None => "-".to_string(),
    }
}

/// Writes one telemetry snapshot atomically (write-then-rename, so a
/// concurrent reader never observes a half-written file).
fn flush_obs_json(path: &str) {
    let json = moqo_obs::ObsSnapshot::capture().to_json();
    let tmp = format!("{path}.tmp");
    if std::fs::write(&tmp, &json).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// Background telemetry flusher: writes a snapshot to `path` every
/// `period` until `stop` flips, then once more for the final state.
struct ObsFlusher {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<()>,
    path: String,
}

impl ObsFlusher {
    fn start(path: String, period: Duration) -> Self {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let handle = {
            let (stop, path) = (Arc::clone(&stop), path.clone());
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    flush_obs_json(&path);
                    std::thread::sleep(period);
                }
            })
        };
        ObsFlusher { stop, handle, path }
    }

    fn finish(self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = self.handle.join();
        flush_obs_json(&self.path);
        println!("  obs json        {}", self.path);
    }
}

fn main() {
    let opts = parse_args();
    if opts.trace_out.is_some() {
        moqo_obs::spans::enable();
    }
    let flusher = opts.obs_json.as_ref().map(|path| {
        // Structured events feed the flushed snapshots; Info keeps the
        // ring to session-lifecycle and exchange-progress events.
        moqo_obs::journal::enable_all(moqo_obs::journal::Level::Info);
        ObsFlusher::start(path.clone(), Duration::from_millis(250))
    });
    if opts.tenants > 0 {
        run_front_door(&opts);
    } else {
        run_single_service(&opts);
    }
    if let Some(flusher) = flusher {
        flusher.finish();
    }
    if let Some(path) = &opts.trace_out {
        use moqo_obs::spans;
        spans::disable();
        let records = spans::drain();
        let json = spans::to_chrome_trace(&records);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write trace to {path}: {e}");
            exit(1);
        }
        println!("  trace json      {path} ({} spans)", records.len());
    }
}

/// The classic replay: every session through one [`OptimizationService`].
fn run_single_service(opts: &Options) {
    let spec = TrafficSpec {
        catalog_tables: opts.tables,
        shape: GraphShape::Chain,
        selectivity: SelectivityMethod::Steinbrunn,
        queries: opts.sessions,
        min_query_tables: opts.min_tables.unwrap_or((opts.tables / 2).max(2)),
        max_query_tables: opts.max_tables.unwrap_or(opts.tables),
        seed: opts.seed,
    };
    // fan_out == 1 leaves every session sequential (tagging disabled).
    let every = if opts.fan_out > 1 {
        opts.fan_out_every
    } else {
        0
    };
    let (catalog, sessions) = spec.generate_with_fan_out(every, opts.fan_out);
    let metrics = [ResourceMetric::Time, ResourceMetric::Buffer];
    let model = Arc::new(ResourceCostModel::new(Arc::clone(&catalog), &metrics));
    let context = context_fingerprint(catalog.fingerprint(), "resource:time,buffer");
    let budget = match opts.budget_ms {
        Some(ms) => Budget::Time(Duration::from_millis(ms)),
        None => Budget::Iterations(opts.iters),
    };

    println!(
        "serve: {} sessions in {} wave(s), {} workers, catalog fp {:016x}",
        opts.sessions,
        opts.waves,
        opts.workers,
        catalog.fingerprint()
    );
    print_catalog_summary(&catalog);

    let wave_size = opts.sessions.div_ceil(opts.waves);
    let mut config = ServiceConfig {
        workers: opts.workers,
        slo: opts.slo,
        ..ServiceConfig::default()
    };
    // A whole wave is submitted before waiting, so admission must have
    // room for it — otherwise large `--sessions` runs abort on QueueFull.
    config.admission.max_live_sessions = config.admission.max_live_sessions.max(wave_size);
    let service = OptimizationService::new(config);

    let mut session_no = 0usize;
    for (wave, chunk) in sessions.chunks(wave_size.max(1)).enumerate() {
        println!("-- wave {} ({} sessions)", wave + 1, chunk.len());
        let handles: Vec<(usize, usize, usize, SessionHandle)> = chunk
            .iter()
            .map(|session| {
                let seed = opts.seed ^ (session_no as u64).wrapping_mul(0x9e37);
                let tables = session.query.tables();
                // Latency-critical sessions fan one query out over worker
                // threads; the rest run the sequential optimizer. Both go
                // through the same PlanExchange seam.
                let mut rmq_cfg = RmqConfig::seeded(seed);
                if let Some(eps) = opts.eps {
                    rmq_cfg.archive = ArchiveConfig::eps_box(EpsFactors::splat(eps));
                }
                let optimizer: Box<dyn PlanExchange> = if session.fan_out > 1 {
                    let mut cfg = ParRmqConfig::seeded(seed, session.fan_out);
                    cfg.base.archive = rmq_cfg.archive;
                    // Keep rounds short so iteration budgets stay exact per
                    // scheduling slice.
                    cfg.batch = 4;
                    Box::new(ParRmq::new(Arc::clone(&model), tables, cfg))
                } else {
                    Box::new(Rmq::new(Arc::clone(&model), tables, rmq_cfg))
                };
                let request = SessionRequest {
                    optimizer,
                    budget,
                    query: tables,
                    context,
                };
                session_no += 1;
                let handle = service.submit(request).unwrap_or_else(|e| {
                    eprintln!("session rejected: {e}");
                    exit(1)
                });
                (session_no - 1, session.query.len(), session.fan_out, handle)
            })
            .collect();
        for (no, tables, fan_out, handle) in handles {
            let done = handle
                .wait_done(Duration::from_secs(600))
                .expect("session completes");
            println!(
                "  s{no:<3} tables={tables:<2} width={fan_out} steps={:<5} frontier={:<3} warm-start={:<3} status={:?}",
                done.steps,
                done.plans.len(),
                handle.absorbed_plans(),
                done.status,
            );
        }
    }

    let stats = service.stats();
    println!("-- service summary");
    println!("  submitted       {}", stats.submitted);
    println!("  completed       {}", stats.completed);
    println!("  rejected        {}", stats.rejected);
    println!("  total steps     {}", stats.total_steps);
    println!(
        "  wide sessions   {} (fan-out sum {})",
        stats.multi_worker_sessions, stats.fan_out_submitted
    );
    println!(
        "  throughput      {:.1} sessions/s",
        stats.throughput_per_sec
    );
    println!("  ttff p50        {}", fmt_ms(stats.ttff_p50));
    println!("  ttff p99        {}", fmt_ms(stats.ttff_p99));
    println!("  queue delay p50 {}", fmt_ms(stats.queue_delay_p50));
    println!("  queue delay p99 {}", fmt_ms(stats.queue_delay_p99));
    println!("  tt90 p50        {}", fmt_ms(stats.tt90_p50));
    println!("  tt90 p99        {}", fmt_ms(stats.tt90_p99));
    if opts.slo.is_enabled() {
        if stats.slo_breached == 0 {
            println!("  slo             ok (all targets holding)");
        } else {
            let mut breached = Vec::new();
            if stats.slo_breached & SLO_BIT_TTFF != 0 {
                breached.push("ttff p99");
            }
            if stats.slo_breached & SLO_BIT_QUEUE_DELAY != 0 {
                breached.push("queue delay p99");
            }
            if stats.slo_breached & SLO_BIT_SHED != 0 {
                breached.push("shed rate");
            }
            println!("  slo             BREACHED: {}", breached.join(", "));
        }
    }
    // Executor and adaptive-exchange visibility: climb batches executed,
    // how many ran on a worker other than their session's (steals +
    // donations), and where the exchange backoff sits now.
    let obs = moqo_obs::ObsSnapshot::capture();
    println!(
        "  exec pool       {} batches, {} steals, {} donations",
        obs.counter("exec_pool.batches"),
        obs.counter("exec_pool.steals"),
        obs.counter("exec_pool.donations"),
    );
    println!(
        "  exchange        backoff level {}, {} merged / {} offered ({} partial merged)",
        obs.counter("exchange.backoff_level"),
        obs.counter("exchange.merged"),
        obs.counter("exchange.offered"),
        obs.counter("exchange.partial_merged"),
    );
    println!(
        "  cache           {} plans / {} entries, hit rate {:.0}% ({} hits / {} lookups)",
        stats.cache.plans,
        stats.cache.entries,
        stats.cache.hit_rate() * 100.0,
        stats.cache.hits,
        stats.cache.lookups,
    );
}

/// Front-door mode: zipfian multi-tenant traffic through the sharded
/// [`FrontDoor`] — coalescing, quotas, and the degradation ladder active.
fn run_front_door(opts: &Options) {
    let spec = TrafficSpec {
        catalog_tables: opts.tables,
        shape: GraphShape::Chain,
        selectivity: SelectivityMethod::Steinbrunn,
        queries: opts.sessions,
        min_query_tables: opts.min_tables.unwrap_or((opts.tables / 2).max(2)),
        max_query_tables: opts.max_tables.unwrap_or(opts.tables),
        seed: opts.seed,
    };
    let templates = opts.templates.min(opts.sessions.max(1));
    let (catalog, sessions) =
        spec.generate_skewed(opts.tenants, opts.tenant_skew, templates, opts.query_skew);
    let metrics = [ResourceMetric::Time, ResourceMetric::Buffer];
    let model = Arc::new(ResourceCostModel::new(Arc::clone(&catalog), &metrics));
    let context = context_fingerprint(catalog.fingerprint(), "resource:time,buffer");
    let budget = match opts.budget_ms {
        Some(ms) => Budget::Time(Duration::from_millis(ms)),
        None => Budget::Iterations(opts.iters),
    };

    println!(
        "serve: front door, {} sessions, {} tenants (skew {}), {} templates (skew {}), {} shards x {} workers",
        opts.sessions, opts.tenants, opts.tenant_skew, templates, opts.query_skew,
        opts.shards, opts.workers,
    );
    print_catalog_summary(&catalog);

    let door = FrontDoor::new(FrontDoorConfig {
        shards: opts.shards,
        shard: ServiceConfig {
            workers: opts.workers,
            slo: opts.slo,
            ..ServiceConfig::default()
        },
        quota: QuotaConfig {
            burst: opts.quota_burst,
            refill_per_sec: opts.quota_refill,
        },
        degradation: DegradationConfig {
            enabled: opts.degrade,
            ..DegradationConfig::default()
        },
    });

    let wave_size = opts.sessions.div_ceil(opts.waves.max(1));
    let mut session_no = 0usize;
    let mut timeouts = 0usize;
    for (wave, chunk) in sessions.chunks(wave_size.max(1)).enumerate() {
        let mut handles = Vec::new();
        let mut wave_shed = 0usize;
        for session in chunk {
            let seed = opts.seed ^ (session_no as u64).wrapping_mul(0x9e37);
            session_no += 1;
            let tables = session.query.tables();
            let request = FrontRequest {
                tenant: session.tenant,
                query: tables,
                context,
                budget,
            };
            let submitted = door.submit(request, |grant| {
                let mut cfg = RmqConfig::seeded(seed);
                // A degraded grant dictates its ε factor; otherwise the
                // explicit --eps (if any) applies.
                if let Some(eps) = grant.eps.or(opts.eps) {
                    cfg.archive = ArchiveConfig::eps_box(EpsFactors::splat(eps));
                }
                Box::new(Rmq::new(Arc::clone(&model), tables, cfg))
            });
            match submitted {
                Ok(admitted) => handles.push(admitted.handle),
                // Shed requests (quota or saturation) are the expected
                // overload outcome here, not an error: count and continue.
                Err(FrontdoorError::QuotaExhausted { .. }) | Err(FrontdoorError::Saturated(_)) => {
                    wave_shed += 1
                }
            }
        }
        let admitted = handles.len();
        for handle in handles {
            if handle.wait_done(Duration::from_secs(600)).is_none() {
                timeouts += 1;
            }
        }
        println!(
            "-- wave {} done: {} admitted, {} shed",
            wave + 1,
            admitted,
            wave_shed
        );
    }
    if timeouts > 0 {
        eprintln!("{timeouts} sessions timed out");
        exit(1);
    }

    let fd = door.stats();
    println!("-- front door summary");
    println!("  offered         {}", fd.offered);
    println!("  admitted        {}", fd.admitted);
    println!(
        "  coalesced       {} ({} per mille)",
        fd.coalesced,
        fd.coalesce_per_mille()
    );
    println!("  degraded        {}", fd.degraded);
    println!(
        "  shed            {} ({} per mille; {} by quota)",
        fd.shed,
        fd.shed_per_mille(),
        fd.quota_rejected
    );
    println!("  degrade level   {}", fd.degrade_level);
    let mut breached_any = 0u64;
    for (i, stats) in door.shard_stats().iter().enumerate() {
        breached_any |= stats.slo_breached;
        println!(
            "  shard {i}         {} done / {} submitted, ttff p99 {}, queue p99 {}, cache hit {:.0}%",
            stats.completed,
            stats.submitted,
            fmt_ms(stats.ttff_p99),
            fmt_ms(stats.queue_delay_p99),
            stats.cache.hit_rate() * 100.0,
        );
    }
    if opts.slo.is_enabled() {
        if breached_any == 0 {
            println!("  slo             ok (all targets holding on every shard)");
        } else {
            let mut breached = Vec::new();
            if breached_any & SLO_BIT_TTFF != 0 {
                breached.push("ttff p99");
            }
            if breached_any & SLO_BIT_QUEUE_DELAY != 0 {
                breached.push("queue delay p99");
            }
            if breached_any & SLO_BIT_SHED != 0 {
                breached.push("shed rate");
            }
            println!("  slo             BREACHED: {}", breached.join(", "));
        }
    }
}

fn print_catalog_summary(catalog: &Catalog) {
    println!(
        "catalog: {} tables, {} join edges",
        catalog.num_tables(),
        catalog.edges().len()
    );
}
