//! Command-line figure runner: regenerates any figure of the paper.
//!
//! ```text
//! Usage: figures [FIGURE...] [--out DIR]
//!
//!   FIGURE   one of fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9,
//!            or `all` (default: all)
//!   --out    also write <id>.txt/.json/.csv reports into DIR
//!
//! Environment:
//!   MOQO_TIME_SCALE   multiply every per-algorithm budget (default 1.0)
//!   MOQO_CASES        override test cases per panel
//!   MOQO_MAX_SIZES    keep only the first k query sizes per figure
//! ```
//!
//! The ASCII panels printed to stdout are the series the paper's figures
//! plot; EXPERIMENTS.md archives runs of this binary.

use std::path::PathBuf;
use std::time::Instant;

use moqo_harness::export::{fig3_to_csv, write_reports};
use moqo_harness::fig3::{run_fig3, Fig3Spec};
use moqo_harness::report::{render_fig3, render_figure};
use moqo_harness::{run_figure, EnvConfig, FigureSpec};

const ALL_FIGURES: [&str; 9] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
];

fn spec_for(id: &str, env: &EnvConfig) -> Option<FigureSpec> {
    Some(match id {
        "fig1" => FigureSpec::fig1(env),
        "fig2" => FigureSpec::fig2(env),
        "fig4" => FigureSpec::fig4(env),
        "fig5" => FigureSpec::fig5(env),
        "fig6" => FigureSpec::fig6(env),
        "fig7" => FigureSpec::fig7(env),
        "fig8" => FigureSpec::fig8(env),
        "fig9" => FigureSpec::fig9(env),
        _ => return None,
    })
}

fn main() {
    let mut figures: Vec<String> = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out requires a directory argument");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: figures [fig1..fig9 | all]... [--out DIR]");
                return;
            }
            "all" => figures.extend(ALL_FIGURES.iter().map(|s| s.to_string())),
            other if ALL_FIGURES.contains(&other) => figures.push(other.to_string()),
            other => {
                eprintln!("unknown figure '{other}' (expected fig1..fig9 or all)");
                std::process::exit(2);
            }
        }
    }
    if figures.is_empty() {
        figures.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
    }
    figures.dedup();

    let env = EnvConfig::from_env();
    eprintln!(
        "env: time_scale={} cases={:?} max_sizes={:?}",
        env.time_scale, env.cases_override, env.max_sizes
    );

    for id in &figures {
        let started = Instant::now();
        if id == "fig3" {
            let mut spec = Fig3Spec::default();
            if let Some(cases) = env.cases_override {
                spec.cases = cases.max(1);
            }
            if let Some(max) = env.max_sizes {
                spec.sizes.truncate(max.max(1));
            }
            let rows = run_fig3(&spec);
            print!("{}", render_fig3(&rows));
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir).expect("create output dir");
                std::fs::write(dir.join("fig3.txt"), render_fig3(&rows)).expect("write fig3.txt");
                std::fs::write(dir.join("fig3.csv"), fig3_to_csv(&rows)).expect("write fig3.csv");
            }
        } else {
            let spec = spec_for(id, &env).expect("validated above");
            let result = run_figure(&spec);
            print!("{}", render_figure(&result));
            if let Some(dir) = &out_dir {
                let paths = write_reports(&result, dir).expect("write reports");
                for p in paths {
                    eprintln!("wrote {}", p.display());
                }
            }
        }
        eprintln!("{id} done in {:.1}s", started.elapsed().as_secs_f64());
    }
}
