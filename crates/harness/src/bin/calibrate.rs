//! One-off calibration of per-algorithm iteration costs (informs budgets).
use std::time::Instant;

use moqo_core::optimizer::{drive, Budget, NullObserver};
use moqo_cost::{ResourceCostModel, ResourceMetric};
use moqo_harness::AlgorithmKind;
use moqo_workload::{GraphShape, SelectivityMethod, WorkloadSpec};

fn main() {
    for (n, shape) in [
        (10, GraphShape::Chain),
        (25, GraphShape::Star),
        (50, GraphShape::Cycle),
        (100, GraphShape::Star),
    ] {
        let (catalog, query) = WorkloadSpec {
            tables: n,
            shape,
            selectivity: SelectivityMethod::Steinbrunn,
            seed: 1,
        }
        .generate();
        let model =
            ResourceCostModel::new(catalog, &[ResourceMetric::Time, ResourceMetric::Buffer]);
        println!("== n={n} {:?} ==", shape);
        for kind in [
            AlgorithmKind::DpInfinity,
            AlgorithmKind::Dp2,
            AlgorithmKind::Rmq,
            AlgorithmKind::Ii,
            AlgorithmKind::NsgaII,
            AlgorithmKind::Sa,
        ] {
            let mut opt = kind.build(&model, query.tables(), 7);
            let t0 = Instant::now();
            let stats = drive(
                &mut *opt,
                Budget::Time(std::time::Duration::from_millis(1000)),
                &mut NullObserver,
            );
            let f = opt.frontier();
            println!(
                "  {:<13} steps={:<8} exhausted={} frontier={} elapsed={:?}",
                kind.name(),
                stats.steps,
                stats.exhausted,
                f.len(),
                t0.elapsed()
            );
        }
    }
}
