//! `optimize` — multi-objective query optimization from the command line.
//!
//! ```text
//! Usage: optimize [OPTIONS]
//!
//!   --catalog FILE     catalog JSON (CatalogSpec format); omit for a demo
//!   --model NAME       resource (default) | cloud | aqp | energy
//!   --metrics LIST     resource model only: comma list of time,buffer,disk
//!   --budget-ms N      optimization budget (default 500)
//!   --parallel N       fan the query out over N worker threads (default 1)
//!   --seed N           RNG seed (default 42)
//!   --weights LIST     select a plan: comma list of per-metric weights
//!   --bound K=V        upper bound on metric index K (repeatable)
//!   --scatter          also draw the ASCII frontier scatter plot
//!   --trace            enable the observability journal; print the event
//!                      tail and counter dump after the run
//!   --trace-out FILE   record causal spans and write them as Chrome
//!                      trace-event JSON (load in Perfetto / chrome://tracing)
//! ```
//!
//! Example catalog file:
//!
//! ```json
//! {
//!   "tables": [
//!     {"name": "orders",    "rows": 1000000},
//!     {"name": "customers", "rows": 50000}
//!   ],
//!   "joins": [
//!     {"a": 0, "b": 1, "selectivity": 0.00002}
//!   ]
//! }
//! ```

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use moqo_catalog::{Catalog, CatalogSpec};
use moqo_core::model::CostModel;
use moqo_core::optimizer::{drive, Budget, NullObserver};
use moqo_core::plan::PlanRef;
use moqo_core::rmq::{Rmq, RmqConfig};
use moqo_cost::{AqpCostModel, CloudCostModel, EnergyCostModel, ResourceCostModel, ResourceMetric};
use moqo_metrics::{frontier_table, scatter_plans, Preferences, ScatterConfig};
use moqo_parallel::{ParRmq, ParRmqConfig};
use moqo_workload::WorkloadSpec;

struct Options {
    catalog: Option<String>,
    model: String,
    metrics: Vec<ResourceMetric>,
    budget: Duration,
    parallel: usize,
    seed: u64,
    weights: Option<Vec<f64>>,
    bounds: Vec<(usize, f64)>,
    scatter: bool,
    trace: bool,
    trace_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: optimize [--catalog FILE] [--model resource|cloud|aqp|energy] \
         [--metrics time,buffer,disk] [--budget-ms N] [--parallel N] [--seed N] \
         [--weights w0,w1,..] [--bound K=V]... [--scatter] [--trace] [--trace-out FILE]"
    );
    exit(2)
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(1)
}

fn parse_args() -> Options {
    let mut opts = Options {
        catalog: None,
        model: "resource".to_string(),
        metrics: vec![ResourceMetric::Time, ResourceMetric::Buffer],
        budget: Duration::from_millis(500),
        parallel: 1,
        seed: 42,
        weights: None,
        bounds: Vec::new(),
        scatter: false,
        trace: false,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--catalog" => opts.catalog = Some(value("--catalog")),
            "--model" => opts.model = value("--model"),
            "--metrics" => {
                opts.metrics = value("--metrics")
                    .split(',')
                    .map(|m| match m.trim() {
                        "time" => ResourceMetric::Time,
                        "buffer" => ResourceMetric::Buffer,
                        "disk" => ResourceMetric::Disk,
                        other => fail(&format!("unknown metric '{other}'")),
                    })
                    .collect();
            }
            "--budget-ms" => {
                let ms: u64 = value("--budget-ms").parse().unwrap_or_else(|_| usage());
                opts.budget = Duration::from_millis(ms);
            }
            "--parallel" => {
                opts.parallel = value("--parallel").parse().unwrap_or_else(|_| usage());
                if opts.parallel == 0 {
                    fail("--parallel needs at least one worker");
                }
            }
            "--seed" => opts.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--weights" => {
                opts.weights = Some(
                    value("--weights")
                        .split(',')
                        .map(|w| w.trim().parse().unwrap_or_else(|_| usage()))
                        .collect(),
                );
            }
            "--bound" => {
                let spec = value("--bound");
                let Some((k, v)) = spec.split_once('=') else {
                    usage()
                };
                let k: usize = k.parse().unwrap_or_else(|_| usage());
                let v: f64 = v.parse().unwrap_or_else(|_| usage());
                opts.bounds.push((k, v));
            }
            "--scatter" => opts.scatter = true,
            "--trace" => opts.trace = true,
            "--trace-out" => opts.trace_out = Some(value("--trace-out")),
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    opts
}

fn load_catalog(opts: &Options) -> Arc<Catalog> {
    match &opts.catalog {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
            let spec: CatalogSpec = serde_json::from_str(&text)
                .unwrap_or_else(|e| fail(&format!("invalid catalog JSON: {e}")));
            Arc::new(
                spec.build()
                    .unwrap_or_else(|e| fail(&format!("invalid catalog: {e}"))),
            )
        }
        None => {
            eprintln!("(no --catalog given: using a demo 8-table chain workload)");
            WorkloadSpec::chain(8, opts.seed).generate().0
        }
    }
}

fn optimize_and_report<M: CostModel + Clone + Send + 'static>(model: &M, opts: &Options) {
    use moqo_obs::spans;
    let query = moqo_core::TableSet::prefix(model.num_tables());
    // Root the whole run in one Session span: fanned-out climb batches
    // inherit it as their parent through the ambient span the executor
    // propagates across worker threads and steals.
    let mut session = spans::begin(spans::SpanKind::Session, spans::SpanId::NONE);
    let prev = session.as_ref().map(|s| spans::set_current(s.id()));
    let mut frontier: Vec<PlanRef> = if opts.parallel > 1 {
        // Intra-query fan-out: each climb batch owns a model clone (cheap
        // — the catalog inside is Arc-shared) so batches can run on the
        // shared executor.
        let mut par = ParRmq::new(
            model.clone(),
            query,
            ParRmqConfig::seeded(opts.seed, opts.parallel),
        );
        let run = par.optimize(Budget::Time(opts.budget));
        let ex = run.exchange;
        println!(
            "{} iterations in {:?} on {} workers ({} exchange epochs, {} plans merged); {} Pareto plan(s)\n",
            run.iterations,
            run.elapsed,
            opts.parallel,
            ex.epochs,
            ex.merged,
            par.frontier().len()
        );
        par.frontier()
    } else {
        let mut rmq = Rmq::new(model, query, RmqConfig::seeded(opts.seed));
        let stats = drive(&mut rmq, Budget::Time(opts.budget), &mut NullObserver);
        println!(
            "{} iterations in {:?}; {} Pareto plan(s)\n",
            stats.steps,
            stats.elapsed,
            rmq.frontier().len()
        );
        rmq.frontier()
    };
    if let Some(prev) = prev {
        spans::set_current(prev);
    }
    if let Some(s) = session.as_mut() {
        s.set_arg(frontier.len() as u64);
    }
    spans::finish(session);
    frontier.sort_by(|a, b| a.cost()[0].total_cmp(&b.cost()[0]));
    println!("{}", frontier_table(&frontier, model));
    if opts.scatter && model.dim() >= 2 {
        println!(
            "{}",
            scatter_plans(&frontier, model, &ScatterConfig::default())
        );
    }
    if let Some(weights) = &opts.weights {
        if weights.len() != model.dim() {
            fail(&format!(
                "--weights needs {} components for this model",
                model.dim()
            ));
        }
        let mut prefs = Preferences::weighted(weights);
        for &(k, v) in &opts.bounds {
            if k >= model.dim() {
                fail(&format!("--bound index {k} out of range"));
            }
            prefs = prefs.with_bound(k, v);
        }
        match prefs.select(&frontier) {
            Ok(plan) => {
                println!("selected plan (weights {weights:?}):");
                println!("  {}", plan.display(model));
                for k in 0..model.dim() {
                    println!("  {:>12}: {:.3}", model.metric_name(k), plan.cost()[k]);
                }
            }
            Err(e) => fail(&format!("plan selection failed: {e}")),
        }
    }
}

/// Prints the observability trace: the journal's event tail (human
/// rendering) followed by the nonzero counters and populated histograms.
fn report_trace() {
    let snap = moqo_obs::ObsSnapshot::capture();
    println!("\n--- trace: event tail ---");
    let events = moqo_obs::journal::events();
    if events.is_empty() {
        println!("(no events recorded)");
    }
    for event in &events {
        println!("{event}");
    }
    println!("--- trace: metrics ---");
    for (name, value) in &snap.counters {
        if *value > 0 {
            println!("{name} = {value}");
        }
    }
    for (name, h) in &snap.histograms {
        if h.count > 0 {
            println!(
                "{name}: count {} mean {:.1} p50 {} p99 {} max {}",
                h.count,
                h.mean(),
                h.p50,
                h.p99,
                h.max
            );
        }
    }
}

/// Drains the span ring and writes it as Chrome trace-event JSON.
fn write_trace(path: &str) {
    use moqo_obs::spans;
    spans::disable();
    let records = spans::drain();
    let json = spans::to_chrome_trace(&records);
    std::fs::write(path, json)
        .unwrap_or_else(|e| fail(&format!("cannot write trace to {path}: {e}")));
    println!(
        "\nwrote {} span(s) to {path} (Chrome trace-event JSON)",
        records.len()
    );
}

fn main() {
    let opts = parse_args();
    if opts.trace {
        moqo_obs::journal::enable_all(moqo_obs::journal::Level::Debug);
    }
    if opts.trace_out.is_some() {
        moqo_obs::spans::enable();
    }
    let catalog = load_catalog(&opts);
    println!("{catalog}");
    match opts.model.as_str() {
        "resource" => {
            let model = ResourceCostModel::new(catalog, &opts.metrics);
            optimize_and_report(&model, &opts);
        }
        "cloud" => optimize_and_report(&CloudCostModel::new(catalog), &opts),
        "aqp" => optimize_and_report(&AqpCostModel::new(catalog), &opts),
        "energy" => optimize_and_report(&EnergyCostModel::new(catalog), &opts),
        other => fail(&format!("unknown model '{other}'")),
    }
    if opts.trace {
        report_trace();
    }
    if let Some(path) = &opts.trace_out {
        write_trace(path);
    }
}
