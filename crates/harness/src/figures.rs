//! Per-figure experiment specifications.
//!
//! One [`FigureSpec`] per figure of the paper. Budgets are pre-scaled from
//! the paper's wall-clock budgets (3 s for Figures 1/2/4/5, 30 s for
//! Figures 6–9) — a Rust iteration costs far less than the paper's Java 1.7
//! iteration, so the same qualitative regime (how many iterations each
//! algorithm completes, which DP configurations finish) is reached much
//! earlier. `MOQO_TIME_SCALE` rescales all budgets; EXPERIMENTS.md records
//! the scale used for the archived runs.

use std::time::Duration;

use moqo_workload::{GraphShape, SelectivityMethod};

use crate::algorithms::AlgorithmKind;
use crate::EnvConfig;

/// How the reference frontier of a test case is obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReferenceKind {
    /// Union of all algorithms' outputs over the whole run (§6.1).
    UnionOfAll,
    /// Exact/near-exact frontier from a DP run to completion (Figures 8–9:
    /// DP with `α = 1.01`).
    ExactDp,
}

/// Specification of one figure's experiment grid.
#[derive(Clone, Debug)]
pub struct FigureSpec {
    /// Figure identifier, e.g. `"fig1"`.
    pub id: &'static str,
    /// Human-readable description printed above the results.
    pub title: &'static str,
    /// Join graph shapes (panel rows).
    pub shapes: Vec<GraphShape>,
    /// Query sizes in tables (panel columns).
    pub sizes: Vec<usize>,
    /// Number of cost metrics `l`.
    pub metrics: usize,
    /// Selectivity generation method.
    pub selectivity: SelectivityMethod,
    /// Wall-clock budget per algorithm per test case.
    pub budget: Duration,
    /// Number of measurement checkpoints over the budget.
    pub checkpoints: usize,
    /// Test cases per panel (medians are taken over these).
    pub cases: usize,
    /// Competitor set.
    pub algorithms: Vec<AlgorithmKind>,
    /// Reference-frontier construction.
    pub reference: ReferenceKind,
    /// Display cap on α (Figures 6/7 restrict to `[1, 10^10]`, 8/9 to
    /// `[1, 2]`); values above are reported as `>cap`.
    pub alpha_cap: Option<f64>,
    /// Base seed.
    pub seed: u64,
}

impl FigureSpec {
    fn apply(mut self, env: &EnvConfig) -> Self {
        self.budget =
            Duration::from_secs_f64((self.budget.as_secs_f64() * env.time_scale).max(0.001));
        if let Some(cases) = env.cases_override {
            self.cases = cases.max(1);
        }
        if let Some(max) = env.max_sizes {
            self.sizes.truncate(max.max(1));
        }
        self
    }

    /// Figure 1: two metrics, Steinbrunn selectivities, 10–100 tables.
    pub fn fig1(env: &EnvConfig) -> Self {
        FigureSpec {
            id: "fig1",
            title: "Median approximation error, 2 cost metrics (paper Fig. 1; 3s budget scaled)",
            shapes: GraphShape::PAPER.to_vec(),
            sizes: vec![10, 25, 50, 75, 100],
            metrics: 2,
            selectivity: SelectivityMethod::Steinbrunn,
            budget: Duration::from_millis(1000),
            checkpoints: 8,
            cases: 2,
            algorithms: AlgorithmKind::PAPER_SET.to_vec(),
            reference: ReferenceKind::UnionOfAll,
            alpha_cap: None,
            seed: 0x0F16_0001,
        }
        .apply(env)
    }

    /// Figure 2: three metrics, Steinbrunn selectivities.
    pub fn fig2(env: &EnvConfig) -> Self {
        FigureSpec {
            id: "fig2",
            title: "Median approximation error, 3 cost metrics (paper Fig. 2; 3s budget scaled)",
            metrics: 3,
            seed: 0x0F16_0002,
            ..Self::fig1(&EnvConfig::fixed(1.0, None))
        }
        .apply(env)
    }

    /// Figure 4: two metrics, MinMax selectivities, 25–100 tables.
    pub fn fig4(env: &EnvConfig) -> Self {
        FigureSpec {
            id: "fig4",
            title: "Median approximation error, 2 metrics, MinMax joins (paper Fig. 4)",
            sizes: vec![25, 50, 75, 100],
            selectivity: SelectivityMethod::MinMax,
            budget: Duration::from_millis(700),
            seed: 0x0F16_0004,
            ..Self::fig1(&EnvConfig::fixed(1.0, None))
        }
        .apply(env)
    }

    /// Figure 5: three metrics, MinMax selectivities.
    pub fn fig5(env: &EnvConfig) -> Self {
        FigureSpec {
            id: "fig5",
            title: "Median approximation error, 3 metrics, MinMax joins (paper Fig. 5)",
            metrics: 3,
            seed: 0x0F16_0005,
            ..Self::fig4(&EnvConfig::fixed(1.0, None))
        }
        .apply(env)
    }

    /// Figure 6: long budget, two metrics, 50/100 tables, α capped at 1e10.
    pub fn fig6(env: &EnvConfig) -> Self {
        FigureSpec {
            id: "fig6",
            title: "Median error in [1,1e10], 2 metrics, long budget (paper Fig. 6; 30s scaled)",
            shapes: GraphShape::PAPER.to_vec(),
            sizes: vec![50, 100],
            metrics: 2,
            selectivity: SelectivityMethod::Steinbrunn,
            budget: Duration::from_millis(2000),
            checkpoints: 10,
            cases: 2,
            algorithms: AlgorithmKind::PAPER_SET.to_vec(),
            reference: ReferenceKind::UnionOfAll,
            alpha_cap: Some(1e10),
            seed: 0x0F16_0006,
        }
        .apply(env)
    }

    /// Figure 7: long budget, three metrics.
    pub fn fig7(env: &EnvConfig) -> Self {
        FigureSpec {
            id: "fig7",
            title: "Median error in [1,1e10], 3 metrics, long budget (paper Fig. 7; 30s scaled)",
            metrics: 3,
            seed: 0x0F16_0007,
            ..Self::fig6(&EnvConfig::fixed(1.0, None))
        }
        .apply(env)
    }

    /// Figure 8: small queries, precise reference (DP α=1.01), 2 metrics.
    pub fn fig8(env: &EnvConfig) -> Self {
        FigureSpec {
            id: "fig8",
            title: "Precise error in [1,2], small queries, 2 metrics (paper Fig. 8; 30s scaled)",
            shapes: GraphShape::PAPER.to_vec(),
            sizes: vec![4, 8],
            metrics: 2,
            selectivity: SelectivityMethod::Steinbrunn,
            budget: Duration::from_millis(700),
            checkpoints: 8,
            cases: 3,
            algorithms: AlgorithmKind::PAPER_SET.to_vec(),
            reference: ReferenceKind::ExactDp,
            alpha_cap: Some(2.0),
            seed: 0x0F16_0008,
        }
        .apply(env)
    }

    /// Figure 9: small queries, precise reference, 3 metrics.
    pub fn fig9(env: &EnvConfig) -> Self {
        FigureSpec {
            id: "fig9",
            title: "Precise error in [1,2], small queries, 3 metrics (paper Fig. 9; 30s scaled)",
            metrics: 3,
            seed: 0x0F16_0009,
            ..Self::fig8(&EnvConfig::fixed(1.0, None))
        }
        .apply(env)
    }

    /// A tiny configuration for smoke tests and doc examples.
    pub fn smoke() -> Self {
        FigureSpec {
            id: "smoke",
            title: "Smoke-test figure",
            shapes: vec![GraphShape::Chain],
            sizes: vec![5],
            metrics: 2,
            selectivity: SelectivityMethod::Steinbrunn,
            budget: Duration::from_millis(30),
            checkpoints: 3,
            cases: 2,
            algorithms: vec![AlgorithmKind::Ii, AlgorithmKind::Rmq],
            reference: ReferenceKind::UnionOfAll,
            alpha_cap: None,
            seed: 0x0057_707e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_specs_follow_the_paper_grid() {
        let env = EnvConfig::fixed(1.0, None);
        let f1 = FigureSpec::fig1(&env);
        assert_eq!(f1.shapes.len(), 3);
        assert_eq!(f1.sizes, vec![10, 25, 50, 75, 100]);
        assert_eq!(f1.metrics, 2);
        assert_eq!(f1.algorithms.len(), 8);
        let f2 = FigureSpec::fig2(&env);
        assert_eq!(f2.metrics, 3);
        assert_eq!(f2.sizes, f1.sizes);
        let f4 = FigureSpec::fig4(&env);
        assert_eq!(f4.selectivity, SelectivityMethod::MinMax);
        assert_eq!(f4.sizes, vec![25, 50, 75, 100]);
        let f6 = FigureSpec::fig6(&env);
        assert_eq!(f6.sizes, vec![50, 100]);
        assert_eq!(f6.alpha_cap, Some(1e10));
        let f8 = FigureSpec::fig8(&env);
        assert_eq!(f8.sizes, vec![4, 8]);
        assert_eq!(f8.reference, ReferenceKind::ExactDp);
        assert_eq!(f8.alpha_cap, Some(2.0));
        let f9 = FigureSpec::fig9(&env);
        assert_eq!(f9.metrics, 3);
    }

    #[test]
    fn env_scaling_applies() {
        let env = EnvConfig::fixed(0.5, Some(7));
        let f1 = FigureSpec::fig1(&env);
        assert_eq!(f1.budget, Duration::from_millis(500));
        assert_eq!(f1.cases, 7);
        let env = EnvConfig {
            max_sizes: Some(2),
            ..EnvConfig::fixed(1.0, None)
        };
        assert_eq!(FigureSpec::fig1(&env).sizes, vec![10, 25]);
    }

    #[test]
    fn distinct_seeds_per_figure() {
        let env = EnvConfig::fixed(1.0, None);
        let seeds = [
            FigureSpec::fig1(&env).seed,
            FigureSpec::fig2(&env).seed,
            FigureSpec::fig4(&env).seed,
            FigureSpec::fig5(&env).seed,
            FigureSpec::fig6(&env).seed,
            FigureSpec::fig7(&env).seed,
            FigureSpec::fig8(&env).seed,
            FigureSpec::fig9(&env).seed,
        ];
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len());
    }
}
