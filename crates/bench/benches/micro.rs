//! Criterion micro-benchmarks of the optimizer's hot paths: random plan
//! generation (Lemma 1: O(n)), one `ParetoStep` (Lemma 2: O(n)), full
//! climbs (fast vs. naive — the §4.2 optimization), frontier approximation
//! (Theorem 4), the ε-indicator, and one NSGA-II generation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use moqo_baselines::nsga2::{Nsga2, Nsga2Params};
use moqo_bench::resource_model as model_for;
use moqo_core::cache::PlanCache;
use moqo_core::climb::{naive_climb, pareto_climb, pareto_step, ClimbConfig};
use moqo_core::cost::CostVector;
use moqo_core::frontier::approximate_frontiers;
use moqo_core::mutations::MutationSet;
use moqo_core::optimizer::Optimizer;
use moqo_core::pareto::PrunePolicy;
use moqo_core::random_plan::random_plan;
use moqo_metrics::epsilon_indicator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_random_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_plan");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    for n in [10usize, 50, 100] {
        let (model, query) = model_for(n);
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(random_plan(&model, query, &mut rng)))
        });
    }
    group.finish();
}

fn bench_pareto_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_step");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for n in [10usize, 50, 100] {
        let (model, query) = model_for(n);
        let mut rng = StdRng::seed_from_u64(2);
        let plan = random_plan(&model, query, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(pareto_step(
                    &plan,
                    &model,
                    PrunePolicy::OnePerFormat,
                    MutationSet::Bushy,
                ))
            })
        });
    }
    group.finish();
}

fn bench_climb_fast_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("climb");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let cfg = ClimbConfig::default();
    for n in [10usize, 25] {
        let (model, query) = model_for(n);
        group.bench_with_input(BenchmarkId::new("fast", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let p = random_plan(&model, query, &mut rng);
                black_box(pareto_climb(p, &model, &cfg))
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let p = random_plan(&model, query, &mut rng);
                black_box(naive_climb(p, &model, &cfg))
            })
        });
    }
    group.finish();
}

fn bench_frontier_approximation(c: &mut Criterion) {
    let mut group = c.benchmark_group("approximate_frontiers");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for n in [10usize, 50] {
        let (model, query) = model_for(n);
        let mut rng = StdRng::seed_from_u64(4);
        let plan = random_plan(&model, query, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cache = PlanCache::new();
                approximate_frontiers(
                    &plan,
                    &model,
                    &mut cache,
                    &moqo_core::Admission::approx(2.0),
                );
                black_box(cache.total_plans())
            })
        });
    }
    group.finish();
}

fn bench_epsilon_indicator(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut mk = |k: usize| -> Vec<CostVector> {
        (0..k)
            .map(|_| CostVector::new(&[rng.random::<f64>() + 0.1, rng.random::<f64>() + 0.1]))
            .collect()
    };
    let reference = mk(100);
    let approx = mk(50);
    c.bench_function("epsilon_indicator_100x50", |b| {
        b.iter(|| black_box(epsilon_indicator(&reference, &approx)))
    });
}

fn bench_nsga2_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsga2_generation");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    let (model, query) = model_for(25);
    group.bench_function("pop200_n25", |b| {
        let mut ga = Nsga2::with_params(&model, query, 1, Nsga2Params::default());
        b.iter(|| {
            ga.step();
            black_box(ga.generations())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_random_plan,
    bench_pareto_step,
    bench_climb_fast_vs_naive,
    bench_frontier_approximation,
    bench_epsilon_indicator,
    bench_nsga2_generation
);
criterion_main!(benches);
