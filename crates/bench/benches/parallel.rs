//! Thread-scaling micro-benchmarks of the intra-query parallel optimizer:
//! `ParRmq` live-mode rounds at 1/2/4/8 workers, plus the exchange
//! machinery in isolation (publishing a frontier into a `SharedFrontier`).
//!
//! The deterministic perf-baseline harness (`cargo run -p moqo-bench --bin
//! harness`) measures the same fixture with the same seeds and archives
//! iters/s + hypervolume per thread count in `BENCH_rmq.json` (schema v3);
//! this target exists for interactive `cargo bench` exploration.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use moqo_bench::resource_model;
use moqo_core::optimizer::Budget;
use moqo_core::rmq::{Rmq, RmqConfig};
use moqo_parallel::{ParRmq, ParRmqConfig, SharedFrontier};

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_rmq_scaling");
    group
        .measurement_time(Duration::from_secs(4))
        .sample_size(10);
    let (model, query) = resource_model(20);
    let model = Arc::new(model);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("live_40_iters", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let mut par =
                        ParRmq::new(Arc::clone(&model), query, ParRmqConfig::seeded(42, t));
                    par.optimize(Budget::Iterations(40));
                    black_box(par.frontier().len())
                })
            },
        );
    }
    group.finish();
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_frontier");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    // A worker frontier to publish, produced once.
    let (model, query) = resource_model(12);
    let mut rmq = Rmq::new(&model, query, RmqConfig::seeded(7));
    for _ in 0..30 {
        rmq.iterate();
    }
    let set = rmq.frontier_set().expect("frontier exists");
    group.bench_function("first_publish", |b| {
        b.iter(|| {
            let shared = SharedFrontier::new();
            black_box(shared.publish(rmq.arena(), set))
        })
    });
    group.bench_function("duplicate_publish", |b| {
        // Steady state: the frontier is already merged, so a re-publish is
        // pure dominance rejections — the exchange overhead a worker pays
        // when it has found nothing new.
        let shared = SharedFrontier::new();
        shared.publish(rmq.arena(), set);
        b.iter(|| black_box(shared.publish(rmq.arena(), set)))
    });
    group.bench_function("snapshot_read", |b| {
        let shared = SharedFrontier::new();
        shared.publish(rmq.arena(), set);
        b.iter(|| black_box(shared.snapshot().plans.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_exchange);
criterion_main!(benches);
