//! Ablations of the design choices DESIGN.md calls out (paper §4.2/§4.3):
//!
//! 1. **Fast vs. naive climbing** — the recursive multi-mutation
//!    `ParetoStep` against single-mutation climbing with full-plan
//!    recosting (the paper reports the fast variant reaching local optima
//!    over an order of magnitude faster at 50 tables).
//! 2. **Plan cache on/off** — `ApproximateFrontiers` with a shared
//!    cross-iteration cache vs. per-iteration private caches.
//! 3. **α schedule** — the paper's coarse-to-fine `25 · 0.99^⌊i/25⌋`
//!    against fixed-fine (α = 1.05) and fixed-coarse (α = 25).
//! 4. **Exhaustive vs. sampled neighbors** — §4.2: "we initially
//!    experimented with random sampling of neighbor plans which led to
//!    poor performance".

use std::time::{Duration, Instant};

use moqo_core::archive::ArchiveConfig;
use moqo_core::climb::{naive_climb, pareto_climb, ClimbConfig};
use moqo_core::mutations::random_neighbor;
use moqo_core::optimizer::{drive, Budget, NullObserver};
use moqo_core::plan::PlanRef;
use moqo_core::random_plan::random_plan;
use moqo_core::rmq::{Rmq, RmqConfig};
use moqo_cost::{ResourceCostModel, ResourceMetric};
use moqo_metrics::ReferenceFrontier;
use moqo_workload::{GraphShape, SelectivityMethod, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model_for(n: usize, seed: u64) -> (ResourceCostModel, moqo_core::TableSet) {
    let (catalog, query) = WorkloadSpec {
        tables: n,
        shape: GraphShape::Cycle,
        selectivity: SelectivityMethod::Steinbrunn,
        seed,
    }
    .generate();
    (
        ResourceCostModel::new(
            catalog,
            &[
                ResourceMetric::Time,
                ResourceMetric::Buffer,
                ResourceMetric::Disk,
            ],
        ),
        query.tables(),
    )
}

fn ablation_climb() {
    println!("\n== Ablation 1: fast (multi-mutation) vs naive climbing ==");
    println!(
        "{:>7} | {:>12} {:>10} | {:>12} {:>10} | {:>8}",
        "tables", "fast time", "steps", "naive time", "steps", "speedup"
    );
    for n in [10usize, 25, 50] {
        let (model, query) = model_for(n, 3);
        let starts: Vec<PlanRef> = {
            let mut rng = StdRng::seed_from_u64(17);
            (0..8)
                .map(|_| random_plan(&model, query, &mut rng))
                .collect()
        };
        let cfg = ClimbConfig::default();
        let t0 = Instant::now();
        let fast_steps: usize = starts
            .iter()
            .map(|p| pareto_climb(p.clone(), &model, &cfg).1.steps)
            .sum();
        let fast_time = t0.elapsed();
        let t1 = Instant::now();
        let naive_steps: usize = starts
            .iter()
            .map(|p| naive_climb(p.clone(), &model, &cfg).1.steps)
            .sum();
        let naive_time = t1.elapsed();
        println!(
            "{:>7} | {:>12?} {:>10} | {:>12?} {:>10} | {:>7.1}x",
            n,
            fast_time,
            fast_steps,
            naive_time,
            naive_steps,
            naive_time.as_secs_f64() / fast_time.as_secs_f64().max(1e-9)
        );
    }
}

fn rmq_alpha_with(cfg: RmqConfig, n: usize, budget: Duration) -> f64 {
    let (model, query) = model_for(n, 5);
    let mut variant = Rmq::new(&model, query, cfg);
    drive(&mut variant, Budget::Time(budget), &mut NullObserver);
    // Reference: a long exact-pruning run of default RMQ + this variant.
    let mut reference_rmq = Rmq::new(
        &model,
        query,
        RmqConfig {
            archive: ArchiveConfig::fixed(1.0),
            ..RmqConfig::seeded(99)
        },
    );
    drive(
        &mut reference_rmq,
        Budget::Time(budget * 4),
        &mut NullObserver,
    );
    let variant_frontier = variant.frontier();
    let reference = ReferenceFrontier::from_plan_sets([
        reference_rmq.frontier().as_slice(),
        variant_frontier.as_slice(),
    ]);
    reference.alpha_of_plans(&variant_frontier)
}

fn ablation_cache() {
    println!("\n== Ablation 2: plan cache shared across iterations vs private ==");
    println!(
        "{:>7} | {:>14} | {:>14}",
        "tables", "cache ON alpha", "cache OFF alpha"
    );
    for n in [10usize, 25] {
        let budget = Duration::from_millis(250);
        let on = rmq_alpha_with(RmqConfig::seeded(7), n, budget);
        let off = rmq_alpha_with(
            RmqConfig {
                share_cache: false,
                ..RmqConfig::seeded(7)
            },
            n,
            budget,
        );
        println!("{n:>7} | {on:>14.3} | {off:>14.3}");
    }
}

fn ablation_alpha_schedule() {
    println!("\n== Ablation 3: alpha schedule (paper vs fixed fine vs fixed coarse) ==");
    println!(
        "{:>7} | {:>12} | {:>12} | {:>12}",
        "tables", "paper", "fixed 1.05", "fixed 25"
    );
    for n in [10usize, 25] {
        let budget = Duration::from_millis(250);
        let paper = rmq_alpha_with(RmqConfig::seeded(11), n, budget);
        let fine = rmq_alpha_with(
            RmqConfig {
                archive: ArchiveConfig::fixed(1.05),
                ..RmqConfig::seeded(11)
            },
            n,
            budget,
        );
        let coarse = rmq_alpha_with(
            RmqConfig {
                archive: ArchiveConfig::fixed(25.0),
                ..RmqConfig::seeded(11)
            },
            n,
            budget,
        );
        println!("{n:>7} | {paper:>12.3} | {fine:>12.3} | {coarse:>12.3}");
    }
}

/// Climbing with randomly sampled neighbors instead of the exhaustive
/// `ParetoStep` (the strategy §4.2 reports as ineffective): proposes up to
/// `patience` random neighbors per step and moves to the first dominating
/// one.
fn sampled_climb(
    start: PlanRef,
    model: &ResourceCostModel,
    rng: &mut StdRng,
    patience: usize,
) -> (PlanRef, usize) {
    let mut current = start;
    let mut steps = 0usize;
    'outer: loop {
        for _ in 0..patience {
            if let Some(nb) = random_neighbor(&current, model, rng) {
                if nb.cost().strictly_dominates(current.cost()) {
                    current = nb;
                    steps += 1;
                    continue 'outer;
                }
            }
        }
        return (current, steps);
    }
}

fn ablation_sampling() {
    println!("\n== Ablation 4: exhaustive ParetoStep vs sampled-neighbor climbing ==");
    println!(
        "{:>7} | {:>22} | {:>22}",
        "tables", "exhaustive final cost", "sampled final cost"
    );
    for n in [10usize, 25] {
        let (model, query) = model_for(n, 13);
        let mut rng = StdRng::seed_from_u64(23);
        let mut exhaustive_mean = 0.0;
        let mut sampled_mean = 0.0;
        let runs = 6;
        for _ in 0..runs {
            let start = random_plan(&model, query, &mut rng);
            let (e, _) = pareto_climb(start.clone(), &model, &ClimbConfig::default());
            let (s, _) = sampled_climb(start, &model, &mut rng, 3 * n);
            exhaustive_mean += e.cost().mean() / runs as f64;
            sampled_mean += s.cost().mean() / runs as f64;
        }
        println!("{n:>7} | {exhaustive_mean:>22.1} | {sampled_mean:>22.1}");
    }
    println!("(lower mean cost of reached local optima is better)");
}

fn ablation_plan_space() {
    println!("\n== Ablation 5: bushy vs left-deep random plan space (§4.1 note) ==");
    println!("{:>7} | {:>12} | {:>12}", "tables", "bushy", "left-deep");
    for n in [10usize, 25] {
        let budget = Duration::from_millis(250);
        let bushy = rmq_alpha_with(RmqConfig::seeded(29), n, budget);
        let left = rmq_alpha_with(
            RmqConfig {
                space: moqo_core::rmq::PlanSpace::LeftDeep,
                ..RmqConfig::seeded(29)
            },
            n,
            budget,
        );
        println!("{n:>7} | {bushy:>12.3} | {left:>12.3}");
    }
    println!("(left-deep restricts the generator AND the climbing rule set)");
}

fn main() {
    println!("moqo ablation suite (paper §4.2/§4.3 design choices)");
    ablation_climb();
    ablation_cache();
    ablation_alpha_schedule();
    ablation_sampling();
    ablation_plan_space();
}
