//! Micro-benchmarks of the Pareto-pruning kernel: raw dominance relations,
//! bucketed vs. linear-scan `ParetoSet` insertion (climb and approximate
//! pruning), and one scratch-reusing `ParetoStep`.
//!
//! The bucketed-vs-linear groups quantify the PR-2 hot-path overhaul: the
//! format-bucketed, aggregate-key-filtered `ParetoSet` against the flat
//! `Vec<PlanRef>` reference (`LinearParetoSet`) over identical candidate
//! streams. The deterministic perf-baseline harness
//! (`cargo run -p moqo-bench --bin harness`) measures the same kernels and
//! archives the numbers in `BENCH_rmq.json`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use moqo_bench::{candidate_stream, cost_pairs, resource_model};
use moqo_core::archive::Admission;
use moqo_core::climb::{pareto_step_with, StepScratch};
use moqo_core::mutations::MutationSet;
use moqo_core::pareto::{LinearParetoSet, ParetoSet, PrunePolicy};
use moqo_core::random_plan::random_plan;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dominance(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominance");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(50);
    for dim in [2usize, 4, 6] {
        let pairs = cost_pairs(1024, dim, 11);
        group.bench_with_input(BenchmarkId::new("strict", dim), &dim, |b, _| {
            b.iter(|| {
                let mut n = 0usize;
                for (a, bb) in &pairs {
                    n += usize::from(a.strictly_dominates(bb));
                }
                black_box(n)
            })
        });
        group.bench_with_input(BenchmarkId::new("approx2", dim), &dim, |b, _| {
            b.iter(|| {
                let mut n = 0usize;
                for (a, bb) in &pairs {
                    n += usize::from(a.approx_dominates(bb, 2.0));
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

fn bench_insert_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_approx");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    // Small-frontier, large-frontier, and the harness-headline stream: the
    // bucketed set pays a small constant (hash probe, metadata upkeep) that
    // only amortizes once frontiers hold more than a handful of members —
    // the regime the dimension/format growth of the workload pushes into.
    for &(len, dim, formats) in &[(256usize, 3usize, 4u8), (512, 4, 2), (1024, 4, 4)] {
        let stream = candidate_stream(len, dim, formats, 13);
        let id = format!("{len}x{dim}d{formats}f");
        group.bench_with_input(BenchmarkId::new("bucketed", &id), &stream, |b, stream| {
            b.iter(|| {
                let mut set = ParetoSet::new();
                for p in stream {
                    set.insert(p.clone(), &Admission::approx(1.0));
                }
                black_box(set.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", &id), &stream, |b, stream| {
            b.iter(|| {
                let mut set = LinearParetoSet::new();
                for p in stream {
                    set.admit(p.clone(), &Admission::approx(1.0));
                }
                black_box(set.len())
            })
        });
    }
    group.finish();
}

fn bench_insert_climb(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_climb");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    let stream = candidate_stream(1024, 4, 4, 17);
    for policy in [PrunePolicy::OnePerFormat, PrunePolicy::KeepIncomparable] {
        let id = format!("{policy:?}");
        group.bench_with_input(BenchmarkId::new("bucketed", &id), &stream, |b, stream| {
            b.iter(|| {
                let mut set = ParetoSet::new();
                for p in stream {
                    set.insert(p.clone(), &Admission::climb(policy));
                }
                black_box(set.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", &id), &stream, |b, stream| {
            b.iter(|| {
                let mut set = LinearParetoSet::new();
                for p in stream {
                    set.admit(p.clone(), &Admission::climb(policy));
                }
                black_box(set.len())
            })
        });
    }
    group.finish();
}

fn bench_climb_step_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("climb_step");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for n in [10usize, 50, 100] {
        let (model, query) = resource_model(n);
        let plan = random_plan(&model, query, &mut StdRng::seed_from_u64(2));
        let mut scratch = StepScratch::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(pareto_step_with(
                    &plan,
                    &model,
                    PrunePolicy::OnePerFormat,
                    MutationSet::Bushy,
                    &mut scratch,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dominance,
    bench_insert_approx,
    bench_insert_climb,
    bench_climb_step_scratch
);
criterion_main!(benches);
