//! Micro-benchmarks of the hash-consed plan arena against `Arc<Plan>`
//! trees: plan building, root-mutation enumeration, and structural
//! equality — the three representation kernels under every RMQ iteration.
//!
//! The deterministic perf-baseline harness (`cargo run -p moqo-bench --bin
//! harness`) measures the same kernels with the same seeds and archives
//! the numbers in `BENCH_rmq.json` (schema v2); this target exists for
//! interactive `cargo bench` exploration.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use moqo_bench::{resource_model, resource_model_3d};
use moqo_core::arena::{PlanArena, PlanId};
use moqo_core::mutations::{root_mutations, root_mutations_in};
use moqo_core::plan::PlanRef;
use moqo_core::random_plan::{random_plan, random_plan_in};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_build");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for tables in [8usize, 12, 20] {
        let (model, query) = resource_model(tables);
        group.bench_with_input(BenchmarkId::new("arc", tables), &tables, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(31);
                let mut plans = Vec::with_capacity(256);
                for _ in 0..256 {
                    plans.push(random_plan(&model, query, &mut rng));
                }
                black_box(plans.len())
            })
        });
        // One arena reused across iterations: the per-session steady state.
        let mut arena = PlanArena::new();
        group.bench_with_input(BenchmarkId::new("arena", tables), &tables, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(31);
                let mut plans = Vec::with_capacity(256);
                for _ in 0..256 {
                    plans.push(random_plan_in(&mut arena, &model, query, &mut rng));
                }
                black_box(plans.len())
            })
        });
    }
    group.finish();
}

fn bench_mutate(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_mutate");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    // Three metrics: the many-objective configuration where candidate
    // costing is at its most expensive — the regime memoized costing wins.
    let (model, query) = resource_model_3d(12);
    let plans: Vec<PlanRef> = {
        let mut rng = StdRng::seed_from_u64(33);
        (0..256)
            .map(|_| random_plan(&model, query, &mut rng))
            .collect()
    };
    let mut out_arc: Vec<PlanRef> = Vec::new();
    group.bench_function("arc", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for p in &plans {
                out_arc.clear();
                root_mutations(p, &model, &mut out_arc);
                total += out_arc.len();
            }
            black_box(total)
        })
    });
    let mut arena = PlanArena::new();
    let ids: Vec<PlanId> = plans.iter().map(|p| arena.import(p)).collect();
    let mut out_ids: Vec<PlanId> = Vec::new();
    group.bench_function("arena", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &id in &ids {
                out_ids.clear();
                root_mutations_in(&mut arena, id, &model, &mut out_ids);
                total += out_ids.len();
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    // Not a timing comparison: reports how hard interning works on a
    // realistic stream (the dedup rate also lands in BENCH_rmq.json).
    let (model, query) = resource_model(12);
    let mut arena = PlanArena::new();
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..1024 {
        random_plan_in(&mut arena, &model, query, &mut rng);
    }
    eprintln!(
        "arena dedup over 1024 random 12-table plans: {} nodes, {:.1}% hit rate",
        arena.len(),
        arena.stats().dedup_rate() * 100.0
    );
    let mut group = c.benchmark_group("plan_intern_probe");
    group
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);
    let probe_rng = StdRng::seed_from_u64(31);
    group.bench_function("rebuild_interned_stream", |b| {
        b.iter(|| {
            let mut rng = probe_rng.clone();
            let mut n = 0usize;
            for _ in 0..256 {
                n += random_plan_in(&mut arena, &model, query, &mut rng).index();
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_mutate, bench_dedup);
criterion_main!(benches);
