//! Regenerates the paper's Figure 3: median climbing path length from a
//! random plan to the next local Pareto optimum, and the median number of
//! Pareto plans found by RMQ (three cost metrics), side by side with the
//! §5 statistical model's prediction.
use moqo_harness::fig3::{run_fig3, Fig3Spec};
use moqo_harness::report::render_fig3;

fn main() {
    let spec = Fig3Spec::default();
    let rows = run_fig3(&spec);
    print!("{}", render_fig3(&rows));
}
