//! Regenerates the paper's Figure 2 (see DESIGN.md experiment index).
//! Budgets/cases are scaled; override with MOQO_TIME_SCALE / MOQO_CASES.
use moqo_harness::figures::FigureSpec;
use moqo_harness::report::render_figure;
use moqo_harness::runner::run_figure;
use moqo_harness::EnvConfig;

fn main() {
    let env = EnvConfig::from_env();
    let spec = FigureSpec::fig2(&env);
    let result = run_figure(&spec);
    print!("{}", render_figure(&result));
}
