//! Regression gate for the perf baseline: diffs a freshly generated
//! `BENCH_rmq.json` against a checked-in baseline and fails (exit 1) on
//! regressions. CI's `bench-smoke` job runs the harness in `--quick` mode
//! and diffs the output against the checked-in quick baseline
//! (`BENCH_rmq.quick.json`).
//!
//! Two classes of checks:
//!
//! * **Structural** (exact): the deterministic fields — RMQ frontier sizes
//!   per checkpoint, median climbing path lengths, plan-cache occupancy,
//!   arena occupancy and dedup rate, the anytime convergence curves
//!   (checkpoint marks, frontier sizes, hypervolumes; schema v7), and the
//!   front-door replay's traffic shape (tenant/template skew
//!   concentrations; schema v8). These are bit-for-bit reproducible on
//!   any machine, so *any* drift is a behavior change that must be
//!   explained (and the baseline regenerated deliberately).
//! * **Timing** (generous noise margins): per-kernel ns/op may not exceed
//!   `baseline × --timing-margin` (default 5, CI runners are noisy), and
//!   each speedup ratio may not fall below `baseline ÷ --speedup-margin`
//!   (default 2; ratios divide out the machine, so this is already lax).
//!   Parallel-scaling ratios (`par_rmq` thread-scaling, the `exec_pool`
//!   pooled-vs-scoped throughput, the front-door degraded-vs-plain shed
//!   ratio) are demoted to warnings when either file was generated at
//!   `host_parallelism == 1` — a single hardware thread has no
//!   parallelism to measure.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p moqo-bench --bin bench_diff -- \
//!     --baseline BENCH_rmq.quick.json --candidate BENCH_rmq.ci.json \
//!     [--timing-margin 5.0] [--speedup-margin 2.0] [--skip-timing]
//! ```

use serde_json::Value;

struct Gate {
    violations: Vec<String>,
    checks: usize,
}

impl Gate {
    fn new() -> Self {
        Gate {
            violations: Vec::new(),
            checks: 0,
        }
    }

    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violations.push(msg());
        }
    }

    /// A ratio gate that can be demoted to a warning: parallel-scaling
    /// ratios are meaningless on a single hardware thread, so when either
    /// file was generated at `host_parallelism == 1` the check still runs
    /// but a failure only warns (schema v6).
    fn check_ratio(&mut self, hard: bool, ok: bool, msg: impl FnOnce() -> String) {
        if hard {
            self.check(ok, msg);
        } else {
            self.checks += 1;
            if !ok {
                eprintln!("bench_diff: warning (host_parallelism == 1) — {}", msg());
            }
        }
    }
}

fn f64_field(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn structural_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

/// Exact comparison of the deterministic fields of one RMQ run.
fn diff_rmq(gate: &mut Gate, base: &Value, cand: &Value, tag: &str) {
    for key in [
        "median_path_length",
        "cache_table_sets",
        "cache_plans",
        "arena_nodes",
        "arena_dedup_rate",
    ] {
        match (f64_field(base, key), f64_field(cand, key)) {
            (Some(b), Some(c)) => gate.check(structural_eq(b, c), || {
                format!("{tag}: structural field `{key}` drifted: baseline {b} vs candidate {c}")
            }),
            (Some(_), None) => gate
                .violations
                .push(format!("{tag}: candidate dropped structural field `{key}`")),
            _ => {}
        }
    }
    let (Some(bc), Some(cc)) = (
        base.get("checkpoints").and_then(Value::as_array),
        cand.get("checkpoints").and_then(Value::as_array),
    ) else {
        gate.violations.push(format!("{tag}: missing checkpoints"));
        return;
    };
    gate.check(bc.len() == cc.len(), || {
        format!(
            "{tag}: checkpoint count changed: {} vs {}",
            bc.len(),
            cc.len()
        )
    });
    for (b, c) in bc.iter().zip(cc) {
        let iters = f64_field(b, "iterations").unwrap_or(-1.0);
        for key in ["iterations", "frontier_size"] {
            if let (Some(bv), Some(cv)) = (f64_field(b, key), f64_field(c, key)) {
                gate.check(structural_eq(bv, cv), || {
                    format!(
                        "{tag} checkpoint @{iters}: `{key}` drifted: baseline {bv} vs candidate {cv}"
                    )
                });
            }
        }
    }
}

fn main() {
    let mut baseline_path = None;
    let mut candidate_path = None;
    let mut timing_margin = 5.0f64;
    let mut speedup_margin = 2.0f64;
    let mut skip_timing = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} requires an argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => baseline_path = Some(take("--baseline")),
            "--candidate" => candidate_path = Some(take("--candidate")),
            "--timing-margin" => {
                timing_margin = take("--timing-margin").parse().unwrap_or_else(|_| {
                    eprintln!("--timing-margin must be a number");
                    std::process::exit(2);
                })
            }
            "--speedup-margin" => {
                speedup_margin = take("--speedup-margin").parse().unwrap_or_else(|_| {
                    eprintln!("--speedup-margin must be a number");
                    std::process::exit(2);
                })
            }
            "--skip-timing" => skip_timing = true,
            "--help" | "-h" => {
                println!(
                    "usage: bench_diff --baseline A.json --candidate B.json \
                     [--timing-margin F] [--speedup-margin F] [--skip-timing]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let (Some(baseline_path), Some(candidate_path)) = (baseline_path, candidate_path) else {
        eprintln!("bench_diff: --baseline and --candidate are required (see --help)");
        std::process::exit(2);
    };
    let load = |path: &str| -> Value {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let base = load(&baseline_path);
    let cand = load(&candidate_path);
    let mut gate = Gate::new();

    // Schemas are additive: the candidate must be at least the baseline's
    // version, and both files must stem from the same mode.
    let bv = f64_field(&base, "schema_version").unwrap_or(0.0);
    let cv = f64_field(&cand, "schema_version").unwrap_or(0.0);
    gate.check(cv >= bv, || {
        format!("schema_version regressed: baseline {bv} vs candidate {cv}")
    });
    let mode = |v: &Value| {
        v.get("mode")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string()
    };
    gate.check(mode(&base) == mode(&cand), || {
        format!(
            "mode mismatch: baseline '{}' vs candidate '{}' (compare like with like)",
            mode(&base),
            mode(&cand)
        )
    });

    // Host parallelism (schema v4): a mismatch only warns — timing fields
    // are machine-relative anyway, but cross-core-count comparisons are
    // worth flagging because thread-scaling numbers shift with the host.
    // Schema v6: when either file was generated on a single hardware
    // thread, parallel-scaling *ratio* gates (par_rmq, exec_pool) are
    // demoted to warnings — there is no parallelism to measure.
    let base_hp = f64_field(&base, "host_parallelism");
    let cand_hp = f64_field(&cand, "host_parallelism");
    if let (Some(bp), Some(cp)) = (base_hp, cand_hp) {
        if bp != cp {
            eprintln!(
                "bench_diff: warning — baseline generated on a host with \
                 {bp} hardware threads, candidate on {cp}; timing and \
                 thread-scaling fields are not directly comparable"
            );
        }
    }
    let multicore = base_hp.is_none_or(|p| p > 1.0) && cand_hp.is_none_or(|p| p > 1.0);

    // Structural: the build kernel's interning stats are deterministic
    // (fixed seeds, fixed workload), so the arena block must match exactly.
    match (base.get("arena"), cand.get("arena")) {
        (Some(ba), Some(ca)) => {
            for key in ["nodes", "dedup_hits", "dedup_rate"] {
                match (f64_field(ba, key), f64_field(ca, key)) {
                    (Some(b), Some(c)) => gate.check(structural_eq(b, c), || {
                        format!("arena: structural field `{key}` drifted: baseline {b} vs candidate {c}")
                    }),
                    (Some(_), None) => gate
                        .violations
                        .push(format!("arena: candidate dropped field `{key}`")),
                    _ => {}
                }
            }
        }
        (Some(_), None) => gate
            .violations
            .push("candidate dropped the `arena` stats block".to_string()),
        _ => {}
    }

    // Structural: every baseline RMQ run must exist in the candidate with
    // identical deterministic fields.
    let rmq = |v: &Value| {
        v.get("rmq")
            .and_then(Value::as_array)
            .cloned()
            .unwrap_or_default()
    };
    for b in &rmq(&base) {
        let tables = f64_field(b, "tables").unwrap_or(-1.0);
        let seed = f64_field(b, "seed").unwrap_or(-1.0);
        let tag = format!("rmq(tables={tables}, seed={seed})");
        match rmq(&cand)
            .iter()
            .find(|c| f64_field(c, "tables") == Some(tables) && f64_field(c, "seed") == Some(seed))
        {
            Some(c) => diff_rmq(&mut gate, b, c, &tag),
            None => gate
                .violations
                .push(format!("{tag}: missing from candidate")),
        }
    }

    // Structural (schema v3): every baseline `par_rmq` thread-scaling entry
    // must exist in the candidate with identical deterministic-mode fields.
    // The live-mode fields (iters/s, live frontier, exchange counters)
    // depend on timing and thread scheduling, so only their *presence* is
    // required — dropping a field is a schema regression even though its
    // value is free.
    let par = |v: &Value| {
        v.get("par_rmq")
            .and_then(Value::as_array)
            .cloned()
            .unwrap_or_default()
    };
    for b in &par(&base) {
        let tables = f64_field(b, "tables").unwrap_or(-1.0);
        let threads = f64_field(b, "threads").unwrap_or(-1.0);
        let seed = f64_field(b, "seed").unwrap_or(-1.0);
        let tag = format!("par_rmq(tables={tables}, threads={threads}, seed={seed})");
        let Some(c) = par(&cand).into_iter().find(|c| {
            f64_field(c, "tables") == Some(tables)
                && f64_field(c, "threads") == Some(threads)
                && f64_field(c, "seed") == Some(seed)
        }) else {
            gate.violations
                .push(format!("{tag}: missing from candidate"));
            continue;
        };
        for key in ["det_iterations", "det_frontier_size", "det_hypervolume"] {
            match (f64_field(b, key), f64_field(&c, key)) {
                (Some(bv), Some(cv)) => gate.check(structural_eq(bv, cv), || {
                    format!(
                        "{tag}: structural field `{key}` drifted: baseline {bv} vs candidate {cv}"
                    )
                }),
                (Some(_), None) => gate
                    .violations
                    .push(format!("{tag}: candidate dropped structural field `{key}`")),
                _ => {}
            }
        }
        for key in [
            "iterations",
            "iters_per_sec",
            "live_frontier_size",
            "live_hypervolume",
            "exchange_publishes",
            "exchange_offered",
            "exchange_merged",
            "exchange_epochs",
            "exchange_absorbed",
        ] {
            gate.check(c.get(key).is_some(), || {
                format!("{tag}: candidate dropped live-mode field `{key}`")
            });
        }
        // Partial-plan exchange counters (schema v6): presence only — the
        // values depend on thread scheduling. Only required when the
        // baseline has them (v6+).
        for key in [
            "exchange_partial_offered",
            "exchange_partial_merged",
            "exchange_partial_epochs",
            "exchange_partial_table_sets",
        ] {
            if b.get(key).is_some() {
                gate.check(c.get(key).is_some(), || {
                    format!("{tag}: candidate dropped live-mode field `{key}`")
                });
            }
        }
    }
    if !par(&base).is_empty() && par(&cand).is_empty() {
        gate.violations
            .push("candidate dropped the `par_rmq` section".to_string());
    }

    // Executor workload (schema v6): every field must stay present; the
    // values (throughput, tail latency, steal counts) are timing- and
    // scheduling-dependent, so only the headline pooled-vs-scoped ratio is
    // gated — below, under the timing section, and demoted to a warning on
    // single-core hosts.
    match (base.get("exec_pool"), cand.get("exec_pool")) {
        (Some(_), Some(ce)) => {
            for key in [
                "sessions",
                "pool_workers",
                "wide_fan_out",
                "iterations_per_session",
                "pooled_vs_scoped_iters_per_sec",
                "pool_batches",
                "pool_steals",
                "pool_donations",
                "exchange_backoff_level",
            ] {
                gate.check(ce.get(key).is_some(), || {
                    format!("exec_pool: candidate dropped field `{key}`")
                });
            }
            for run in ["pooled", "scoped"] {
                let Some(cr) = ce.get(run) else {
                    gate.violations
                        .push(format!("exec_pool: candidate dropped the `{run}` run"));
                    continue;
                };
                for key in [
                    "elapsed_ms",
                    "total_iterations",
                    "iters_per_sec",
                    "p99_ttff_ms",
                ] {
                    gate.check(cr.get(key).is_some(), || {
                        format!("exec_pool.{run}: candidate dropped field `{key}`")
                    });
                }
            }
        }
        (Some(_), None) => gate
            .violations
            .push("candidate dropped the `exec_pool` section".to_string()),
        _ => {}
    }

    // Front-door heavy-traffic replay (schema v8): the traffic shape is
    // generated from fixed seeds, so its fields are bit-for-bit
    // reproducible — drift means the skew generators changed behavior.
    // The serving fields of the two runs are load- and machine-dependent
    // (presence only); the headline degraded-vs-plain shed ratio is gated
    // below, under the timing section.
    match (base.get("frontdoor"), cand.get("frontdoor")) {
        (Some(bf), Some(cf)) => {
            for key in [
                "sessions",
                "tenants",
                "shards",
                "templates",
                "seed",
                "tenant_skew",
                "query_skew",
                "top_tenant_per_mille",
                "top_template_per_mille",
                "distinct_templates",
            ] {
                match (f64_field(bf, key), f64_field(cf, key)) {
                    (Some(b), Some(c)) => gate.check(structural_eq(b, c), || {
                        format!("frontdoor.{key}: {c} differs from baseline {b}")
                    }),
                    (Some(_), None) => gate
                        .violations
                        .push(format!("frontdoor: candidate dropped field `{key}`")),
                    _ => {}
                }
            }
            gate.check(cf.get("degraded_vs_plain_shed").is_some(), || {
                "frontdoor: candidate dropped field `degraded_vs_plain_shed`".to_string()
            });
            for run in ["degraded_run", "plain_run"] {
                let Some(cr) = cf.get(run) else {
                    gate.violations
                        .push(format!("frontdoor: candidate dropped the `{run}` run"));
                    continue;
                };
                for key in [
                    "elapsed_ms",
                    "offered",
                    "admitted",
                    "coalesced",
                    "degraded",
                    "shed",
                    "shed_per_mille",
                    "coalesce_per_mille",
                    "degraded_per_mille",
                    "ttff_p50_ms",
                    "ttff_p99_ms",
                ] {
                    gate.check(cr.get(key).is_some(), || {
                        format!("frontdoor.{run}: candidate dropped field `{key}`")
                    });
                }
            }
        }
        (Some(_), None) => gate
            .violations
            .push("candidate dropped the `frontdoor` section".to_string()),
        _ => {}
    }

    // Structural (schema v4): the observability counter deltas of every
    // baseline RMQ fixture are deterministic — drift means the screening
    // or interning *behavior* of the hot path changed, not just its speed.
    let obs = |v: &Value| {
        v.get("obs")
            .and_then(Value::as_array)
            .cloned()
            .unwrap_or_default()
    };
    for b in &obs(&base) {
        let tables = f64_field(b, "tables").unwrap_or(-1.0);
        let seed = f64_field(b, "seed").unwrap_or(-1.0);
        let tag = format!("obs(tables={tables}, seed={seed})");
        let Some(c) = obs(&cand)
            .into_iter()
            .find(|c| f64_field(c, "tables") == Some(tables) && f64_field(c, "seed") == Some(seed))
        else {
            gate.violations
                .push(format!("{tag}: missing from candidate"));
            continue;
        };
        for key in [
            "iterations",
            "climb_candidates",
            "climb_agg_key_skips",
            "climb_dominance_tests",
            "climb_rejected",
            "climb_admitted",
            "climb_evicted",
            "pareto_blocks_screened",
            "pareto_eps_rejects",
            "pareto_archive_size",
            "arena_interns",
            "arena_dedup_hits",
        ] {
            match (f64_field(b, key), f64_field(&c, key)) {
                (Some(bv), Some(cv)) => gate.check(structural_eq(bv, cv), || {
                    format!(
                        "{tag}: structural field `{key}` drifted: baseline {bv} vs candidate {cv}"
                    )
                }),
                (Some(_), None) => gate
                    .violations
                    .push(format!("{tag}: candidate dropped structural field `{key}`")),
                _ => {}
            }
        }
    }
    if !obs(&base).is_empty() && obs(&cand).is_empty() {
        gate.violations
            .push("candidate dropped the `obs` section".to_string());
    }

    // Structural (schema v5): the archive-size-vs-ε curve is fully
    // deterministic (fixed stream, fixed factors) — any drift means the
    // ε-box admission semantics changed.
    match (base.get("eps_archive"), cand.get("eps_archive")) {
        (Some(be), Some(ce)) => {
            for key in ["dim", "stream_len", "exact_size", "exact_blowup"] {
                match (f64_field(be, key), f64_field(ce, key)) {
                    (Some(b), Some(c)) => gate.check(structural_eq(b, c), || {
                        format!(
                            "eps_archive: structural field `{key}` drifted: baseline {b} vs candidate {c}"
                        )
                    }),
                    (Some(_), None) => gate
                        .violations
                        .push(format!("eps_archive: candidate dropped field `{key}`")),
                    _ => {}
                }
            }
            let points = |v: &Value| {
                v.get("points")
                    .and_then(Value::as_array)
                    .cloned()
                    .unwrap_or_default()
            };
            for b in &points(be) {
                let eps = f64_field(b, "eps").unwrap_or(-1.0);
                let tag = format!("eps_archive point(eps={eps})");
                let Some(c) = points(ce)
                    .into_iter()
                    .find(|c| f64_field(c, "eps") == Some(eps))
                else {
                    gate.violations
                        .push(format!("{tag}: missing from candidate"));
                    continue;
                };
                for key in ["archive_size", "eps_rejects"] {
                    if let (Some(bv), Some(cv)) = (f64_field(b, key), f64_field(&c, key)) {
                        gate.check(structural_eq(bv, cv), || {
                            format!(
                                "{tag}: structural field `{key}` drifted: baseline {bv} vs candidate {cv}"
                            )
                        });
                    }
                }
            }
        }
        (Some(_), None) => gate
            .violations
            .push("candidate dropped the `eps_archive` section".to_string()),
        _ => {}
    }

    // Structural (schema v5): the RMQ dimension sweep's frontier and cache
    // sizes are deterministic; timings are presence-checked only.
    let rmq_dim = |v: &Value| {
        v.get("rmq_dim")
            .and_then(Value::as_array)
            .cloned()
            .unwrap_or_default()
    };
    for b in &rmq_dim(&base) {
        let tables = f64_field(b, "tables").unwrap_or(-1.0);
        let dim = f64_field(b, "dim").unwrap_or(-1.0);
        let seed = f64_field(b, "seed").unwrap_or(-1.0);
        let tag = format!("rmq_dim(tables={tables}, dim={dim}, seed={seed})");
        let Some(c) = rmq_dim(&cand).into_iter().find(|c| {
            f64_field(c, "tables") == Some(tables)
                && f64_field(c, "dim") == Some(dim)
                && f64_field(c, "seed") == Some(seed)
        }) else {
            gate.violations
                .push(format!("{tag}: missing from candidate"));
            continue;
        };
        for key in ["iterations", "frontier_size", "cache_plans"] {
            match (f64_field(b, key), f64_field(&c, key)) {
                (Some(bv), Some(cv)) => gate.check(structural_eq(bv, cv), || {
                    format!(
                        "{tag}: structural field `{key}` drifted: baseline {bv} vs candidate {cv}"
                    )
                }),
                (Some(_), None) => gate
                    .violations
                    .push(format!("{tag}: candidate dropped structural field `{key}`")),
                _ => {}
            }
        }
        for key in ["elapsed_ms", "iters_per_sec"] {
            gate.check(c.get(key).is_some(), || {
                format!("{tag}: candidate dropped timing field `{key}`")
            });
        }
    }
    if !rmq_dim(&base).is_empty() && rmq_dim(&cand).is_empty() {
        gate.violations
            .push("candidate dropped the `rmq_dim` section".to_string());
    }

    // Structural (schema v7): the anytime convergence curves come from the
    // deterministic RMQ fixtures — the checkpoint marks, frontier sizes,
    // and hypervolumes are bit-for-bit reproducible; `elapsed_ms` and
    // `time_to_90_ms` are timing-only (presence-checked).
    let convergence = |v: &Value| {
        v.get("convergence")
            .and_then(Value::as_array)
            .cloned()
            .unwrap_or_default()
    };
    for b in &convergence(&base) {
        let tables = f64_field(b, "tables").unwrap_or(-1.0);
        let seed = f64_field(b, "seed").unwrap_or(-1.0);
        let tag = format!("convergence(tables={tables}, seed={seed})");
        let Some(c) = convergence(&cand)
            .into_iter()
            .find(|c| f64_field(c, "tables") == Some(tables) && f64_field(c, "seed") == Some(seed))
        else {
            gate.violations
                .push(format!("{tag}: missing from candidate"));
            continue;
        };
        if let (Some(bv), Some(cv)) = (
            f64_field(b, "final_hypervolume"),
            f64_field(&c, "final_hypervolume"),
        ) {
            gate.check(structural_eq(bv, cv), || {
                format!(
                    "{tag}: structural field `final_hypervolume` drifted: \
                     baseline {bv} vs candidate {cv}"
                )
            });
        }
        gate.check(c.get("time_to_90_ms").is_some(), || {
            format!("{tag}: candidate dropped timing field `time_to_90_ms`")
        });
        let points = |v: &Value| {
            v.get("points")
                .and_then(Value::as_array)
                .cloned()
                .unwrap_or_default()
        };
        let (bp, cp) = (points(b), points(&c));
        gate.check(bp.len() == cp.len(), || {
            format!(
                "{tag}: checkpoint count changed: {} vs {}",
                bp.len(),
                cp.len()
            )
        });
        for (bpt, cpt) in bp.iter().zip(&cp) {
            let iters = f64_field(bpt, "iteration").unwrap_or(-1.0);
            for key in ["iteration", "frontier_size", "hypervolume"] {
                if let (Some(bv), Some(cv)) = (f64_field(bpt, key), f64_field(cpt, key)) {
                    gate.check(structural_eq(bv, cv), || {
                        format!(
                            "{tag} checkpoint @{iters}: `{key}` drifted: \
                             baseline {bv} vs candidate {cv}"
                        )
                    });
                }
            }
            gate.check(cpt.get("elapsed_ms").is_some(), || {
                format!("{tag} checkpoint @{iters}: candidate dropped timing field `elapsed_ms`")
            });
        }
    }
    if !convergence(&base).is_empty() && convergence(&cand).is_empty() {
        gate.violations
            .push("candidate dropped the `convergence` section".to_string());
    }

    if !skip_timing {
        // Per-kernel ns/op with a generous absolute margin.
        let micro = |v: &Value| {
            v.get("micro")
                .and_then(Value::as_array)
                .cloned()
                .unwrap_or_default()
        };
        for b in &micro(&base) {
            let name = b
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string();
            let Some(c) = micro(&cand)
                .iter()
                .find(|c| c.get("name").and_then(Value::as_str) == Some(&name))
                .cloned()
            else {
                gate.violations
                    .push(format!("micro `{name}`: missing from candidate"));
                continue;
            };
            if let (Some(bn), Some(cn)) = (f64_field(b, "ns_per_op"), f64_field(&c, "ns_per_op")) {
                gate.check(cn <= bn * timing_margin, || {
                    format!(
                        "micro `{name}`: {cn:.1} ns/op exceeds baseline {bn:.1} × margin {timing_margin}"
                    )
                });
            }
        }
        // Speedup ratios divide out the machine; require each to stay
        // within a factor of the baseline. A baseline ratio the candidate
        // dropped — or a dropped `speedups` block — is itself a violation,
        // never a silent skip.
        match (base.get("speedups"), cand.get("speedups")) {
            (Some(bs), Some(cs)) => {
                for key in [
                    "insert_approx_bucketed_vs_linear",
                    "insert_climb_bucketed_vs_linear",
                    "plan_build_arena_vs_arc",
                    "plan_mutate_arena_vs_arc",
                    "plan_eq_arena_vs_arc",
                    "dominance_soa_vs_scalar_d8",
                ] {
                    match (f64_field(bs, key), f64_field(cs, key)) {
                        (Some(b), Some(c)) => gate.check(c >= b / speedup_margin, || {
                            format!(
                                "speedup `{key}`: {c:.2}x fell below baseline {b:.2}x ÷ margin {speedup_margin}"
                            )
                        }),
                        (Some(_), None) => gate
                            .violations
                            .push(format!("speedup `{key}`: missing from candidate")),
                        _ => {}
                    }
                }
            }
            (Some(_), None) => gate
                .violations
                .push("candidate dropped the `speedups` block".to_string()),
            _ => {}
        }

        // Parallel-scaling ratios (schema v6): `par_rmq` thread-scaling
        // (iters/sec at t threads over t=1) and the exec_pool pooled-vs-
        // scoped throughput ratio both divide out the machine, but not
        // the core count — on `host_parallelism == 1` hosts they are
        // scheduling noise, so failures there only warn.
        let rate_of = |list: &[Value], threads: f64| {
            list.iter()
                .find(|e| f64_field(e, "threads") == Some(threads))
                .and_then(|e| f64_field(e, "iters_per_sec"))
        };
        let (bpar, cpar) = (par(&base), par(&cand));
        if let (Some(b1), Some(c1)) = (rate_of(&bpar, 1.0), rate_of(&cpar, 1.0)) {
            for b in &bpar {
                let threads = f64_field(b, "threads").unwrap_or(-1.0);
                if threads <= 1.0 {
                    continue;
                }
                let (Some(bt), Some(ct)) = (rate_of(&bpar, threads), rate_of(&cpar, threads))
                else {
                    continue;
                };
                let (bscale, cscale) = (bt / b1, ct / c1);
                gate.check_ratio(multicore, cscale >= bscale / speedup_margin, || {
                    format!(
                        "par_rmq scaling @{threads} threads: {cscale:.2}x fell below \
                         baseline {bscale:.2}x ÷ margin {speedup_margin}"
                    )
                });
            }
        }
        if let (Some(be), Some(ce)) = (base.get("exec_pool"), cand.get("exec_pool")) {
            if let (Some(b), Some(c)) = (
                f64_field(be, "pooled_vs_scoped_iters_per_sec"),
                f64_field(ce, "pooled_vs_scoped_iters_per_sec"),
            ) {
                gate.check_ratio(multicore, c >= b / speedup_margin, || {
                    format!(
                        "exec_pool pooled-vs-scoped throughput: {c:.2}x fell below \
                         baseline {b:.2}x ÷ margin {speedup_margin}"
                    )
                });
            }
        }

        // Front-door degrade-before-shed (schema v8): shed rate with the
        // degradation ladder enabled over shed rate with it disabled —
        // lower is better, and a candidate may not drift above the
        // baseline ratio by more than the speedup margin. Load dynamics
        // depend on real parallelism, so single-core hosts only warn.
        if let (Some(bf), Some(cf)) = (base.get("frontdoor"), cand.get("frontdoor")) {
            if let (Some(b), Some(c)) = (
                f64_field(bf, "degraded_vs_plain_shed"),
                f64_field(cf, "degraded_vs_plain_shed"),
            ) {
                gate.check_ratio(multicore, c <= b * speedup_margin, || {
                    format!(
                        "frontdoor degraded-vs-plain shed ratio: {c:.2} exceeds \
                         baseline {b:.2} × margin {speedup_margin}"
                    )
                });
            }
        }
    }

    if gate.violations.is_empty() {
        eprintln!(
            "bench_diff: OK — {} checks against {baseline_path}, no regressions",
            gate.checks
        );
    } else {
        eprintln!(
            "bench_diff: {} regression(s) against {baseline_path}:",
            gate.violations.len()
        );
        for v in &gate.violations {
            eprintln!("  ✗ {v}");
        }
        std::process::exit(1);
    }
}
