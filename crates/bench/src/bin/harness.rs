//! Deterministic perf-baseline harness: measures the Pareto-pruning kernel
//! and an end-to-end anytime RMQ run, and writes the results to a
//! machine-readable JSON file (`BENCH_rmq.json` by default) that future PRs
//! diff against.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p moqo-bench --bin harness -- [--quick] [--out PATH]
//! ```
//!
//! (or `scripts/bench.sh`, which CI's `bench-smoke` job also uses — see the
//! README's "Benchmarks & perf baseline" section for the JSON schema.)
//!
//! All workloads and seeds are fixed, so the *structural* fields (frontier
//! sizes, iteration counts, cache occupancy, climb path lengths) are
//! bit-for-bit reproducible anywhere; the timing fields depend on the
//! machine and are meaningful relative to other runs on the same hardware
//! — most importantly the bucketed-vs-linear speedup ratios, which divide
//! out the machine. `--quick` shrinks repetition counts and the RMQ budget
//! for CI smoke runs; the checked-in baseline is a full run.

use std::time::Instant;

use serde::Serialize;

use moqo_bench::{candidate_stream, cost_pairs, resource_model};
use moqo_core::climb::{pareto_step_with, StepScratch};
use moqo_core::mutations::MutationSet;
use moqo_core::pareto::{LinearParetoSet, ParetoSet, PrunePolicy};
use moqo_core::random_plan::random_plan;
use moqo_core::rmq::{Rmq, RmqConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Schema version of the emitted JSON; bump on incompatible changes.
const SCHEMA_VERSION: u32 = 1;

#[derive(Serialize)]
struct Baseline {
    schema_version: u32,
    /// "quick" (CI smoke) or "full" (checked-in baseline).
    mode: String,
    /// Kernel micro-measurements (nanoseconds per operation).
    micro: Vec<MicroResult>,
    /// Bucketed-vs-linear speedup ratios derived from `micro`
    /// (linear ns / bucketed ns; > 1 means the bucketed set is faster).
    speedups: Speedups,
    /// End-to-end anytime RMQ runs.
    rmq: Vec<RmqResult>,
}

#[derive(Serialize)]
struct MicroResult {
    /// Kernel name, e.g. `insert_approx_bucketed`.
    name: String,
    /// Operations per timed round.
    ops_per_round: u64,
    /// Timed rounds (best-of is reported).
    rounds: u32,
    /// Best observed nanoseconds per operation.
    ns_per_op: f64,
}

#[derive(Serialize)]
struct Speedups {
    insert_approx_bucketed_vs_linear: f64,
    insert_climb_bucketed_vs_linear: f64,
}

#[derive(Serialize)]
struct RmqResult {
    tables: usize,
    metrics: usize,
    seed: u64,
    /// Anytime trajectory: cumulative elapsed time and result-set shape at
    /// each iteration checkpoint. The non-timing fields are deterministic.
    checkpoints: Vec<RmqCheckpoint>,
    median_path_length: f64,
    cache_table_sets: usize,
    cache_plans: usize,
}

#[derive(Serialize)]
struct RmqCheckpoint {
    iterations: u64,
    elapsed_ms: f64,
    frontier_size: usize,
}

/// Times `op` over `rounds` rounds of `ops_per_round` operations each and
/// returns the best-observed ns/op (minimum is the standard low-noise
/// estimator for microbenchmarks).
fn time_ns_per_op(
    name: &str,
    rounds: u32,
    ops_per_round: u64,
    mut op: impl FnMut(),
) -> MicroResult {
    // One untimed warm-up round.
    op();
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        op();
        let ns = start.elapsed().as_nanos() as f64 / ops_per_round as f64;
        best = best.min(ns);
    }
    MicroResult {
        name: name.to_string(),
        ops_per_round,
        rounds,
        ns_per_op: best,
    }
}

fn run_micro(quick: bool) -> (Vec<MicroResult>, Speedups) {
    let rounds: u32 = if quick { 5 } else { 30 };
    let mut out = Vec::new();

    // 1. Raw dominance relations (dim 4).
    let pairs = cost_pairs(1024, 4, 11);
    out.push(time_ns_per_op(
        "dominance_strict_d4",
        rounds,
        pairs.len() as u64,
        || {
            let mut n = 0usize;
            for (a, b) in &pairs {
                n += usize::from(a.strictly_dominates(b));
            }
            std::hint::black_box(n);
        },
    ));

    // 2. Pareto insertion, bucketed vs. linear, identical streams. Four
    // metrics keep a large mutually incomparable frontier alive — the
    // many-objective regime (arXiv:1404.0046) that motivates fast
    // dominance rejection.
    let stream = candidate_stream(1024, 4, 4, 13);
    let ops = stream.len() as u64;
    out.push(time_ns_per_op(
        "insert_approx_bucketed",
        rounds,
        ops,
        || {
            let mut set = ParetoSet::new();
            for p in &stream {
                set.insert_approx(p.clone(), 1.0);
            }
            std::hint::black_box(set.len());
        },
    ));
    out.push(time_ns_per_op("insert_approx_linear", rounds, ops, || {
        let mut set = LinearParetoSet::new();
        for p in &stream {
            set.insert_approx(p.clone(), 1.0);
        }
        std::hint::black_box(set.len());
    }));
    out.push(time_ns_per_op("insert_climb_bucketed", rounds, ops, || {
        let mut set = ParetoSet::new();
        for p in &stream {
            set.insert_climb(p.clone(), PrunePolicy::KeepIncomparable);
        }
        std::hint::black_box(set.len());
    }));
    out.push(time_ns_per_op("insert_climb_linear", rounds, ops, || {
        let mut set = LinearParetoSet::new();
        for p in &stream {
            set.insert_climb(p.clone(), PrunePolicy::KeepIncomparable);
        }
        std::hint::black_box(set.len());
    }));

    // 3. One ParetoStep with reused scratch on a 50-table cycle query.
    let (model, query) = resource_model(if quick { 20 } else { 50 });
    let plan = random_plan(&model, query, &mut StdRng::seed_from_u64(2));
    let mut scratch = StepScratch::default();
    out.push(time_ns_per_op("climb_step", rounds.min(10), 1, || {
        std::hint::black_box(pareto_step_with(
            &plan,
            &model,
            PrunePolicy::OnePerFormat,
            MutationSet::Bushy,
            &mut scratch,
        ));
    }));

    let ns = |name: &str| {
        out.iter()
            .find(|m| m.name == name)
            .map(|m| m.ns_per_op)
            .unwrap_or(f64::NAN)
    };
    let speedups = Speedups {
        insert_approx_bucketed_vs_linear: ns("insert_approx_linear") / ns("insert_approx_bucketed"),
        insert_climb_bucketed_vs_linear: ns("insert_climb_linear") / ns("insert_climb_bucketed"),
    };
    (out, speedups)
}

fn run_rmq(quick: bool) -> Vec<RmqResult> {
    let configs: &[(usize, u64)] = if quick {
        &[(15, 40)]
    } else {
        &[(20, 200), (30, 100)]
    };
    let mut results = Vec::new();
    for &(tables, iterations) in configs {
        let (model, query) = resource_model(tables);
        let seed = 42u64;
        let mut rmq = Rmq::new(&model, query, RmqConfig::seeded(seed));
        let mut checkpoints = Vec::new();
        let marks: Vec<u64> = [10u64, 25, 50, 100, 200]
            .into_iter()
            .filter(|&m| m <= iterations)
            .collect();
        let start = Instant::now();
        for i in 1..=iterations {
            rmq.iterate();
            if marks.contains(&i) || i == iterations {
                checkpoints.push(RmqCheckpoint {
                    iterations: i,
                    elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
                    frontier_size: rmq.frontier().len(),
                });
            }
        }
        checkpoints.dedup_by_key(|c| c.iterations);
        results.push(RmqResult {
            tables,
            metrics: 2,
            seed,
            checkpoints,
            median_path_length: rmq.stats().median_path_length().unwrap_or(0.0),
            cache_table_sets: rmq.cache().num_table_sets(),
            cache_plans: rmq.cache().total_plans(),
        });
    }
    results
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_rmq.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path argument");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!("usage: harness [--quick] [--out PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "perf-baseline harness ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let (micro, speedups) = run_micro(quick);
    for m in &micro {
        eprintln!("  {:<28} {:>12.1} ns/op", m.name, m.ns_per_op);
    }
    eprintln!(
        "  insert_approx speedup (bucketed vs linear): {:.2}x",
        speedups.insert_approx_bucketed_vs_linear
    );
    eprintln!(
        "  insert_climb  speedup (bucketed vs linear): {:.2}x",
        speedups.insert_climb_bucketed_vs_linear
    );
    let rmq = run_rmq(quick);
    for r in &rmq {
        let last = r.checkpoints.last().expect("at least one checkpoint");
        eprintln!(
            "  rmq n={:<3} {} iters in {:.1} ms ({:.1} iters/s), frontier {}, cache {} plans",
            r.tables,
            last.iterations,
            last.elapsed_ms,
            last.iterations as f64 / (last.elapsed_ms / 1e3),
            last.frontier_size,
            r.cache_plans
        );
    }

    let baseline = Baseline {
        schema_version: SCHEMA_VERSION,
        mode: if quick { "quick" } else { "full" }.to_string(),
        micro,
        speedups,
        rmq,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&out_path, json + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
}
