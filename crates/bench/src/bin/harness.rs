//! Deterministic perf-baseline harness: measures the Pareto-pruning kernel
//! and an end-to-end anytime RMQ run, and writes the results to a
//! machine-readable JSON file (`BENCH_rmq.json` by default) that future PRs
//! diff against.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p moqo-bench --bin harness -- [--quick] [--out PATH]
//! ```
//!
//! (or `scripts/bench.sh`, which CI's `bench-smoke` job also uses — see the
//! README's "Benchmarks & perf baseline" section for the JSON schema.)
//!
//! All workloads and seeds are fixed, so the *structural* fields (frontier
//! sizes, iteration counts, cache occupancy, climb path lengths) are
//! bit-for-bit reproducible anywhere; the timing fields depend on the
//! machine and are meaningful relative to other runs on the same hardware
//! — most importantly the bucketed-vs-linear speedup ratios, which divide
//! out the machine. `--quick` shrinks repetition counts and the RMQ budget
//! for CI smoke runs; the checked-in baseline is a full run.

use std::time::Instant;

use serde::Serialize;

use moqo_bench::{candidate_stream, cost_pairs, resource_model};
use moqo_core::archive::{Admission, EpsFactors};
use moqo_core::arena::PlanArena;
use moqo_core::climb::{pareto_step_with, StepScratch};
use moqo_core::cost::CostVector;
use moqo_core::model::testing::StubModel;
use moqo_core::model::OutputFormat;
use moqo_core::mutations::MutationSet;
use moqo_core::optimizer::{Budget, ConvergencePoint, PlanExchange};
use moqo_core::pareto::{LinearParetoSet, ParetoSet, PrunePolicy};
use moqo_core::plan::{PlanKind, PlanRef};
use moqo_core::random_plan::{random_plan, random_plan_in};
use moqo_core::rmq::{Rmq, RmqConfig};
use moqo_core::tables::TableSet;
use moqo_metrics::hypervolume::hypervolume;
use moqo_metrics::{time_to_fraction, HvTracker};
use moqo_parallel::{ParRmq, ParRmqConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Schema version of the emitted JSON; bump on incompatible changes.
/// v2 (additive over v1): arena-vs-Arc plan kernels in `micro`, the
/// `plan_*_arena_vs_arc` speedups, the top-level `arena` interning stats,
/// and per-RMQ-run `arena_nodes` / `arena_dedup_rate`.
/// v3 (additive over v2): the `par_rmq` thread-scaling section — per
/// thread count, live-mode iters/s + frontier hypervolume + exchange
/// overhead counters, and deterministic-mode structural fields (gated
/// bit-for-bit by `bench_diff`).
/// v4 (additive over v3): the top-level `host_parallelism` field
/// (`bench_diff` warns when baselines from different core counts are
/// compared) and the `obs` section — per-RMQ-fixture observability
/// counter deltas (climb-stage screening, arena interning), deterministic
/// and gated bit-for-bit by `bench_diff`.
/// v5 (additive over v4): many-objective scaling — `dominance_screen_*`
/// micro kernels (block SoA archive screening vs the legacy scalar loop at
/// d ∈ {2,4,6,8,10}) with the `dominance_soa_vs_scalar_d8` speedup, the
/// `eps_archive` section (archive-size-vs-ε curve on an anti-correlated
/// d=8 stream, exact-archive blowup ratio), the `rmq_dim` end-to-end
/// dimension sweep (d ∈ {2,4,6,8,10}), and the `pareto_*` fields of
/// `ObsFixture` (SoA blocks screened, ε-rejects, final archive size).
/// v6 (additive over v5): the work-stealing executor — the `exec_pool`
/// section (oversubscribed mixed-width workload on the shared executor vs
/// per-session scoped threads: total iters/sec, p99 time-to-first-
/// frontier, `exec_pool.*` counter deltas, `exchange.backoff_level`) and
/// the `exchange_partial_*` fields of `par_rmq` entries (partial-plan
/// frontier sharing).
/// v7 (additive over v6): anytime convergence telemetry — the
/// `convergence` section: per RMQ fixture, the optimizer's exponentially
/// spaced quality-over-time checkpoints reduced to a hypervolume curve
/// (structural fields — iteration marks, frontier sizes, hypervolumes —
/// deterministic and gated bit-for-bit; `elapsed_ms` / `time_to_90_ms`
/// timing-only).
/// v8 (additive over v7): the multi-tenant front door — the `frontdoor`
/// section: a zipfian-skewed heavy-traffic replay (100k sessions in full
/// mode) through the sharded front door, run twice with the degradation
/// ladder enabled (`degraded_run`) and disabled (`plain_run`). The
/// traffic-shape fields (sessions, tenants, shards, templates, skews,
/// `top_tenant_per_mille`, `top_template_per_mille`, `distinct_templates`)
/// are deterministic and gated bit-for-bit; the serving fields of both
/// runs (TTFF percentiles, shed/coalesce/degrade counts) are load- and
/// machine-dependent (presence-checked), and the headline
/// `degraded_vs_plain_shed` ratio is gated like the parallel-scaling
/// ratios — demoted to a warning at `host_parallelism == 1`.
const SCHEMA_VERSION: u32 = 8;

#[derive(Serialize)]
struct Baseline {
    schema_version: u32,
    /// "quick" (CI smoke) or "full" (checked-in baseline).
    mode: String,
    /// `available_parallelism` of the generating host (schema v4): timing
    /// fields are only comparable between runs on similar core counts.
    host_parallelism: usize,
    /// Kernel micro-measurements (nanoseconds per operation).
    micro: Vec<MicroResult>,
    /// Bucketed-vs-linear speedup ratios derived from `micro`
    /// (linear ns / bucketed ns; > 1 means the bucketed set is faster).
    speedups: Speedups,
    /// Interning stats of the arena build kernel (schema v2).
    arena: ArenaReport,
    /// Archive-size-vs-ε curve on an anti-correlated d=8 cost stream
    /// (schema v5; deterministic, gated by `bench_diff`).
    eps_archive: EpsArchiveReport,
    /// End-to-end anytime RMQ runs.
    rmq: Vec<RmqResult>,
    /// End-to-end RMQ dimension sweep at d ∈ {2,4,6,8,10} (schema v5;
    /// structural fields deterministic).
    rmq_dim: Vec<RmqDimResult>,
    /// Intra-query thread-scaling runs of `ParRmq` (schema v3).
    par_rmq: Vec<ParRmqResult>,
    /// Oversubscribed mixed-width workload on the shared work-stealing
    /// executor vs per-session scoped threads (schema v6).
    exec_pool: ExecPoolReport,
    /// Observability counter deltas per RMQ fixture (schema v4): the
    /// global `moqo-obs` registry sampled immediately before/after each
    /// (sequential, fixed-seed) `rmq` run, so the deltas are exact and
    /// deterministic — drift means hot-path *behavior* changed.
    obs: Vec<ObsFixture>,
    /// Anytime convergence curves per RMQ fixture (schema v7): the
    /// optimizer's own exponentially spaced checkpoints reduced to a
    /// running hypervolume curve. Structural fields deterministic.
    convergence: Vec<ConvergenceFixture>,
    /// Heavy-traffic replay through the sharded multi-tenant front door
    /// (schema v8): traffic-shape fields deterministic, serving fields
    /// load-dependent.
    frontdoor: FrontdoorReport,
}

/// One front-door replay of the skewed session stream (schema v8). All
/// fields depend on load and scheduling — `bench_diff` checks presence,
/// not values; only the degraded-vs-plain shed ratio is gated (as a
/// warning-demoted ratio on single-core hosts).
#[derive(Serialize)]
struct FrontdoorRun {
    elapsed_ms: f64,
    offered: u64,
    admitted: u64,
    coalesced: u64,
    degraded: u64,
    shed: u64,
    shed_per_mille: u64,
    coalesce_per_mille: u64,
    degraded_per_mille: u64,
    /// Worst-shard (max over shards) TTFF percentiles, milliseconds.
    ttff_p50_ms: f64,
    ttff_p99_ms: f64,
}

/// The heavy-traffic front-door section (schema v8): one zipfian-skewed
/// session stream replayed twice through identically configured front
/// doors — once with the SLO-aware degradation ladder enabled, once
/// disabled (shed-only overload handling). The stream itself is
/// deterministic; the serving outcomes are not.
#[derive(Serialize)]
struct FrontdoorReport {
    sessions: usize,
    tenants: usize,
    shards: usize,
    templates: usize,
    seed: u64,
    tenant_skew: f64,
    query_skew: f64,
    /// Share of the stream issued by the hottest tenant (deterministic).
    top_tenant_per_mille: u64,
    /// Share of the stream using the hottest query template (deterministic).
    top_template_per_mille: u64,
    /// Distinct query shapes actually drawn (deterministic).
    distinct_templates: usize,
    degraded_run: FrontdoorRun,
    plain_run: FrontdoorRun,
    /// Degraded-run shed per mille over plain-run shed per mille; < 1
    /// means degrade-before-shed served traffic shedding would have lost.
    degraded_vs_plain_shed: f64,
}

/// One checkpoint of a convergence curve (schema v7). `iteration`,
/// `frontier_size`, and `hypervolume` are deterministic (gated);
/// `elapsed_ms` is timing.
#[derive(Serialize)]
struct ConvergenceCheckpoint {
    iteration: u64,
    elapsed_ms: f64,
    frontier_size: usize,
    /// Running hypervolume of the frontier at this checkpoint, against the
    /// fixture's curve-derived reference point (componentwise max over all
    /// checkpointed costs × 1.1) — nondecreasing along the curve.
    hypervolume: f64,
}

/// The anytime convergence curve of one RMQ fixture (schema v7).
#[derive(Serialize)]
struct ConvergenceFixture {
    tables: usize,
    seed: u64,
    points: Vec<ConvergenceCheckpoint>,
    /// Final (last-checkpoint) hypervolume — deterministic, gated.
    final_hypervolume: f64,
    /// Time to 90% of `final_hypervolume` (timing-only; `None` when the
    /// curve is degenerate).
    time_to_90_ms: Option<f64>,
}

/// Deterministic observability counter deltas of one RMQ fixture
/// (schema v4; every field gated bit-for-bit by `bench_diff`).
#[derive(Serialize)]
struct ObsFixture {
    tables: usize,
    seed: u64,
    /// `rmq.iterations` delta (== the fixture's iteration budget).
    iterations: u64,
    /// Candidates generated and screened (`climb.candidates`).
    climb_candidates: u64,
    /// Rejections short-circuited by the aggregate-key band.
    climb_agg_key_skips: u64,
    /// Full component-wise dominance comparisons run.
    climb_dominance_tests: u64,
    /// Candidates rejected by dominance screening.
    climb_rejected: u64,
    /// Candidates admitted to a frontier.
    climb_admitted: u64,
    /// Incumbents evicted by admitted candidates.
    climb_evicted: u64,
    /// SoA dominance-kernel blocks screened across all archive admissions
    /// (schema v5, `pareto.blocks_screened`).
    pareto_blocks_screened: u64,
    /// ε-box rejections exact dominance would not have made (schema v5,
    /// `pareto.eps_rejects`; zero under the paper's α-schedule).
    pareto_eps_rejects: u64,
    /// Final query-frontier archive size (schema v5, `pareto.archive_size`
    /// gauge after the run).
    pareto_archive_size: u64,
    /// Plan-arena intern misses (fresh nodes).
    arena_interns: u64,
    /// Plan-arena intern hits (structural dedup).
    arena_dedup_hits: u64,
}

#[derive(Serialize)]
struct MicroResult {
    /// Kernel name, e.g. `insert_approx_bucketed`.
    name: String,
    /// Operations per timed round.
    ops_per_round: u64,
    /// Timed rounds (best-of is reported).
    rounds: u32,
    /// Best observed nanoseconds per operation.
    ns_per_op: f64,
}

#[derive(Serialize)]
struct Speedups {
    insert_approx_bucketed_vs_linear: f64,
    insert_climb_bucketed_vs_linear: f64,
    /// Hash-consed arena vs `Arc<Plan>` on the same kernels (>1 = arena
    /// faster). `plan_build`: 1024 random plans; `plan_mutate`: all root
    /// mutations of each of the 1024 plans; `plan_eq`: structural equality.
    plan_build_arena_vs_arc: f64,
    plan_mutate_arena_vs_arc: f64,
    plan_eq_arena_vs_arc: f64,
    /// Block SoA archive screening vs the legacy scalar member loop on the
    /// same d=8 stream (schema v5; > 1 means the SoA kernel is faster).
    dominance_soa_vs_scalar_d8: f64,
}

/// Interning statistics of the `plan_build_arena` kernel's arena
/// (deterministic: fixed seeds, fixed workload).
#[derive(Serialize)]
struct ArenaReport {
    /// Distinct nodes interned over the whole 1024-plan stream.
    nodes: usize,
    /// Intern requests answered without allocating.
    dedup_hits: u64,
    /// Fraction of intern requests deduplicated.
    dedup_rate: f64,
}

/// One point of the archive-size-vs-ε curve (schema v5).
#[derive(Serialize)]
struct EpsArchivePoint {
    /// Uniform per-metric ε factor of the box archive.
    eps: f64,
    /// Archive survivors after the whole stream.
    archive_size: usize,
    /// ε-box rejections that exact dominance would have admitted.
    eps_rejects: u64,
}

/// Archive-size-vs-ε curve on one anti-correlated cost stream (schema
/// v5): the bounded-archive evidence — the exact archive keeps nearly the
/// whole stream while every ε > 1 archive stays precision-bounded.
#[derive(Serialize)]
struct EpsArchiveReport {
    dim: usize,
    stream_len: usize,
    /// Survivors of the exact (ε = 1) archive on the same stream.
    exact_size: usize,
    points: Vec<EpsArchivePoint>,
    /// `exact_size` over the coarsest ε-bounded archive in `points` —
    /// ≥ 5 demonstrates the cardinality blowup ε-boxes avoid.
    exact_blowup: f64,
}

/// One end-to-end RMQ run of the dimension sweep (schema v5). Structural
/// fields (frontier/cache sizes) are deterministic; timings are not.
#[derive(Serialize)]
struct RmqDimResult {
    tables: usize,
    /// Cost-vector dimension of the synthetic model.
    dim: usize,
    seed: u64,
    iterations: u64,
    elapsed_ms: f64,
    iters_per_sec: f64,
    frontier_size: usize,
    cache_plans: usize,
}

#[derive(Serialize)]
struct RmqResult {
    tables: usize,
    metrics: usize,
    seed: u64,
    /// Anytime trajectory: cumulative elapsed time and result-set shape at
    /// each iteration checkpoint. The non-timing fields are deterministic.
    checkpoints: Vec<RmqCheckpoint>,
    median_path_length: f64,
    cache_table_sets: usize,
    cache_plans: usize,
    /// Session-arena occupancy after the run (schema v2; deterministic).
    arena_nodes: usize,
    /// Session-arena interning dedup rate (schema v2; deterministic).
    arena_dedup_rate: f64,
}

#[derive(Serialize)]
struct RmqCheckpoint {
    iterations: u64,
    elapsed_ms: f64,
    frontier_size: usize,
}

/// One `ParRmq` thread-scaling entry (schema v3). Live-mode fields are
/// timing-dependent (not gated); `det_*` fields come from a deterministic-
/// reduction run with the same total iteration budget and are bit-for-bit
/// reproducible — `bench_diff` gates them exactly. Hypervolumes at one
/// `tables` size share one reference point (the componentwise max over all
/// deterministic frontiers of that size, × 1.1), so they are comparable
/// across thread counts.
#[derive(Serialize)]
struct ParRmqResult {
    tables: usize,
    threads: usize,
    seed: u64,
    /// Live-mode iterations completed (== the configured budget).
    iterations: u64,
    elapsed_ms: f64,
    /// The headline scaling number: live-mode iterations per second.
    iters_per_sec: f64,
    live_frontier_size: usize,
    live_hypervolume: f64,
    /// Exchange-overhead counters of the live run (see `ExchangeStats`).
    exchange_publishes: u64,
    exchange_offered: u64,
    exchange_merged: u64,
    exchange_epochs: u64,
    exchange_absorbed: u64,
    /// Partial-plan (sub-query frontier) exchange counters (schema v6).
    exchange_partial_offered: u64,
    exchange_partial_merged: u64,
    exchange_partial_epochs: u64,
    exchange_partial_table_sets: usize,
    /// Deterministic-mode structural fields (gated exactly).
    det_iterations: u64,
    det_frontier_size: usize,
    det_hypervolume: f64,
}

/// One configuration of the oversubscribed workload (schema v6): total
/// throughput plus the p99 time-to-first-frontier across sessions —
/// queueing delay included, so oversubscription shows up as tail latency.
#[derive(Serialize)]
struct ExecPoolRun {
    elapsed_ms: f64,
    total_iterations: u64,
    iters_per_sec: f64,
    p99_ttff_ms: f64,
}

/// The oversubscribed mixed-width workload (schema v6): `sessions`
/// sessions alternating fan-out 1 and `wide_fan_out`, run once as root
/// tasks on a shared `pool_workers`-wide work-stealing executor and once
/// as one scoped OS thread per session (the pre-executor configuration,
/// each wide session spawning its own private fan-out threads). Timing
/// fields are machine-dependent; the counter fields depend on scheduling
/// and are reported for visibility, not gated bit-for-bit.
#[derive(Serialize)]
struct ExecPoolReport {
    sessions: usize,
    pool_workers: usize,
    wide_fan_out: usize,
    iterations_per_session: u64,
    pooled: ExecPoolRun,
    scoped: ExecPoolRun,
    /// Pooled over scoped iters/sec (> 1 means the executor wins).
    pooled_vs_scoped_iters_per_sec: f64,
    /// `exec_pool.*` registry deltas around the pooled run.
    pool_batches: u64,
    pool_steals: u64,
    pool_donations: u64,
    /// `exchange.backoff_level` gauge after the pooled run.
    exchange_backoff_level: u64,
}

/// Times `op` over `rounds` rounds of `ops_per_round` operations each and
/// returns the best-observed ns/op (minimum is the standard low-noise
/// estimator for microbenchmarks).
fn time_ns_per_op(
    name: &str,
    rounds: u32,
    ops_per_round: u64,
    mut op: impl FnMut(),
) -> MicroResult {
    // One untimed warm-up round.
    op();
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        op();
        let ns = start.elapsed().as_nanos() as f64 / ops_per_round as f64;
        best = best.min(ns);
    }
    MicroResult {
        name: name.to_string(),
        ops_per_round,
        rounds,
        ns_per_op: best,
    }
}

/// Structural equality of two `Arc<Plan>` trees — the deep comparison the
/// arena replaces with a `PlanId` integer compare.
fn deep_eq(a: &PlanRef, b: &PlanRef) -> bool {
    match (a.kind(), b.kind()) {
        (PlanKind::Scan { table: ta, op: oa }, PlanKind::Scan { table: tb, op: ob }) => {
            ta == tb && oa == ob
        }
        (
            PlanKind::Join {
                outer: ao,
                inner: ai,
                op: oa,
            },
            PlanKind::Join {
                outer: bo,
                inner: bi,
                op: ob,
            },
        ) => oa == ob && deep_eq(ao, bo) && deep_eq(ai, bi),
        _ => false,
    }
}

/// A deterministic uniform cost stream (single format) for the archive
/// screening kernels: `len` vectors of `dim` metrics in `[0.1, 100.1)`.
fn screen_stream(len: usize, dim: usize, seed: u64) -> Vec<CostVector> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let v: Vec<f64> = (0..dim)
                .map(|_| rng.random::<f64>() * 100.0 + 0.1)
                .collect();
            CostVector::new(&v)
        })
        .collect()
}

/// An anti-correlated cost stream: points near the simplex
/// `Σ c_k = 50·dim` with coordinates in `[1, 100)`. Nearly every pair is
/// incomparable, so the exact Pareto archive keeps almost the whole
/// stream — the adversarial case for frontier cardinality.
fn anti_correlated_stream(len: usize, dim: usize, seed: u64) -> Vec<CostVector> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let total = 50.0 * dim as f64;
    (0..len)
        .map(|_| {
            let mut v: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 99.0 + 1.0).collect();
            let sum: f64 = v.iter().sum();
            let scale = total / sum;
            for c in &mut v {
                *c = (*c * scale).clamp(1.0, 100.0);
            }
            CostVector::new(&v)
        })
        .collect()
}

/// Builds the archive-size-vs-ε curve: the same anti-correlated d=8
/// stream admitted under the exact rule and under ε-box archives of
/// increasing coarseness. Fully deterministic.
fn run_eps_archive(quick: bool) -> EpsArchiveReport {
    let dim = 8usize;
    let stream_len = if quick { 1024 } else { 4096 };
    let costs = anti_correlated_stream(stream_len, dim, 23);
    let archive_of = |admission: &Admission| {
        let mut set: ParetoSet<u32> = ParetoSet::new();
        for c in &costs {
            set.admit(c, OutputFormat(0), admission, || 0u32);
        }
        let screen = set.take_screen_counters();
        (set.len(), screen.eps_rejects)
    };
    let (exact_size, _) = archive_of(&Admission::exact());
    let points: Vec<EpsArchivePoint> = [1.1f64, 1.25, 1.5, 2.0, 4.0, 8.0]
        .into_iter()
        .map(|eps| {
            let (archive_size, eps_rejects) =
                archive_of(&Admission::eps_box(EpsFactors::splat(eps)));
            EpsArchivePoint {
                eps,
                archive_size,
                eps_rejects,
            }
        })
        .collect();
    let coarsest = points.last().map_or(1, |p| p.archive_size).max(1);
    EpsArchiveReport {
        dim,
        stream_len,
        exact_size,
        points,
        exact_blowup: exact_size as f64 / coarsest as f64,
    }
}

/// The end-to-end dimension sweep: RMQ under the paper configuration on
/// the synthetic `StubModel::line` workload at d ∈ {2,4,6,8,10}.
fn run_rmq_dim(quick: bool) -> Vec<RmqDimResult> {
    let (tables, iterations): (usize, u64) = if quick { (10, 20) } else { (12, 100) };
    let seed = 42u64;
    [2usize, 4, 6, 8, 10]
        .into_iter()
        .map(|dim| {
            let model = StubModel::line(tables, dim, seed);
            let query = TableSet::prefix(tables);
            let mut rmq = Rmq::new(&model, query, RmqConfig::seeded(seed));
            let start = Instant::now();
            for _ in 0..iterations {
                rmq.iterate();
            }
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            RmqDimResult {
                tables,
                dim,
                seed,
                iterations,
                elapsed_ms,
                iters_per_sec: iterations as f64 / (elapsed_ms / 1e3),
                frontier_size: rmq.frontier().len(),
                cache_plans: rmq.cache().total_plans(),
            }
        })
        .collect()
}

fn run_micro(quick: bool) -> (Vec<MicroResult>, Speedups, ArenaReport) {
    let rounds: u32 = if quick { 5 } else { 30 };
    let mut out = Vec::new();

    // 1. Raw dominance relations (dim 4).
    let pairs = cost_pairs(1024, 4, 11);
    out.push(time_ns_per_op(
        "dominance_strict_d4",
        rounds,
        pairs.len() as u64,
        || {
            let mut n = 0usize;
            for (a, b) in &pairs {
                n += usize::from(a.strictly_dominates(b));
            }
            std::hint::black_box(n);
        },
    ));

    // 2. Pareto insertion, bucketed vs. linear, identical streams. Four
    // metrics keep a large mutually incomparable frontier alive — the
    // many-objective regime (arXiv:1404.0046) that motivates fast
    // dominance rejection.
    let stream = candidate_stream(1024, 4, 4, 13);
    let ops = stream.len() as u64;
    out.push(time_ns_per_op(
        "insert_approx_bucketed",
        rounds,
        ops,
        || {
            let mut set = ParetoSet::new();
            for p in &stream {
                set.insert(p.clone(), &Admission::approx(1.0));
            }
            std::hint::black_box(set.len());
        },
    ));
    out.push(time_ns_per_op("insert_approx_linear", rounds, ops, || {
        let mut set = LinearParetoSet::new();
        for p in &stream {
            set.admit(p.clone(), &Admission::approx(1.0));
        }
        std::hint::black_box(set.len());
    }));
    out.push(time_ns_per_op("insert_climb_bucketed", rounds, ops, || {
        let mut set = ParetoSet::new();
        for p in &stream {
            set.insert(p.clone(), &Admission::climb(PrunePolicy::KeepIncomparable));
        }
        std::hint::black_box(set.len());
    }));
    out.push(time_ns_per_op("insert_climb_linear", rounds, ops, || {
        let mut set = LinearParetoSet::new();
        for p in &stream {
            set.admit(p.clone(), &Admission::climb(PrunePolicy::KeepIncomparable));
        }
        std::hint::black_box(set.len());
    }));

    // 2b. Archive dominance screening across dimensions: the block SoA
    // kernel inside `ParetoSet` vs the legacy scalar per-member loop
    // (aggregate-key filter + component-wise dominance over a flat
    // `Vec<CostVector>`), both building an exact archive from the same
    // uniform single-format stream. Uniform costs at d ≥ 4 are almost all
    // mutually incomparable, so the archive approaches the stream length —
    // the many-objective regime the SoA layout targets.
    for dim in [2usize, 4, 6, 8, 10] {
        let costs = screen_stream(1024, dim, 19);
        let ops = costs.len() as u64;
        out.push(time_ns_per_op(
            &format!("dominance_screen_scalar_d{dim}"),
            rounds,
            ops,
            || {
                let mut archive: Vec<(CostVector, f64)> = Vec::new();
                for c in &costs {
                    let key = c.agg_key();
                    if archive.iter().any(|(m, mk)| *mk <= key && m.dominates(c)) {
                        continue;
                    }
                    archive.retain(|(m, mk)| !(*mk >= key && c.dominates(m)));
                    archive.push((*c, key));
                }
                std::hint::black_box(archive.len());
            },
        ));
        out.push(time_ns_per_op(
            &format!("dominance_screen_soa_d{dim}"),
            rounds,
            ops,
            || {
                let mut set: ParetoSet<u32> = ParetoSet::new();
                for c in &costs {
                    set.admit(c, OutputFormat(0), &Admission::exact(), || 0u32);
                }
                std::hint::black_box(set.len());
            },
        ));
    }

    // 3. One ParetoStep with reused scratch on a 50-table cycle query.
    let (model, query) = resource_model(if quick { 20 } else { 50 });
    let plan = random_plan(&model, query, &mut StdRng::seed_from_u64(2));
    let mut scratch = StepScratch::default();
    out.push(time_ns_per_op("climb_step", rounds.min(10), 1, || {
        std::hint::black_box(pareto_step_with(
            &plan,
            &model,
            PrunePolicy::OnePerFormat,
            MutationSet::Bushy,
            &mut scratch,
        ));
    }));

    // 4. Plan representation: hash-consed arena vs Arc<Plan> trees, on the
    // paper-shaped kernels the arena was built for. All three pairs run the
    // 1024-candidate stream of a 12-table cycle workload.
    let (pmodel, pquery) = resource_model(12);
    const PLAN_STREAM: u64 = 1024;

    // 4a. Build: 1024 uniform random plans. The arena is created once and
    // reused across rounds — the per-session steady state, where repeated
    // subplans are intern hits instead of fresh Arc allocations.
    out.push(time_ns_per_op(
        "plan_build_arc",
        rounds,
        PLAN_STREAM,
        || {
            let mut rng = StdRng::seed_from_u64(31);
            let mut plans = Vec::with_capacity(PLAN_STREAM as usize);
            for _ in 0..PLAN_STREAM {
                plans.push(random_plan(&pmodel, pquery, &mut rng));
            }
            std::hint::black_box(plans.len());
        },
    ));
    let mut build_arena = PlanArena::new();
    out.push(time_ns_per_op(
        "plan_build_arena",
        rounds,
        PLAN_STREAM,
        || {
            let mut rng = StdRng::seed_from_u64(31);
            let mut plans = Vec::with_capacity(PLAN_STREAM as usize);
            for _ in 0..PLAN_STREAM {
                plans.push(random_plan_in(&mut build_arena, &pmodel, pquery, &mut rng));
            }
            std::hint::black_box(plans.len());
        },
    ));
    let arena_report = ArenaReport {
        nodes: build_arena.stats().nodes,
        dedup_hits: build_arena.stats().dedup_hits,
        dedup_rate: build_arena.stats().dedup_rate(),
    };

    // 4b. Mutate: enumerate every root mutation (operator changes,
    // commutativity, rotations, exchanges) of each plan in the same
    // 1024-candidate stream — the transformation-rule kernel under every
    // climbing step. The Arc path costs and allocates a fresh tree root
    // per candidate every time; the arena path interns each candidate once
    // and afterwards answers it with a hash probe returning the cached
    // properties (memoized costing via hash-consing).
    let mutate_stream: Vec<PlanRef> = {
        let mut rng = StdRng::seed_from_u64(33);
        (0..PLAN_STREAM)
            .map(|_| random_plan(&pmodel, pquery, &mut rng))
            .collect()
    };
    let mutate_rounds = rounds.min(10);
    let mut arc_muts: Vec<PlanRef> = Vec::new();
    out.push(time_ns_per_op(
        "plan_mutate_arc",
        mutate_rounds,
        PLAN_STREAM,
        || {
            let mut total = 0usize;
            for plan in &mutate_stream {
                arc_muts.clear();
                moqo_core::mutations::root_mutations(plan, &pmodel, &mut arc_muts);
                total += arc_muts.len();
            }
            std::hint::black_box(total);
        },
    ));
    let mut mutate_arena = PlanArena::new();
    let mutate_ids: Vec<_> = mutate_stream
        .iter()
        .map(|p| mutate_arena.import(p))
        .collect();
    let mut arena_muts: Vec<moqo_core::arena::PlanId> = Vec::new();
    out.push(time_ns_per_op(
        "plan_mutate_arena",
        mutate_rounds,
        PLAN_STREAM,
        || {
            let mut total = 0usize;
            for &id in &mutate_ids {
                arena_muts.clear();
                moqo_core::mutations::root_mutations_in(
                    &mut mutate_arena,
                    id,
                    &pmodel,
                    &mut arena_muts,
                );
                total += arena_muts.len();
            }
            std::hint::black_box(total);
        },
    ));

    // 4c. Equality/hash: structural comparison of adjacent plans in the
    // stream — a deep tree walk for Arc, an integer compare for PlanIds.
    let eq_plans: Vec<PlanRef> = {
        let mut rng = StdRng::seed_from_u64(35);
        // Few tables → frequent structural collisions keep the comparison
        // honest (equal pairs must walk the whole Arc tree).
        let (m, q) = resource_model(6);
        (0..PLAN_STREAM)
            .map(|_| random_plan(&m, q, &mut rng))
            .collect()
    };
    let mut eq_arena = PlanArena::new();
    let eq_ids: Vec<_> = eq_plans.iter().map(|p| eq_arena.import(p)).collect();
    out.push(time_ns_per_op("plan_eq_arc", rounds, PLAN_STREAM, || {
        let mut n = 0usize;
        for w in eq_plans.windows(2) {
            n += usize::from(deep_eq(&w[0], &w[1]));
        }
        std::hint::black_box(n);
    }));
    out.push(time_ns_per_op("plan_eq_arena", rounds, PLAN_STREAM, || {
        let mut n = 0usize;
        for w in eq_ids.windows(2) {
            n += usize::from(w[0] == w[1]);
        }
        std::hint::black_box(n);
    }));

    let ns = |name: &str| {
        out.iter()
            .find(|m| m.name == name)
            .map(|m| m.ns_per_op)
            .unwrap_or(f64::NAN)
    };
    let speedups = Speedups {
        insert_approx_bucketed_vs_linear: ns("insert_approx_linear") / ns("insert_approx_bucketed"),
        insert_climb_bucketed_vs_linear: ns("insert_climb_linear") / ns("insert_climb_bucketed"),
        plan_build_arena_vs_arc: ns("plan_build_arc") / ns("plan_build_arena"),
        plan_mutate_arena_vs_arc: ns("plan_mutate_arc") / ns("plan_mutate_arena"),
        plan_eq_arena_vs_arc: ns("plan_eq_arc") / ns("plan_eq_arena"),
        dominance_soa_vs_scalar_d8: ns("dominance_screen_scalar_d8")
            / ns("dominance_screen_soa_d8"),
    };
    (out, speedups, arena_report)
}

/// Reduces an optimizer's convergence checkpoints to the schema-v7 curve:
/// a running hypervolume against a reference point derived from the curve
/// itself (componentwise max over every checkpointed cost, × 1.1). All
/// non-timing outputs are deterministic for a fixed-seed fixture.
fn reduce_convergence(tables: usize, seed: u64, points: &[ConvergencePoint]) -> ConvergenceFixture {
    let dim = points
        .iter()
        .flat_map(|p| p.frontier_costs.iter())
        .map(|c| c.dim())
        .next()
        .unwrap_or(0);
    let mut upper = vec![f64::NEG_INFINITY; dim];
    for p in points {
        for cost in &p.frontier_costs {
            for (u, v) in upper.iter_mut().zip(cost.as_slice()) {
                *u = u.max(*v);
            }
        }
    }
    let mut out = ConvergenceFixture {
        tables,
        seed,
        points: Vec::with_capacity(points.len()),
        final_hypervolume: 0.0,
        time_to_90_ms: None,
    };
    if dim == 0 || upper.iter().any(|u| !u.is_finite()) {
        return out;
    }
    let reference = CostVector::new(&upper).scale(1.1);
    let mut tracker = HvTracker::new(reference);
    let mut curve = Vec::with_capacity(points.len());
    for p in points {
        tracker.insert_all(&p.frontier_costs);
        let hv = tracker.hypervolume();
        curve.push((p.elapsed.as_secs_f64(), hv));
        out.points.push(ConvergenceCheckpoint {
            iteration: p.iteration,
            elapsed_ms: p.elapsed.as_secs_f64() * 1e3,
            frontier_size: p.frontier_size,
            hypervolume: hv,
        });
    }
    out.final_hypervolume = out.points.last().map_or(0.0, |p| p.hypervolume);
    out.time_to_90_ms = time_to_fraction(&curve, 0.9).map(|s| s * 1e3);
    out
}

fn run_rmq(quick: bool) -> (Vec<RmqResult>, Vec<ObsFixture>, Vec<ConvergenceFixture>) {
    let configs: &[(usize, u64)] = if quick {
        &[(15, 40)]
    } else {
        &[(20, 200), (30, 100)]
    };
    let mut results = Vec::new();
    let mut obs_fixtures = Vec::new();
    let mut convergence = Vec::new();
    for &(tables, iterations) in configs {
        let (model, query) = resource_model(tables);
        let seed = 42u64;
        let obs_before = moqo_obs::ObsSnapshot::capture();
        let mut rmq = Rmq::new(&model, query, RmqConfig::seeded(seed));
        let mut checkpoints = Vec::new();
        let marks: Vec<u64> = [10u64, 25, 50, 100, 200]
            .into_iter()
            .filter(|&m| m <= iterations)
            .collect();
        let start = Instant::now();
        for i in 1..=iterations {
            rmq.iterate();
            if marks.contains(&i) || i == iterations {
                checkpoints.push(RmqCheckpoint {
                    iterations: i,
                    elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
                    frontier_size: rmq.frontier().len(),
                });
            }
        }
        checkpoints.dedup_by_key(|c| c.iterations);
        // The optimizer sampled its own exponentially spaced convergence
        // checkpoints during the loop; force one final sample so the curve
        // ends at the delivered frontier, then reduce it (schema v7).
        rmq.sample_convergence_now();
        convergence.push(reduce_convergence(tables, seed, rmq.convergence_points()));
        // This run is sequential and only `Rmq::iterate` flushes climb and
        // arena counters, so the registry delta around it is exact.
        let obs_after = moqo_obs::ObsSnapshot::capture();
        let delta = |name: &str| obs_after.counter(name) - obs_before.counter(name);
        obs_fixtures.push(ObsFixture {
            tables,
            seed,
            iterations: delta("rmq.iterations"),
            climb_candidates: delta("climb.candidates"),
            climb_agg_key_skips: delta("climb.agg_key_skips"),
            climb_dominance_tests: delta("climb.dominance_tests"),
            climb_rejected: delta("climb.rejected"),
            climb_admitted: delta("climb.admitted"),
            climb_evicted: delta("climb.evicted"),
            pareto_blocks_screened: delta("pareto.blocks_screened"),
            pareto_eps_rejects: delta("pareto.eps_rejects"),
            pareto_archive_size: obs_after.counter("pareto.archive_size"),
            arena_interns: delta("arena.interns"),
            arena_dedup_hits: delta("arena.dedup_hits"),
        });
        results.push(RmqResult {
            tables,
            metrics: 2,
            seed,
            checkpoints,
            median_path_length: rmq.stats().median_path_length().unwrap_or(0.0),
            cache_table_sets: rmq.cache().num_table_sets(),
            cache_plans: rmq.cache().total_plans(),
            arena_nodes: rmq.arena().stats().nodes,
            arena_dedup_rate: rmq.arena().stats().dedup_rate(),
        });
    }
    (results, obs_fixtures, convergence)
}

/// Runs the `ParRmq` thread-scaling kernels on the standard bench fixture:
/// the n=20 cycle workload (n=15 in quick mode), two metrics, at 1/2/4/8
/// threads (1/2 in quick mode), all under the same total iteration budget.
fn run_par_rmq(quick: bool) -> Vec<ParRmqResult> {
    let (tables, iterations): (usize, u64) = if quick { (15, 40) } else { (20, 200) };
    let threads: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let seed = 42u64;
    let (model, query) = resource_model(tables);
    let model = std::sync::Arc::new(model);

    // Deterministic-mode runs first: their frontiers fix the shared
    // hypervolume reference point for this fixture.
    let det_frontiers: Vec<Vec<PlanRef>> = threads
        .iter()
        .map(|&t| {
            let cfg = ParRmqConfig::seeded(seed, t).deterministic();
            let mut par = ParRmq::new(std::sync::Arc::clone(&model), query, cfg);
            par.optimize(Budget::Iterations(iterations));
            par.frontier()
        })
        .collect();
    let dim = det_frontiers[0][0].cost().dim();
    let mut reference = vec![0.0f64; dim];
    for frontier in &det_frontiers {
        for plan in frontier {
            for (k, r) in reference.iter_mut().enumerate() {
                *r = r.max(plan.cost()[k]);
            }
        }
    }
    let reference = CostVector::new(&reference).scale(1.1);
    let hv = |plans: &[PlanRef]| {
        let costs: Vec<CostVector> = plans.iter().map(|p| *p.cost()).collect();
        hypervolume(&costs, &reference)
    };

    threads
        .iter()
        .zip(det_frontiers)
        .map(|(&t, det_frontier)| {
            let mut par = ParRmq::new(
                std::sync::Arc::clone(&model),
                query,
                ParRmqConfig::seeded(seed, t),
            );
            let start = Instant::now();
            let stats = par.optimize(Budget::Iterations(iterations));
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            let live_frontier = par.frontier();
            let ex = stats.exchange;
            ParRmqResult {
                tables,
                threads: t,
                seed,
                iterations: stats.iterations,
                elapsed_ms,
                iters_per_sec: stats.iterations as f64 / (elapsed_ms / 1e3),
                live_frontier_size: live_frontier.len(),
                live_hypervolume: hv(&live_frontier),
                exchange_publishes: ex.publishes,
                exchange_offered: ex.offered,
                exchange_merged: ex.merged,
                exchange_epochs: ex.epochs,
                exchange_absorbed: ex.absorbed,
                exchange_partial_offered: ex.partial_offered,
                exchange_partial_merged: ex.partial_merged,
                exchange_partial_epochs: ex.partial_epochs,
                exchange_partial_table_sets: ex.partial_table_sets,
                det_iterations: iterations,
                det_frontier_size: det_frontier.len(),
                det_hypervolume: hv(&det_frontier),
            }
        })
        .collect()
}

/// One session of the oversubscribed workload: a short first slice bounds
/// the time-to-first-frontier (one climb round per worker), then the rest
/// of the budget runs out. `started` is the workload epoch, so TTFF
/// includes queueing delay. Whether the session fans out on the shared
/// executor or on private scoped threads is decided by where this runs —
/// on a pool worker `ParRmq` takes its pooled path, off-pool the scoped
/// one.
fn exec_pool_session(
    model: std::sync::Arc<moqo_cost::ResourceCostModel>,
    query: TableSet,
    seed: u64,
    fan_out: usize,
    per_session: u64,
    started: Instant,
) -> (std::time::Duration, u64) {
    let mut cfg = ParRmqConfig::seeded(seed, fan_out);
    cfg.batch = 8;
    let first_slice = (cfg.batch * fan_out as u64).min(per_session);
    let mut par = ParRmq::new(model, query, cfg);
    let s1 = par.optimize(Budget::Iterations(first_slice));
    let ttff = started.elapsed();
    let s2 = par.optimize(Budget::Iterations(per_session - s1.iterations));
    (ttff, s1.iterations + s2.iterations)
}

/// p99 of a duration sample in milliseconds (nearest-rank; with 16
/// sessions this is the slowest observation — exactly the tail the
/// executor is meant to fix).
fn p99_ms(samples: &mut [std::time::Duration]) -> f64 {
    samples.sort_unstable();
    let idx = ((samples.len() as f64 * 0.99).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[idx].as_secs_f64() * 1e3
}

/// The oversubscribed mixed-width workload: 16 sessions (8 in quick
/// mode), fan-out alternating 1 and 4, on a 4-worker shared executor vs
/// one OS thread per session with private scoped fan-out threads.
fn run_exec_pool(quick: bool) -> ExecPoolReport {
    use moqo_parallel::{ExecPool, TaskSpec, TaskStatus};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    let (tables, sessions, pool_workers, per_session): (usize, usize, usize, u64) = if quick {
        (12, 8, 2, 48)
    } else {
        (15, 16, 4, 240)
    };
    let wide_fan_out = 4usize;
    let seed = 42u64;
    let (model, query) = resource_model(tables);
    let model = Arc::new(model);
    let fan_out_of = move |i: usize| if i % 2 == 0 { 1 } else { wide_fan_out };

    // Scoped baseline first, so it cannot touch the executor counters the
    // pooled run is measured by.
    let scoped = {
        let started = Instant::now();
        let results: Vec<(std::time::Duration, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..sessions)
                .map(|i| {
                    let model = Arc::clone(&model);
                    scope.spawn(move || {
                        exec_pool_session(
                            model,
                            query,
                            seed + i as u64,
                            fan_out_of(i),
                            per_session,
                            started,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        let total_iterations: u64 = results.iter().map(|(_, i)| i).sum();
        let mut ttffs: Vec<_> = results.iter().map(|(t, _)| *t).collect();
        ExecPoolRun {
            elapsed_ms,
            total_iterations,
            iters_per_sec: total_iterations as f64 / (elapsed_ms / 1e3),
            p99_ttff_ms: p99_ms(&mut ttffs),
        }
    };

    let obs_before = moqo_obs::ObsSnapshot::capture();
    let pooled = {
        let pool = ExecPool::new(pool_workers);
        let results: Arc<Mutex<Vec<(std::time::Duration, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let finished = Arc::new(AtomicUsize::new(0));
        let started = Instant::now();
        for i in 0..sessions {
            let model = Arc::clone(&model);
            let results = Arc::clone(&results);
            let finished = Arc::clone(&finished);
            let mut run = Some(move || {
                exec_pool_session(
                    model,
                    query,
                    seed + i as u64,
                    fan_out_of(i),
                    per_session,
                    started,
                )
            });
            pool.handle().spawn(TaskSpec::root(), move || {
                let run = run.take().expect("session task runs once");
                results.lock().unwrap().push(run());
                finished.fetch_add(1, Ordering::SeqCst);
                TaskStatus::Done
            });
        }
        // The bench thread never helps: helping would run sessions off
        // the pool and silently fall back to the scoped path.
        while finished.load(Ordering::SeqCst) < sessions {
            std::thread::yield_now();
        }
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        let results = results.lock().unwrap();
        let total_iterations: u64 = results.iter().map(|(_, i)| i).sum();
        let mut ttffs: Vec<_> = results.iter().map(|(t, _)| *t).collect();
        ExecPoolRun {
            elapsed_ms,
            total_iterations,
            iters_per_sec: total_iterations as f64 / (elapsed_ms / 1e3),
            p99_ttff_ms: p99_ms(&mut ttffs),
        }
    };
    let obs_after = moqo_obs::ObsSnapshot::capture();
    let delta = |name: &str| obs_after.counter(name) - obs_before.counter(name);

    ExecPoolReport {
        sessions,
        pool_workers,
        wide_fan_out,
        iterations_per_session: per_session,
        pooled_vs_scoped_iters_per_sec: pooled.iters_per_sec / scoped.iters_per_sec,
        pooled,
        scoped,
        pool_batches: delta("exec_pool.batches"),
        pool_steals: delta("exec_pool.steals"),
        pool_donations: delta("exec_pool.donations"),
        exchange_backoff_level: obs_after.counter("exchange.backoff_level"),
    }
}

/// Per-shard live-session cap of the front-door replay. Small enough that
/// saturation (not quota) is the shed mechanism under test, large enough
/// to absorb a zipf-hot tenant's arrival bursts while the degradation
/// ladder (whose thresholds are fractions of this cap) drains the queue.
const FRONTDOOR_SHARD_CAP: usize = 32;

/// The front-door replay's session budget.
const FRONTDOOR_BUDGET: Budget = Budget::Iterations(8);

/// Builds the replay's front door: `shards` single-worker shards with a
/// small live-session cap and a tight TTFF SLO (so the SLO-driven
/// `CoarseEps` tier engages alongside the pressure-driven tiers).
fn frontdoor_door(shards: usize, cap: usize, degrade_enabled: bool) -> moqo_frontdoor::FrontDoor {
    use moqo_frontdoor::{DegradationConfig, FrontDoor, FrontDoorConfig};
    use moqo_service::{AdmissionConfig, ServiceConfig, SloConfig};
    FrontDoor::new(FrontDoorConfig {
        shards,
        shard: ServiceConfig {
            workers: 1,
            admission: AdmissionConfig {
                max_live_sessions: cap,
                ..AdmissionConfig::default()
            },
            slo: SloConfig {
                ttff_p99: Some(std::time::Duration::from_millis(25)),
                ..SloConfig::default()
            },
            ..ServiceConfig::default()
        },
        degradation: DegradationConfig {
            enabled: degrade_enabled,
            ..DegradationConfig::default()
        },
        ..FrontDoorConfig::default()
    })
}

/// Measures the full-precision per-session drain time on this machine:
/// `n` distinct-key sessions through a single-worker door (serial service),
/// run twice — the first pass is warm-up — returning wall time per session.
fn frontdoor_calibrate(
    sessions: &[moqo_workload::SessionPlan],
    model: &std::sync::Arc<moqo_cost::ResourceCostModel>,
    n: usize,
) -> std::time::Duration {
    use moqo_frontdoor::FrontRequest;
    let n = n.min(sessions.len()).max(1);
    let mut per_session = std::time::Duration::ZERO;
    for pass in 0..2 {
        let door = frontdoor_door(1, n, false);
        let start = Instant::now();
        let mut handles = Vec::new();
        for (i, session) in sessions[..n].iter().enumerate() {
            let tables = session.query.tables();
            let request = FrontRequest {
                tenant: i as u64,
                query: tables,
                // Distinct contexts defeat coalescing: every request must
                // become (and drain as) its own session.
                context: i as u64,
                budget: FRONTDOOR_BUDGET,
            };
            let admitted = door
                .submit(request, |_| {
                    Box::new(Rmq::new(
                        std::sync::Arc::clone(model),
                        tables,
                        RmqConfig::seeded(i as u64),
                    ))
                })
                .expect("calibration session admitted");
            handles.push(admitted.handle);
        }
        for handle in &handles {
            handle
                .wait_done(std::time::Duration::from_secs(600))
                .expect("calibration session completes");
        }
        if pass == 1 {
            per_session = start.elapsed() / n as u32;
        }
        door.shutdown();
    }
    per_session.max(std::time::Duration::from_micros(1))
}

/// Replays one skewed session stream through a front door and reduces the
/// outcome to a [`FrontdoorRun`].
///
/// The submitter paces *session demand*, not raw requests: coalesced
/// requests pass through for free (they join an in-flight session), while
/// every non-coalesced outcome — a new session or a shed — waits one
/// `pace` interval. With `pace` derived from the calibrated full-precision
/// drain time (see [`frontdoor_calibrate`]), demand is pinned above the
/// plain door's capacity but below what the degradation ladder's reduced
/// budgets can drain — which is exactly the degrade-before-shed contract
/// the two runs compare.
fn run_frontdoor_once(
    sessions: &[moqo_workload::SessionPlan],
    model: &std::sync::Arc<moqo_cost::ResourceCostModel>,
    context: u64,
    shards: usize,
    pace: std::time::Duration,
    degrade_enabled: bool,
) -> FrontdoorRun {
    use moqo_core::archive::ArchiveConfig;
    use moqo_frontdoor::FrontRequest;

    let door = frontdoor_door(shards, FRONTDOOR_SHARD_CAP, degrade_enabled);
    let start = Instant::now();
    let mut next_arrival = start + pace;
    let mut handles = Vec::new();
    for (i, session) in sessions.iter().enumerate() {
        let tables = session.query.tables();
        let request = FrontRequest {
            tenant: session.tenant,
            query: tables,
            context,
            budget: FRONTDOOR_BUDGET,
        };
        let outcome = door.submit(request, |grant| {
            let mut cfg = RmqConfig::seeded(i as u64);
            if let Some(eps) = grant.eps {
                cfg.archive = ArchiveConfig::eps_box(EpsFactors::splat(eps));
            }
            Box::new(Rmq::new(std::sync::Arc::clone(model), tables, cfg))
        });
        let coalesced = match outcome {
            Ok(admitted) => {
                let coalesced = admitted.coalesced;
                // Coalesced handles share their leader's session; waiting
                // on them twice is cheap.
                handles.push(admitted.handle);
                coalesced
            }
            Err(_) => false,
        };
        if !coalesced {
            // Yield-wait: `pace` is far below sleep granularity, and on a
            // host with fewer cores than shards a spinning submitter would
            // starve the very workers it is pacing against.
            while Instant::now() < next_arrival {
                std::thread::yield_now();
            }
            next_arrival += pace;
        }
    }
    for handle in &handles {
        handle
            .wait_done(std::time::Duration::from_secs(600))
            .expect("front-door session completes");
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    let ttff = |p: &dyn Fn(&moqo_service::ServiceStats) -> Option<std::time::Duration>| {
        door.shard_stats()
            .iter()
            .filter_map(p)
            .max()
            .map_or(0.0, |d| d.as_secs_f64() * 1e3)
    };
    let stats = door.stats();
    let run = FrontdoorRun {
        elapsed_ms,
        offered: stats.offered,
        admitted: stats.admitted,
        coalesced: stats.coalesced,
        degraded: stats.degraded,
        shed: stats.shed,
        shed_per_mille: stats.shed_per_mille(),
        coalesce_per_mille: stats.coalesce_per_mille(),
        degraded_per_mille: (stats.degraded * 1000)
            .checked_div(stats.offered)
            .unwrap_or(0),
        ttff_p50_ms: ttff(&|s| s.ttff_p50),
        ttff_p99_ms: ttff(&|s| s.ttff_p99),
    };
    door.shutdown();
    run
}

/// The heavy-traffic front-door replay (schema v8): a zipfian-skewed
/// multi-tenant stream (100k sessions in full mode) replayed twice —
/// degradation ladder on vs off — through otherwise identical front doors.
fn run_frontdoor(quick: bool) -> FrontdoorReport {
    use moqo_service::context_fingerprint;
    use moqo_workload::{GraphShape, SelectivityMethod, TrafficSpec};

    let (sessions, tenants, shards, templates): (usize, usize, usize, usize) = if quick {
        (8_000, 16, 2, 12)
    } else {
        (100_000, 64, 4, 24)
    };
    let (tenant_skew, query_skew) = (1.0f64, 1.0f64);
    let seed = 42u64;
    let spec = TrafficSpec {
        catalog_tables: 12,
        shape: GraphShape::Chain,
        selectivity: SelectivityMethod::Steinbrunn,
        queries: sessions,
        min_query_tables: 3,
        max_query_tables: 5,
        seed,
    };
    let (catalog, stream) = spec.generate_skewed(tenants, tenant_skew, templates, query_skew);
    let metrics = [
        moqo_cost::ResourceMetric::Time,
        moqo_cost::ResourceMetric::Buffer,
    ];
    let model = std::sync::Arc::new(moqo_cost::ResourceCostModel::new(
        std::sync::Arc::clone(&catalog),
        &metrics,
    ));
    let context = context_fingerprint(catalog.fingerprint(), "resource:time,buffer");

    // Deterministic traffic-shape stats: the gated evidence the generated
    // stream is actually skewed.
    let mut tenant_counts = std::collections::HashMap::new();
    let mut template_counts = std::collections::HashMap::new();
    for s in &stream {
        *tenant_counts.entry(s.tenant).or_insert(0u64) += 1;
        *template_counts.entry(s.query.tables()).or_insert(0u64) += 1;
    }
    fn top_per_mille<K>(counts: &std::collections::HashMap<K, u64>, total: usize) -> u64 {
        counts.values().copied().max().unwrap_or(0) * 1000 / total.max(1) as u64
    }

    // Calibrate the full-precision drain time on this machine, then pin
    // session demand at 1.5x the plain door's aggregate capacity: above
    // what full-precision sessions can drain, below what the ladder's
    // halved budgets can. Capacity scales with *effective* worker
    // parallelism — on a host with fewer cores than shards the workers
    // timeshare, so pacing against `shards` alone would bury both runs.
    let calib_n = if quick { 32 } else { 64 };
    let per_session = frontdoor_calibrate(&stream, &model, calib_n);
    let effective_workers = shards.min(std::thread::available_parallelism().map_or(1, |n| n.get()));
    let pace = per_session.div_f64(1.5 * effective_workers as f64);

    let degraded_run = run_frontdoor_once(&stream, &model, context, shards, pace, true);
    let plain_run = run_frontdoor_once(&stream, &model, context, shards, pace, false);
    let ratio = if plain_run.shed_per_mille == 0 {
        1.0
    } else {
        degraded_run.shed_per_mille as f64 / plain_run.shed_per_mille as f64
    };
    FrontdoorReport {
        sessions,
        tenants,
        shards,
        templates,
        seed,
        tenant_skew,
        query_skew,
        top_tenant_per_mille: top_per_mille(&tenant_counts, sessions),
        top_template_per_mille: top_per_mille(&template_counts, sessions),
        distinct_templates: template_counts.len(),
        degraded_run,
        plain_run,
        degraded_vs_plain_shed: ratio,
    }
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_rmq.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path argument");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!("usage: harness [--quick] [--out PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "perf-baseline harness ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let (micro, speedups, arena) = run_micro(quick);
    for m in &micro {
        eprintln!("  {:<28} {:>12.1} ns/op", m.name, m.ns_per_op);
    }
    eprintln!(
        "  insert_approx speedup (bucketed vs linear): {:.2}x",
        speedups.insert_approx_bucketed_vs_linear
    );
    eprintln!(
        "  insert_climb  speedup (bucketed vs linear): {:.2}x",
        speedups.insert_climb_bucketed_vs_linear
    );
    eprintln!(
        "  plan_build  speedup (arena vs Arc): {:.2}x   plan_mutate: {:.2}x   plan_eq: {:.2}x",
        speedups.plan_build_arena_vs_arc,
        speedups.plan_mutate_arena_vs_arc,
        speedups.plan_eq_arena_vs_arc
    );
    eprintln!(
        "  dominance_screen speedup (SoA vs scalar, d=8): {:.2}x",
        speedups.dominance_soa_vs_scalar_d8
    );
    eprintln!(
        "  arena build kernel: {} nodes, dedup rate {:.1}%",
        arena.nodes,
        arena.dedup_rate * 100.0
    );
    let eps_archive = run_eps_archive(quick);
    eprintln!(
        "  eps_archive d={} stream={}: exact {} survivors vs ε-bounded {:?} ({:.1}x blowup)",
        eps_archive.dim,
        eps_archive.stream_len,
        eps_archive.exact_size,
        eps_archive
            .points
            .iter()
            .map(|p| p.archive_size)
            .collect::<Vec<_>>(),
        eps_archive.exact_blowup,
    );
    let (rmq, obs, convergence) = run_rmq(quick);
    for r in &rmq {
        let last = r.checkpoints.last().expect("at least one checkpoint");
        eprintln!(
            "  rmq n={:<3} {} iters in {:.1} ms ({:.1} iters/s), frontier {}, cache {} plans",
            r.tables,
            last.iterations,
            last.elapsed_ms,
            last.iterations as f64 / (last.elapsed_ms / 1e3),
            last.frontier_size,
            r.cache_plans
        );
    }
    for o in &obs {
        eprintln!(
            "  obs n={:<3} {} candidates: {} agg-key skips, {} dominance tests, \
             {} rejected, {} admitted, {} evicted; arena {} interns / {} dedup hits",
            o.tables,
            o.climb_candidates,
            o.climb_agg_key_skips,
            o.climb_dominance_tests,
            o.climb_rejected,
            o.climb_admitted,
            o.climb_evicted,
            o.arena_interns,
            o.arena_dedup_hits,
        );
    }
    for c in &convergence {
        eprintln!(
            "  convergence n={:<3} {} checkpoints at iters {:?}, final hv {:.3e}, tt90 {}",
            c.tables,
            c.points.len(),
            c.points.iter().map(|p| p.iteration).collect::<Vec<_>>(),
            c.final_hypervolume,
            c.time_to_90_ms
                .map_or("-".to_string(), |ms| format!("{ms:.2} ms")),
        );
    }
    let rmq_dim = run_rmq_dim(quick);
    for r in &rmq_dim {
        eprintln!(
            "  rmq_dim n={} d={:<2} {} iters in {:.1} ms, frontier {}, cache {} plans",
            r.tables, r.dim, r.iterations, r.elapsed_ms, r.frontier_size, r.cache_plans
        );
    }
    let par_rmq = run_par_rmq(quick);
    let base_rate = par_rmq.first().map_or(f64::NAN, |p| p.iters_per_sec);
    for p in &par_rmq {
        eprintln!(
            "  par_rmq n={} t={} {:.1} iters/s ({:.2}x vs 1 thread), det frontier {} (hv {:.3e}), exchange {}+{} merged/absorbed",
            p.tables,
            p.threads,
            p.iters_per_sec,
            p.iters_per_sec / base_rate,
            p.det_frontier_size,
            p.det_hypervolume,
            p.exchange_merged,
            p.exchange_absorbed,
        );
    }

    let exec_pool = run_exec_pool(quick);
    eprintln!(
        "  exec_pool {} sessions (fan-out 1/{}) on {} workers: pooled {:.1} iters/s \
         (p99 ttff {:.1} ms) vs scoped {:.1} iters/s (p99 ttff {:.1} ms) = {:.2}x; \
         {} batches, {} steals, {} donations, backoff level {}",
        exec_pool.sessions,
        exec_pool.wide_fan_out,
        exec_pool.pool_workers,
        exec_pool.pooled.iters_per_sec,
        exec_pool.pooled.p99_ttff_ms,
        exec_pool.scoped.iters_per_sec,
        exec_pool.scoped.p99_ttff_ms,
        exec_pool.pooled_vs_scoped_iters_per_sec,
        exec_pool.pool_batches,
        exec_pool.pool_steals,
        exec_pool.pool_donations,
        exec_pool.exchange_backoff_level,
    );

    let frontdoor = run_frontdoor(quick);
    eprintln!(
        "  frontdoor {} sessions / {} tenants / {} shards / {} templates \
         (top tenant {}‰, top template {}‰): degraded run {} coalesced, {} degraded, \
         {}‰ shed vs plain {}‰ shed ({:.2}x)",
        frontdoor.sessions,
        frontdoor.tenants,
        frontdoor.shards,
        frontdoor.templates,
        frontdoor.top_tenant_per_mille,
        frontdoor.top_template_per_mille,
        frontdoor.degraded_run.coalesced,
        frontdoor.degraded_run.degraded,
        frontdoor.degraded_run.shed_per_mille,
        frontdoor.plain_run.shed_per_mille,
        frontdoor.degraded_vs_plain_shed,
    );

    let baseline = Baseline {
        schema_version: SCHEMA_VERSION,
        mode: if quick { "quick" } else { "full" }.to_string(),
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        micro,
        speedups,
        arena,
        eps_archive,
        rmq,
        rmq_dim,
        par_rmq,
        exec_pool,
        obs,
        convergence,
        frontdoor,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&out_path, json + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
}
