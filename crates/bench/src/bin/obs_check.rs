//! Validates a telemetry snapshot emitted by `serve --obs-json` (or any
//! `moqo_obs::ObsSnapshot::to_json` output): well-formed JSON, the
//! expected schema version, the registry's counter/histogram layout, and
//! — when counters are required — nonzero activity on the named seams.
//! Optionally also validates a causal span trace (`--trace`, the Chrome
//! trace-event JSON `serve --trace-out` / `optimize --trace-out` write)
//! and the anytime-convergence section of a schema-v7 bench baseline
//! (`--convergence`).
//!
//! Usage:
//!
//! ```text
//! cargo run -p moqo-bench --bin obs_check -- FILE \
//!     [--require COUNTER]... [--events-min N] \
//!     [--trace TRACE.json [--spans-min N]] [--convergence BENCH.json]
//! ```
//!
//! Exit 0 when everything is valid, 1 with one line per violation
//! otherwise. CI's `bench-smoke` job runs it against the snapshot and
//! trace a short `serve` replay produced, requiring the optimizer,
//! exchange, and service seams to have recorded activity.

use serde_json::Value;

/// Validates a Chrome trace-event JSON file: every event carries the
/// writer's fields, complete (`"X"`) events are sorted by timestamp with
/// nonnegative durations, and every nonzero parent reference resolves to a
/// complete event in the file — the causal graph has no dangling edges.
fn check_trace(path: &str, spans_min: u64, violations: &mut Vec<String>) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            violations.push(format!("cannot read trace {path}: {e}"));
            return;
        }
    };
    let trace: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            violations.push(format!("trace {path} is not valid JSON: {e}"));
            return;
        }
    };
    let Some(events) = trace.get("traceEvents").and_then(Value::as_array) else {
        violations.push(format!("trace {path}: missing `traceEvents` array"));
        return;
    };
    if (events.len() as u64) < spans_min {
        violations.push(format!(
            "trace {path}: only {} span(s), need at least {spans_min}",
            events.len()
        ));
    }
    let mut complete_ids = std::collections::HashSet::new();
    let mut last_ts = f64::NEG_INFINITY;
    for event in events {
        let ph = event.get("ph").and_then(Value::as_str).unwrap_or("");
        if !matches!(ph, "X" | "i") {
            violations.push(format!("trace event has unexpected phase `{ph}`: {event}"));
            continue;
        }
        for key in ["name", "ts", "pid", "tid"] {
            if event.get(key).is_none() {
                violations.push(format!("trace event lacks field `{key}`: {event}"));
            }
        }
        let Some(args) = event.get("args") else {
            violations.push(format!("trace event lacks `args`: {event}"));
            continue;
        };
        for key in ["id", "parent", "session", "arg"] {
            if args.get(key).and_then(Value::as_u64).is_none() {
                violations.push(format!("trace event args lack u64 `{key}`: {event}"));
            }
        }
        let ts = event.get("ts").and_then(Value::as_f64).unwrap_or(-1.0);
        if ts < last_ts {
            violations.push(format!(
                "trace events not sorted by timestamp: {ts} after {last_ts}"
            ));
        }
        last_ts = ts;
        if ph == "X" {
            if event
                .get("dur")
                .and_then(Value::as_f64)
                .is_none_or(|d| d < 0.0)
            {
                violations.push(format!("complete trace event lacks `dur` >= 0: {event}"));
            }
            if let Some(id) = args.get("id").and_then(Value::as_u64) {
                complete_ids.insert(id);
            }
        }
    }
    for event in events {
        let parent = event
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        if parent != 0 && !complete_ids.contains(&parent) {
            violations.push(format!(
                "trace event parent {parent} resolves to no complete span: {event}"
            ));
        }
    }
}

/// Validates the `convergence` section of a schema-v7 bench baseline:
/// present and nonempty, strictly increasing iteration marks, and a
/// nondecreasing hypervolume curve ending at `final_hypervolume` — the
/// anytime guarantee, checked on the emitted artifact.
fn check_convergence(path: &str, violations: &mut Vec<String>) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            violations.push(format!("cannot read baseline {path}: {e}"));
            return;
        }
    };
    let bench: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            violations.push(format!("baseline {path} is not valid JSON: {e}"));
            return;
        }
    };
    if bench
        .get("schema_version")
        .and_then(Value::as_u64)
        .is_none_or(|v| v < 7)
    {
        violations.push(format!(
            "baseline {path}: schema_version must be >= 7 for a convergence section"
        ));
    }
    let Some(fixtures) = bench.get("convergence").and_then(Value::as_array) else {
        violations.push(format!("baseline {path}: missing `convergence` array"));
        return;
    };
    if fixtures.is_empty() {
        violations.push(format!("baseline {path}: `convergence` is empty"));
    }
    for fixture in fixtures {
        let tables = fixture.get("tables").and_then(Value::as_u64).unwrap_or(0);
        let tag = format!("convergence(tables={tables})");
        let Some(points) = fixture.get("points").and_then(Value::as_array) else {
            violations.push(format!("{tag}: missing `points` array"));
            continue;
        };
        if points.is_empty() {
            violations.push(format!("{tag}: no checkpoints"));
            continue;
        }
        let mut last_iter = 0u64;
        let mut last_hv = f64::NEG_INFINITY;
        for p in points {
            let iter = p.get("iteration").and_then(Value::as_u64).unwrap_or(0);
            if iter <= last_iter && last_iter != 0 {
                violations.push(format!(
                    "{tag}: iteration marks not strictly increasing at {iter}"
                ));
            }
            last_iter = iter;
            let hv = p
                .get("hypervolume")
                .and_then(Value::as_f64)
                .unwrap_or(f64::NAN);
            if hv.is_nan() || hv < 0.0 {
                violations.push(format!("{tag} @{iter}: hypervolume {hv} is not >= 0"));
            }
            if hv < last_hv {
                violations.push(format!(
                    "{tag} @{iter}: hypervolume regressed ({hv} < {last_hv}) — \
                     the anytime curve must be nondecreasing"
                ));
            }
            last_hv = hv;
            if p.get("frontier_size").and_then(Value::as_u64).is_none() {
                violations.push(format!("{tag} @{iter}: missing u64 `frontier_size`"));
            }
            if p.get("elapsed_ms").and_then(Value::as_f64).is_none() {
                violations.push(format!("{tag} @{iter}: missing `elapsed_ms`"));
            }
        }
        let final_hv = fixture
            .get("final_hypervolume")
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN);
        if final_hv != last_hv {
            violations.push(format!(
                "{tag}: final_hypervolume {final_hv} != last checkpoint {last_hv}"
            ));
        }
    }
}

/// Schema version `ObsSnapshot::to_json` emits (see `moqo-obs`).
const OBS_SCHEMA: u64 = 1;

fn main() {
    let mut path = None;
    let mut required: Vec<String> = Vec::new();
    let mut events_min: u64 = 0;
    let mut trace_path: Option<String> = None;
    let mut spans_min: u64 = 1;
    let mut convergence_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} requires an argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--require" => required.push(take("--require")),
            "--events-min" => {
                events_min = take("--events-min").parse().unwrap_or_else(|_| {
                    eprintln!("--events-min must be a number");
                    std::process::exit(2);
                })
            }
            "--trace" => trace_path = Some(take("--trace")),
            "--spans-min" => {
                spans_min = take("--spans-min").parse().unwrap_or_else(|_| {
                    eprintln!("--spans-min must be a number");
                    std::process::exit(2);
                })
            }
            "--convergence" => convergence_path = Some(take("--convergence")),
            "--help" | "-h" => {
                println!(
                    "usage: obs_check FILE [--require COUNTER]... [--events-min N] \
                     [--trace TRACE.json] [--spans-min N] [--convergence BENCH.json]"
                );
                return;
            }
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("obs_check: a snapshot FILE is required (see --help)");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let snap: Value = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("obs_check: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });

    let mut violations: Vec<String> = Vec::new();

    if snap.get("schema").and_then(Value::as_u64) != Some(OBS_SCHEMA) {
        violations.push(format!(
            "schema must be {OBS_SCHEMA}, got {:?}",
            snap.get("schema")
        ));
    }
    let counters = snap.get("counters").and_then(Value::as_object);
    match counters {
        None => violations.push("missing `counters` object".to_string()),
        Some(counters) => {
            for (name, value) in counters {
                if value.as_u64().is_none() {
                    violations.push(format!("counter `{name}` is not a u64: {value:?}"));
                }
            }
            for name in &required {
                let value = counters
                    .iter()
                    .find(|(k, _)| k == name)
                    .and_then(|(_, v)| v.as_u64());
                match value {
                    None => violations.push(format!("required counter `{name}` is missing")),
                    Some(0) => violations.push(format!(
                        "required counter `{name}` is zero — that seam recorded no activity"
                    )),
                    Some(_) => {}
                }
            }
        }
    }
    match snap.get("histograms").and_then(Value::as_object) {
        None => violations.push("missing `histograms` object".to_string()),
        Some(histograms) => {
            for (name, h) in histograms {
                for key in ["count", "sum", "max", "p50", "p90", "p99"] {
                    if h.get(key).and_then(Value::as_u64).is_none() {
                        violations.push(format!("histogram `{name}` lacks u64 field `{key}`"));
                    }
                }
            }
        }
    }
    match snap.get("events").and_then(Value::as_array) {
        None => violations.push("missing `events` array".to_string()),
        Some(events) => {
            if (events.len() as u64) < events_min {
                violations.push(format!(
                    "only {} events recorded, need at least {events_min}",
                    events.len()
                ));
            }
            for event in events {
                for key in ["seq", "level", "target", "kind"] {
                    if event.get(key).is_none() {
                        violations.push(format!("event lacks field `{key}`: {event}"));
                    }
                }
            }
        }
    }

    if let Some(trace) = &trace_path {
        check_trace(trace, spans_min, &mut violations);
    }
    if let Some(bench) = &convergence_path {
        check_convergence(bench, &mut violations);
    }

    if violations.is_empty() {
        let n_counters = counters.map_or(0, |c| c.len());
        let extras = [
            trace_path.as_deref().map(|t| format!("trace {t}")),
            convergence_path
                .as_deref()
                .map(|b| format!("convergence {b}")),
        ]
        .into_iter()
        .flatten()
        .collect::<Vec<_>>()
        .join(", ");
        if extras.is_empty() {
            eprintln!("obs_check: OK — {path} valid ({n_counters} counters)");
        } else {
            eprintln!("obs_check: OK — {path} valid ({n_counters} counters); {extras}");
        }
    } else {
        eprintln!("obs_check: {} violation(s) in {path}:", violations.len());
        for v in &violations {
            eprintln!("  ✗ {v}");
        }
        std::process::exit(1);
    }
}
