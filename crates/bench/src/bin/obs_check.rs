//! Validates a telemetry snapshot emitted by `serve --obs-json` (or any
//! `moqo_obs::ObsSnapshot::to_json` output): well-formed JSON, the
//! expected schema version, the registry's counter/histogram layout, and
//! — when counters are required — nonzero activity on the named seams.
//!
//! Usage:
//!
//! ```text
//! cargo run -p moqo-bench --bin obs_check -- FILE \
//!     [--require COUNTER]... [--events-min N]
//! ```
//!
//! Exit 0 when the snapshot is valid, 1 with one line per violation
//! otherwise. CI's `bench-smoke` job runs it against the snapshot a short
//! `serve --obs-json` replay produced, requiring the optimizer, exchange,
//! and service seams to have recorded activity.

use serde_json::Value;

/// Schema version `ObsSnapshot::to_json` emits (see `moqo-obs`).
const OBS_SCHEMA: u64 = 1;

fn main() {
    let mut path = None;
    let mut required: Vec<String> = Vec::new();
    let mut events_min: u64 = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} requires an argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--require" => required.push(take("--require")),
            "--events-min" => {
                events_min = take("--events-min").parse().unwrap_or_else(|_| {
                    eprintln!("--events-min must be a number");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!("usage: obs_check FILE [--require COUNTER]... [--events-min N]");
                return;
            }
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("obs_check: a snapshot FILE is required (see --help)");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let snap: Value = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("obs_check: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });

    let mut violations: Vec<String> = Vec::new();

    if snap.get("schema").and_then(Value::as_u64) != Some(OBS_SCHEMA) {
        violations.push(format!(
            "schema must be {OBS_SCHEMA}, got {:?}",
            snap.get("schema")
        ));
    }
    let counters = snap.get("counters").and_then(Value::as_object);
    match counters {
        None => violations.push("missing `counters` object".to_string()),
        Some(counters) => {
            for (name, value) in counters {
                if value.as_u64().is_none() {
                    violations.push(format!("counter `{name}` is not a u64: {value:?}"));
                }
            }
            for name in &required {
                let value = counters
                    .iter()
                    .find(|(k, _)| k == name)
                    .and_then(|(_, v)| v.as_u64());
                match value {
                    None => violations.push(format!("required counter `{name}` is missing")),
                    Some(0) => violations.push(format!(
                        "required counter `{name}` is zero — that seam recorded no activity"
                    )),
                    Some(_) => {}
                }
            }
        }
    }
    match snap.get("histograms").and_then(Value::as_object) {
        None => violations.push("missing `histograms` object".to_string()),
        Some(histograms) => {
            for (name, h) in histograms {
                for key in ["count", "sum", "max", "p50", "p90", "p99"] {
                    if h.get(key).and_then(Value::as_u64).is_none() {
                        violations.push(format!("histogram `{name}` lacks u64 field `{key}`"));
                    }
                }
            }
        }
    }
    match snap.get("events").and_then(Value::as_array) {
        None => violations.push("missing `events` array".to_string()),
        Some(events) => {
            if (events.len() as u64) < events_min {
                violations.push(format!(
                    "only {} events recorded, need at least {events_min}",
                    events.len()
                ));
            }
            for event in events {
                for key in ["seq", "level", "target", "kind"] {
                    if event.get(key).is_none() {
                        violations.push(format!("event lacks field `{key}`: {event}"));
                    }
                }
            }
        }
    }

    if violations.is_empty() {
        let n_counters = counters.map_or(0, |c| c.len());
        eprintln!("obs_check: OK — {path} valid ({n_counters} counters)");
    } else {
        eprintln!("obs_check: {} violation(s) in {path}:", violations.len());
        for v in &violations {
            eprintln!("  ✗ {v}");
        }
        std::process::exit(1);
    }
}
