//! Shared fixtures for the benchmark targets (`benches/`) and the
//! deterministic perf-baseline harness (`src/bin/harness.rs`).
//!
//! Everything here is seeded and deterministic: the same inputs drive the
//! Criterion micro-benchmarks and the `BENCH_rmq.json` baseline runs, so
//! numbers from either source are comparable across PRs.

use moqo_core::cost::CostVector;
use moqo_core::model::{OutputFormat, PlanProps, ScanOpId};
use moqo_core::plan::{Plan, PlanRef};
use moqo_core::{TableId, TableSet};
use moqo_cost::{ResourceCostModel, ResourceMetric};
use moqo_workload::{GraphShape, SelectivityMethod, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The standard benchmark workload: an `n`-table cycle query over the
/// time/buffer resource cost model (the two-metric configuration of the
/// paper's main figures), deterministically seeded.
pub fn resource_model(n: usize) -> (ResourceCostModel, TableSet) {
    let (catalog, query) = WorkloadSpec {
        tables: n,
        shape: GraphShape::Cycle,
        selectivity: SelectivityMethod::Steinbrunn,
        seed: 7,
    }
    .generate();
    (
        ResourceCostModel::new(catalog, &[ResourceMetric::Time, ResourceMetric::Buffer]),
        query.tables(),
    )
}

/// The three-metric variant of [`resource_model`] (time/buffer/disk): the
/// paper's many-objective configuration, used where heavier cost vectors
/// matter (e.g. the arena-vs-Arc mutate kernel).
pub fn resource_model_3d(n: usize) -> (ResourceCostModel, TableSet) {
    let (catalog, query) = WorkloadSpec {
        tables: n,
        shape: GraphShape::Cycle,
        selectivity: SelectivityMethod::Steinbrunn,
        seed: 7,
    }
    .generate();
    (
        ResourceCostModel::new(
            catalog,
            &[
                ResourceMetric::Time,
                ResourceMetric::Buffer,
                ResourceMetric::Disk,
            ],
        ),
        query.tables(),
    )
}

/// A deterministic stream of fabricated plans with random cost vectors and
/// output formats — the candidate stream for the Pareto-insert benches.
///
/// The plans are single-scan nodes built through `Plan::scan_from_props`
/// (the pruning structures read only cost and format, so the tree shape is
/// irrelevant); costs are uniform in `[0.1, 100.1)` per metric, which keeps
/// a large mutually incomparable frontier alive and makes the insert path —
/// not trivial rejections — the measured work.
pub fn candidate_stream(len: usize, dim: usize, formats: u8, seed: u64) -> Vec<PlanRef> {
    assert!(formats >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let cost: Vec<f64> = (0..dim)
                .map(|_| rng.random::<f64>() * 100.0 + 0.1)
                .collect();
            let format = OutputFormat(rng.random_range(0..formats));
            Plan::scan_from_props(
                TableId::new(0),
                ScanOpId(0),
                PlanProps {
                    cost: CostVector::new(&cost),
                    rows: 1.0,
                    pages: 1.0,
                    format,
                },
            )
        })
        .collect()
}

/// Deterministic pairs of random cost vectors for dominance-relation
/// benches.
pub fn cost_pairs(len: usize, dim: usize, seed: u64) -> Vec<(CostVector, CostVector)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let draw = |rng: &mut StdRng| {
        let v: Vec<f64> = (0..dim)
            .map(|_| rng.random::<f64>() * 100.0 + 0.1)
            .collect();
        CostVector::new(&v)
    };
    (0..len).map(|_| (draw(&mut rng), draw(&mut rng))).collect()
}
