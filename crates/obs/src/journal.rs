//! The structured event journal: a bounded ring buffer of typed events
//! behind a packed atomic target/severity filter.
//!
//! The design goal is the `StopFlag` property: a **disabled** journal
//! site costs one relaxed atomic load and an untaken branch — no lock, no
//! allocation, no event construction. The filter packs a 16-bit target
//! mask and the minimum severity into one `AtomicU32`, so
//! [`enabled`] is a single load plus two integer tests, and the
//! event-construction closure passed to [`emit_with`] only runs when the
//! site is live. Enabled events go into a global ring of [`capacity`]
//! entries ([`JOURNAL_CAPACITY`] by default, overridable at runtime via
//! [`set_capacity`] or `MOQO_JOURNAL_CAPACITY`); when full, the oldest
//! event is overwritten (sequence numbers expose the gap).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::ctx::{self, Ctx};

/// Event severity, ordered `Debug < Info < Warn`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// High-frequency detail (per-iteration events).
    Debug = 0,
    /// Milestones: publishes, session lifecycle, plan executions.
    Info = 1,
    /// Anomalies worth surfacing even in quiet runs.
    Warn = 2,
}

impl Level {
    /// Short lowercase name (`"debug"`, `"info"`, `"warn"`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// Subsystem an event belongs to; each target is one bit in the filter
/// mask so tracing can be scoped to the seams under investigation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Target {
    /// The Pareto climb loop and RMQ iterations.
    Climb = 0,
    /// Plan-arena interning.
    Arena = 1,
    /// Shared-frontier exchange between intra-query workers.
    Exchange = 2,
    /// The cross-query plan cache.
    Cache = 3,
    /// Service admission control.
    Admission = 4,
    /// Service session lifecycle and scheduling.
    Service = 5,
    /// The execution engine.
    Exec = 6,
    /// The multi-tenant front door: shard routing, request coalescing,
    /// per-tenant quotas, and SLO-aware degradation.
    Frontdoor = 7,
}

impl Target {
    /// All targets, in bit order.
    pub const ALL: [Target; 8] = [
        Target::Climb,
        Target::Arena,
        Target::Exchange,
        Target::Cache,
        Target::Admission,
        Target::Service,
        Target::Exec,
        Target::Frontdoor,
    ];

    /// Short lowercase name (`"climb"`, `"exchange"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Target::Climb => "climb",
            Target::Arena => "arena",
            Target::Exchange => "exchange",
            Target::Cache => "cache",
            Target::Admission => "admission",
            Target::Service => "service",
            Target::Exec => "exec",
            Target::Frontdoor => "frontdoor",
        }
    }

    /// This target's bit in the filter mask.
    #[inline]
    pub const fn bit(self) -> u32 {
        1 << (self as u32)
    }
}

/// What happened. Variants are plain integers (plus `&'static str`
/// labels), so constructing one never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// One RMQ iteration finished (target [`Target::Climb`], `Debug`).
    Iteration {
        /// Mutation candidates the climb generated.
        mutations: u64,
        /// Candidates admitted into climb frontiers.
        admitted: u64,
        /// Candidates rejected as dominated or duplicate.
        rejected: u64,
        /// Result-frontier size after the iteration.
        frontier: u64,
    },
    /// A worker published its local frontier to the shared frontier.
    ExchangePublish {
        /// Plans offered in this publish.
        offered: u64,
        /// Plans admitted into the global frontier.
        merged: u64,
        /// Global snapshot epoch after the publish.
        epoch: u64,
    },
    /// A worker absorbed the global snapshot into its local state.
    ExchangeAbsorb {
        /// Epoch of the snapshot absorbed.
        epoch: u64,
        /// Plans adopted from it.
        absorbed: u64,
    },
    /// A cross-query cache lookup resolved.
    CacheLookup {
        /// Whether any warm-start plans were found.
        hit: bool,
        /// Plans returned.
        plans: u64,
    },
    /// A session was admitted.
    SessionSubmitted {
        /// Worker slots the session reserved (its fan-out).
        fan_out: u64,
        /// Plans absorbed from the cache at warm start.
        warm_plans: u64,
    },
    /// A submission was rejected by admission control.
    SessionRejected {
        /// Which admission bound rejected it.
        reason: &'static str,
    },
    /// A session was stepped for the first time.
    SessionFirstStep {
        /// Queue delay (submission → first step) in microseconds.
        delay_us: u64,
    },
    /// A session finished.
    SessionDone {
        /// Optimizer steps it ran.
        steps: u64,
        /// Why it finished.
        reason: &'static str,
        /// Time to first frontier in microseconds, if one was produced.
        ttff_us: Option<u64>,
    },
    /// A physical plan finished executing.
    ExecFinished {
        /// Tuples processed across all operators.
        tuples: u64,
        /// Rows spilled under memory grants.
        spilled: u64,
    },
    /// A tenant's admission token bucket ran dry and the request was
    /// shed (target [`Target::Frontdoor`], `Warn`).
    QuotaBreach {
        /// The tenant whose quota was exhausted.
        tenant: u64,
        /// Requests this tenant has had shed by quota so far.
        shed: u64,
    },
    /// A front-door shard changed its degradation level (target
    /// [`Target::Frontdoor`], `Warn` when escalating, `Info` on recovery).
    DegradeTransition {
        /// The shard whose admission ladder moved.
        shard: u64,
        /// Previous level (0 full, 1 coarse ε, 2 reduced budget).
        from: u64,
        /// New level.
        to: u64,
    },
    /// A request was coalesced onto an in-flight identical optimization
    /// (target [`Target::Frontdoor`], `Debug`).
    SessionCoalesced {
        /// The subscribing tenant.
        tenant: u64,
        /// Frontier epoch of the leader session at join time.
        epoch: u64,
    },
    /// A free-form static note (used by examples and tests).
    Note(&'static str),
}

impl EventKind {
    fn describe(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Iteration {
                mutations,
                admitted,
                rejected,
                frontier,
            } => write!(
                f,
                "iteration: {mutations} mutations, {admitted} admitted, \
                 {rejected} rejected, frontier={frontier}"
            ),
            EventKind::ExchangePublish {
                offered,
                merged,
                epoch,
            } => write!(
                f,
                "publish: offered {offered}, merged {merged}, epoch {epoch}"
            ),
            EventKind::ExchangeAbsorb { epoch, absorbed } => {
                write!(f, "absorb: epoch {epoch}, {absorbed} plans")
            }
            EventKind::CacheLookup { hit, plans } => {
                let outcome = if *hit { "hit" } else { "miss" };
                write!(f, "cache {outcome}: {plans} plans")
            }
            EventKind::SessionSubmitted {
                fan_out,
                warm_plans,
            } => write!(f, "submitted: fan_out {fan_out}, warm {warm_plans}"),
            EventKind::SessionRejected { reason } => write!(f, "rejected: {reason}"),
            EventKind::SessionFirstStep { delay_us } => {
                write!(f, "first step after {delay_us}us queued")
            }
            EventKind::SessionDone {
                steps,
                reason,
                ttff_us,
            } => {
                write!(f, "done ({reason}): {steps} steps, ttff ")?;
                match ttff_us {
                    Some(us) => write!(f, "{us}us"),
                    None => write!(f, "-"),
                }
            }
            EventKind::ExecFinished { tuples, spilled } => {
                write!(f, "executed: {tuples} tuples, {spilled} spilled")
            }
            EventKind::QuotaBreach { tenant, shed } => {
                write!(f, "quota breach: tenant {tenant}, {shed} shed")
            }
            EventKind::DegradeTransition { shard, from, to } => {
                write!(f, "degrade: shard {shard} level {from} -> {to}")
            }
            EventKind::SessionCoalesced { tenant, epoch } => {
                write!(f, "coalesced: tenant {tenant} at epoch {epoch}")
            }
            EventKind::Note(note) => write!(f, "{note}"),
        }
    }

    fn json_fields(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            EventKind::Iteration {
                mutations,
                admitted,
                rejected,
                frontier,
            } => {
                let _ = write!(
                    out,
                    "\"kind\":\"iteration\",\"mutations\":{mutations},\
                     \"admitted\":{admitted},\"rejected\":{rejected},\
                     \"frontier\":{frontier}"
                );
            }
            EventKind::ExchangePublish {
                offered,
                merged,
                epoch,
            } => {
                let _ = write!(
                    out,
                    "\"kind\":\"exchange_publish\",\"offered\":{offered},\
                     \"merged\":{merged},\"epoch\":{epoch}"
                );
            }
            EventKind::ExchangeAbsorb { epoch, absorbed } => {
                let _ = write!(
                    out,
                    "\"kind\":\"exchange_absorb\",\"epoch\":{epoch},\
                     \"absorbed\":{absorbed}"
                );
            }
            EventKind::CacheLookup { hit, plans } => {
                let _ = write!(
                    out,
                    "\"kind\":\"cache_lookup\",\"hit\":{hit},\"plans\":{plans}"
                );
            }
            EventKind::SessionSubmitted {
                fan_out,
                warm_plans,
            } => {
                let _ = write!(
                    out,
                    "\"kind\":\"session_submitted\",\"fan_out\":{fan_out},\
                     \"warm_plans\":{warm_plans}"
                );
            }
            EventKind::SessionRejected { reason } => {
                let _ = write!(out, "\"kind\":\"session_rejected\",\"reason\":\"{reason}\"");
            }
            EventKind::SessionFirstStep { delay_us } => {
                let _ = write!(
                    out,
                    "\"kind\":\"session_first_step\",\"delay_us\":{delay_us}"
                );
            }
            EventKind::SessionDone {
                steps,
                reason,
                ttff_us,
            } => {
                let _ = write!(
                    out,
                    "\"kind\":\"session_done\",\"steps\":{steps},\
                     \"reason\":\"{reason}\",\"ttff_us\":"
                );
                match ttff_us {
                    Some(us) => {
                        let _ = write!(out, "{us}");
                    }
                    None => out.push_str("null"),
                }
            }
            EventKind::ExecFinished { tuples, spilled } => {
                let _ = write!(
                    out,
                    "\"kind\":\"exec_finished\",\"tuples\":{tuples},\
                     \"spilled\":{spilled}"
                );
            }
            EventKind::QuotaBreach { tenant, shed } => {
                let _ = write!(
                    out,
                    "\"kind\":\"quota_breach\",\"tenant\":{tenant},\"shed\":{shed}"
                );
            }
            EventKind::DegradeTransition { shard, from, to } => {
                let _ = write!(
                    out,
                    "\"kind\":\"degrade_transition\",\"shard\":{shard},\
                     \"from\":{from},\"to\":{to}"
                );
            }
            EventKind::SessionCoalesced { tenant, epoch } => {
                let _ = write!(
                    out,
                    "\"kind\":\"session_coalesced\",\"tenant\":{tenant},\
                     \"epoch\":{epoch}"
                );
            }
            EventKind::Note(note) => {
                out.push_str("\"kind\":\"note\",\"note\":\"");
                crate::snapshot::escape_json_into(note, out);
                out.push('"');
            }
        }
    }
}

/// One journal entry: sequence number, severity, target, ambient
/// [`Ctx`], and the typed payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number across the process (gaps mean the ring
    /// overwrote events between two reads).
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Subsystem.
    pub target: Target,
    /// Ambient thread context at emission time.
    pub ctx: Ctx,
    /// The typed payload.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>6}] {:<5} {:<9}",
            self.seq,
            self.level.name(),
            self.target.name()
        )?;
        if self.ctx.session != 0 {
            write!(f, " s{}", self.ctx.session)?;
        }
        if self.ctx.worker != 0 {
            write!(f, " w{}", self.ctx.worker)?;
        }
        if self.ctx.iteration != 0 {
            write!(f, " i{}", self.ctx.iteration)?;
        }
        if self.ctx.epoch != 0 {
            write!(f, " e{}", self.ctx.epoch)?;
        }
        write!(f, " | ")?;
        self.kind.describe(f)
    }
}

impl Event {
    /// Renders this event as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        self.write_json(&mut out);
        out
    }

    pub(crate) fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"seq\":{},\"level\":\"{}\",\"target\":\"{}\",\
             \"session\":{},\"worker\":{},\"iteration\":{},\"epoch\":{},",
            self.seq,
            self.level.name(),
            self.target.name(),
            self.ctx.session,
            self.ctx.worker,
            self.ctx.iteration,
            self.ctx.epoch,
        );
        self.kind.json_fields(out);
        out.push('}');
    }
}

/// Default ring capacity: events retained between drains. Override at
/// runtime with [`set_capacity`] or the `MOQO_JOURNAL_CAPACITY`
/// environment variable; the default keeps the fixed-size fast path.
pub const JOURNAL_CAPACITY: usize = 1024;

/// Effective ring capacity; 0 means "not yet resolved" (env or default).
static CAPACITY: AtomicUsize = AtomicUsize::new(0);

/// Packed filter: low 16 bits are the target mask, bits 16.. hold the
/// minimum level. Zero (empty mask) disables everything — the default.
static FILTER: AtomicU32 = AtomicU32::new(0);

/// Next event sequence number.
static SEQ: AtomicU64 = AtomicU64::new(1);

/// The ring. Only locked on the enabled path — a disabled journal never
/// touches it.
static RING: Mutex<VecDeque<Event>> = Mutex::new(VecDeque::new());

/// Whether events for `(target, level)` are currently recorded. One
/// relaxed load plus two integer tests — the check instrumented hot paths
/// run before constructing anything.
#[inline]
pub fn enabled(target: Target, level: Level) -> bool {
    let f = FILTER.load(Ordering::Relaxed);
    // The mask test fails immediately for the all-zero (disabled) filter.
    f & target.bit() != 0 && (level as u32) >= (f >> 16)
}

/// Enables recording for the given targets at `min_level` and above.
pub fn enable(targets: &[Target], min_level: Level) {
    let mut mask = 0u32;
    for t in targets {
        mask |= t.bit();
    }
    FILTER.store(mask | ((min_level as u32) << 16), Ordering::Relaxed);
}

/// Enables recording for every target at `min_level` and above.
pub fn enable_all(min_level: Level) {
    enable(&Target::ALL, min_level);
}

/// Disables all recording (the default state).
pub fn disable() {
    FILTER.store(0, Ordering::Relaxed);
}

/// Records an event if `(target, level)` is enabled, building the payload
/// only in that case. This is the instrumentation entry point:
///
/// ```
/// use moqo_obs::journal::{self, EventKind, Level, Target};
/// journal::emit_with(Target::Exchange, Level::Info, || EventKind::ExchangePublish {
///     offered: 4,
///     merged: 2,
///     epoch: 1,
/// });
/// ```
#[inline]
pub fn emit_with(target: Target, level: Level, kind: impl FnOnce() -> EventKind) {
    if !enabled(target, level) {
        return;
    }
    record(target, level, kind());
}

/// The effective ring capacity: the last [`set_capacity`] value, else
/// `MOQO_JOURNAL_CAPACITY`, else [`JOURNAL_CAPACITY`]. Only consulted on
/// the (cold) enabled recording path — the disabled fast path never reads
/// it.
pub fn capacity() -> usize {
    let cap = CAPACITY.load(Ordering::Relaxed);
    if cap != 0 {
        return cap;
    }
    let cap = std::env::var("MOQO_JOURNAL_CAPACITY")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(JOURNAL_CAPACITY);
    CAPACITY.store(cap, Ordering::Relaxed);
    cap
}

/// Overrides the ring capacity (clamped to at least 1) and trims the ring
/// if it already holds more than the new bound.
pub fn set_capacity(events: usize) {
    let cap = events.max(1);
    CAPACITY.store(cap, Ordering::Relaxed);
    let mut ring = RING.lock().unwrap();
    while ring.len() > cap {
        ring.pop_front();
    }
}

#[cold]
fn record(target: Target, level: Level, kind: EventKind) {
    let event = Event {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        level,
        target,
        ctx: ctx::current(),
        kind,
    };
    let mut ring = RING.lock().unwrap();
    if ring.len() >= capacity() {
        ring.pop_front();
    }
    ring.push_back(event);
}

/// Copies the current ring contents (oldest first) without draining.
pub fn events() -> Vec<Event> {
    RING.lock().unwrap().iter().copied().collect()
}

/// Removes and returns the current ring contents (oldest first).
pub fn drain() -> Vec<Event> {
    RING.lock().unwrap().drain(..).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as TestMutex, OnceLock};

    /// The journal filter and ring are process-global; tests touching
    /// them serialize here so `cargo test`'s parallel runner cannot
    /// interleave enable/disable/drain sequences.
    fn journal_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<TestMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| TestMutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_filter_blocks_everything() {
        let _guard = journal_lock();
        disable();
        drain();
        assert!(!enabled(Target::Climb, Level::Warn));
        emit_with(Target::Climb, Level::Warn, || {
            panic!("payload must not be built when disabled")
        });
        assert!(events().is_empty());
    }

    #[test]
    fn filter_scopes_by_target_and_level() {
        let _guard = journal_lock();
        enable(&[Target::Exchange], Level::Info);
        assert!(enabled(Target::Exchange, Level::Info));
        assert!(enabled(Target::Exchange, Level::Warn));
        assert!(!enabled(Target::Exchange, Level::Debug));
        assert!(!enabled(Target::Climb, Level::Warn));
        disable();
    }

    #[test]
    fn emitted_events_carry_ctx_and_render() {
        let _guard = journal_lock();
        enable_all(Level::Debug);
        drain();
        crate::ctx::set_session(9);
        crate::ctx::set_iteration(3);
        emit_with(Target::Climb, Level::Debug, || EventKind::Iteration {
            mutations: 12,
            admitted: 2,
            rejected: 10,
            frontier: 5,
        });
        crate::ctx::clear();
        let evs = drain();
        disable();
        assert_eq!(evs.len(), 1);
        let e = evs[0];
        assert_eq!(e.ctx.session, 9);
        assert_eq!(e.ctx.iteration, 3);
        let text = e.to_string();
        assert!(text.contains("s9"), "{text}");
        assert!(text.contains("12 mutations"), "{text}");
        let json = e.to_json();
        assert!(json.contains("\"kind\":\"iteration\""), "{json}");
        assert!(json.contains("\"session\":9"), "{json}");
    }

    #[test]
    fn ring_is_bounded_and_seq_monotone() {
        let _guard = journal_lock();
        enable(&[Target::Arena], Level::Debug);
        drain();
        for _ in 0..(JOURNAL_CAPACITY + 50) {
            emit_with(Target::Arena, Level::Debug, || EventKind::Note("x"));
        }
        let evs = drain();
        disable();
        assert_eq!(evs.len(), JOURNAL_CAPACITY);
        for pair in evs.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn capacity_is_runtime_configurable() {
        let _guard = journal_lock();
        enable(&[Target::Cache], Level::Debug);
        drain();
        set_capacity(4);
        assert_eq!(capacity(), 4);
        for _ in 0..10 {
            emit_with(Target::Cache, Level::Debug, || EventKind::Note("y"));
        }
        let evs = drain();
        // Restore the default before releasing the lock so sibling tests
        // see the documented fixed-size behavior.
        set_capacity(JOURNAL_CAPACITY);
        disable();
        assert_eq!(evs.len(), 4);
        assert_eq!(capacity(), JOURNAL_CAPACITY);
    }

    #[test]
    fn session_done_json_renders_null_ttff() {
        let e = Event {
            seq: 1,
            level: Level::Info,
            target: Target::Service,
            ctx: Ctx::default(),
            kind: EventKind::SessionDone {
                steps: 4,
                reason: "cancelled",
                ttff_us: None,
            },
        };
        assert!(e.to_json().contains("\"ttff_us\":null"));
    }

    #[test]
    fn frontdoor_events_render_text_and_json() {
        let mk = |kind| Event {
            seq: 1,
            level: Level::Warn,
            target: Target::Frontdoor,
            ctx: Ctx::default(),
            kind,
        };
        let q = mk(EventKind::QuotaBreach { tenant: 7, shed: 3 });
        assert!(q.to_string().contains("quota breach: tenant 7"));
        assert!(q.to_json().contains("\"kind\":\"quota_breach\""), "{q}");
        let d = mk(EventKind::DegradeTransition {
            shard: 2,
            from: 0,
            to: 1,
        });
        assert!(d.to_string().contains("shard 2 level 0 -> 1"));
        assert!(d.to_json().contains("\"kind\":\"degrade_transition\""));
        let c = mk(EventKind::SessionCoalesced {
            tenant: 5,
            epoch: 4,
        });
        assert!(c.to_json().contains("\"kind\":\"session_coalesced\""));
        assert_eq!(Target::Frontdoor.name(), "frontdoor");
        assert_eq!(Target::ALL.len(), 8);
        assert_eq!(Target::Frontdoor.bit(), 1 << 7);
    }
}
