//! Causal span tracing: begin/end records for session slices, climb
//! batches, exchange publishes/absorbs, and cache lookups, each carrying a
//! parent link and the worker id that ran it — the timeline complement to
//! the scalar [`crate::metrics`](mod@crate::metrics) registry and the [`crate::journal`].
//!
//! The discipline is the journal's: a **disabled** span site costs one
//! relaxed atomic load and an untaken branch — no clock read, no lock, no
//! id allocation. Enabled spans are completed records (begin timestamp
//! captured at [`begin`], pushed into the ring at [`finish`]) bounded by a
//! runtime-configurable capacity, and exportable as Chrome trace-event
//! JSON that Perfetto / `chrome://tracing` load directly.
//!
//! Parent links cross threads: the ambient current span id is thread-local
//! (see [`current`] / [`set_current`]), and the work-stealing executor
//! captures it at spawn and restores it around every task invocation — so
//! a climb batch stolen by an idle worker still parents to the session
//! span that spawned it. Steals and donations themselves appear as instant
//! records linking the stealing worker to the victim.
//!
//! ```
//! use moqo_obs::spans;
//!
//! spans::enable();
//! let session = spans::begin(spans::SpanKind::Session, spans::SpanId::NONE);
//! let parent = spans::id_of(&session);
//! let batch = spans::begin(spans::SpanKind::Batch, parent);
//! spans::finish(batch);
//! spans::finish(session);
//! let records = spans::drain();
//! spans::disable();
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[0].parent, records[1].id);
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt::Write;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::ctx;
use crate::metrics::metrics;

/// What a span (or instant) covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One optimization session, submission to completion.
    Session,
    /// One scheduling slice of a session on the service executor.
    Slice,
    /// One climb batch (a bounded run of optimizer iterations).
    Batch,
    /// A worker publishing its local frontier to the shared frontier.
    ExchangePublish,
    /// A worker absorbing the shared global snapshot.
    ExchangeAbsorb,
    /// A cross-query plan-cache lookup.
    CacheLookup,
    /// Instant: an idle worker stole a task. `arg` packs the 1-based pool
    /// worker indices as `(stealer + 1) << 32 | (victim + 1)`.
    Steal,
    /// Instant: a waiting helper ran a foreign batch (arg = owning group).
    Donation,
}

impl SpanKind {
    /// Short lowercase name (`"session"`, `"batch"`, …).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Session => "session",
            SpanKind::Slice => "slice",
            SpanKind::Batch => "batch",
            SpanKind::ExchangePublish => "exchange_publish",
            SpanKind::ExchangeAbsorb => "exchange_absorb",
            SpanKind::CacheLookup => "cache_lookup",
            SpanKind::Steal => "steal",
            SpanKind::Donation => "donation",
        }
    }

    /// Whether this kind is a zero-duration instant record.
    pub fn is_instant(self) -> bool {
        matches!(self, SpanKind::Steal | SpanKind::Donation)
    }
}

/// Opaque span identity used for parent links. `NONE` (raw 0) means "no
/// parent" — a root span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The absent span (raw 0): roots parent to this.
    pub const NONE: SpanId = SpanId(0);

    /// The raw id value (0 for `NONE`).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the absent span.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// One completed span (or instant): pushed into the ring at finish time
/// with both endpoints resolved against the process trace epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (process-monotone, never 0).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// What the span covers.
    pub kind: SpanKind,
    /// Session id at begin time (0 outside a session).
    pub session: u64,
    /// Worker id of the thread that ran the span (0 = main/unpinned).
    pub worker: u32,
    /// Begin, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the trace epoch (== `start_ns` for instants).
    pub end_ns: u64,
    /// Kind-specific argument: packed stealer/victim pool-worker indices
    /// for steals, owning group for donations, plans returned for cache
    /// lookups, plans offered / absorbed for exchange spans; 0 otherwise.
    pub arg: u64,
}

/// An in-flight span returned by [`begin`]; carry it (or just its
/// [`id_of`]) to wherever the work ends and [`finish`] it there.
#[derive(Debug)]
pub struct Span {
    id: u64,
    parent: u64,
    kind: SpanKind,
    session: u64,
    start_ns: u64,
    arg: u64,
}

impl Span {
    /// This span's identity, for parenting children.
    pub fn id(&self) -> SpanId {
        SpanId(self.id)
    }

    /// Sets the kind-specific argument recorded at finish.
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

/// Identity of an optional in-flight span ([`SpanId::NONE`] when the span
/// was elided because tracing is disabled).
pub fn id_of(span: &Option<Span>) -> SpanId {
    span.as_ref().map_or(SpanId::NONE, Span::id)
}

/// Default ring capacity: spans retained between drains. Override at
/// runtime with [`set_capacity`] or the `MOQO_SPAN_CAPACITY` environment
/// variable (the same mechanism as the journal's).
pub const SPAN_CAPACITY: usize = 4096;

/// 0 = disabled (the default); the one relaxed load every span site pays.
static ENABLED: AtomicU32 = AtomicU32::new(0);

/// Next span id; ids are never reused and never 0.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Ring capacity; 0 means "not yet resolved" (env var or default).
static CAPACITY: AtomicUsize = AtomicUsize::new(0);

/// The ring. Only locked on the enabled path at finish time.
static RING: Mutex<VecDeque<SpanRecord>> = Mutex::new(VecDeque::new());

thread_local! {
    /// Ambient current span id: the parent for spans begun on this thread.
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// The process trace epoch all span timestamps are relative to; pinned on
/// first use so traces start near t=0.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Whether span recording is on. One relaxed load — the check every
/// instrumented site runs before touching anything else.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) != 0
}

/// Turns span recording on (and pins the trace epoch).
pub fn enable() {
    epoch();
    ENABLED.store(1, Ordering::Relaxed);
}

/// Turns span recording off (the default state).
pub fn disable() {
    ENABLED.store(0, Ordering::Relaxed);
}

/// The effective ring capacity: the last [`set_capacity`] value, else
/// `MOQO_SPAN_CAPACITY`, else [`SPAN_CAPACITY`].
pub fn capacity() -> usize {
    let cap = CAPACITY.load(Ordering::Relaxed);
    if cap != 0 {
        return cap;
    }
    let cap = std::env::var("MOQO_SPAN_CAPACITY")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(SPAN_CAPACITY);
    CAPACITY.store(cap, Ordering::Relaxed);
    cap
}

/// Overrides the ring capacity (clamped to at least 1) and trims the ring
/// if it already holds more.
pub fn set_capacity(spans: usize) {
    let cap = spans.max(1);
    CAPACITY.store(cap, Ordering::Relaxed);
    let mut ring = RING.lock().unwrap();
    while ring.len() > cap {
        ring.pop_front();
        metrics().spans_dropped.incr();
    }
}

/// The calling thread's ambient span id (the default parent).
#[inline]
pub fn current() -> SpanId {
    SpanId(CURRENT.with(Cell::get))
}

/// Sets the calling thread's ambient span id; returns the previous value
/// so scopes can restore it. Executors call this around task invocations
/// so stolen work keeps its spawner's causal parent.
#[inline]
pub fn set_current(span: SpanId) -> SpanId {
    SpanId(CURRENT.with(|c| c.replace(span.0)))
}

/// Begins a span if tracing is enabled (`None` otherwise — the disabled
/// path is one relaxed load). Pass [`SpanId::NONE`] as `parent` to adopt
/// the thread's ambient [`current`] span.
#[inline]
pub fn begin(kind: SpanKind, parent: SpanId) -> Option<Span> {
    if !enabled() {
        return None;
    }
    Some(begin_span(kind, parent))
}

#[cold]
fn begin_span(kind: SpanKind, parent: SpanId) -> Span {
    let parent = if parent.is_none() { current() } else { parent };
    let c = ctx::current();
    Span {
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        parent: parent.0,
        kind,
        session: c.session,
        start_ns: now_ns(),
        arg: 0,
    }
}

/// Finishes an in-flight span, pushing its record into the ring. A `None`
/// span (tracing disabled at begin time) is a no-op.
#[inline]
pub fn finish(span: Option<Span>) {
    if let Some(span) = span {
        push_finished(span);
    }
}

#[cold]
fn push_finished(span: Span) {
    let record = SpanRecord {
        id: span.id,
        parent: span.parent,
        kind: span.kind,
        session: span.session,
        worker: ctx::current().worker,
        start_ns: span.start_ns,
        end_ns: now_ns(),
        arg: span.arg,
    };
    push(record);
}

/// Records a zero-duration instant (steal/donation link) if tracing is
/// enabled. `parent` of [`SpanId::NONE`] adopts the ambient span.
#[inline]
pub fn instant(kind: SpanKind, parent: SpanId, arg: u64) {
    if !enabled() {
        return;
    }
    push_instant(kind, parent, arg);
}

#[cold]
fn push_instant(kind: SpanKind, parent: SpanId, arg: u64) {
    let parent = if parent.is_none() { current() } else { parent };
    let c = ctx::current();
    let ts = now_ns();
    push(SpanRecord {
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        parent: parent.0,
        kind,
        session: c.session,
        worker: c.worker,
        start_ns: ts,
        end_ns: ts,
        arg,
    });
}

fn push(record: SpanRecord) {
    let mut ring = RING.lock().unwrap();
    if ring.len() >= capacity() {
        ring.pop_front();
        metrics().spans_dropped.incr();
    }
    ring.push_back(record);
    metrics().spans_recorded.incr();
}

/// Copies the current ring contents (oldest finish first) without
/// draining.
pub fn records() -> Vec<SpanRecord> {
    RING.lock().unwrap().iter().copied().collect()
}

/// Removes and returns the current ring contents (oldest finish first).
pub fn drain() -> Vec<SpanRecord> {
    RING.lock().unwrap().drain(..).collect()
}

fn write_ts_us(out: &mut String, ns: u64) {
    // Chrome trace timestamps are microseconds; keep nanosecond precision
    // as a fractional part.
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Renders records as Chrome trace-event JSON (the JSON Object Format:
/// `{"traceEvents": [...]}`), loadable by Perfetto and `chrome://tracing`.
/// Spans become complete (`"ph":"X"`) events on `tid` = worker id; steals
/// and donations become thread-scoped instants (`"ph":"i"`). Events are
/// sorted by start timestamp, and every event carries its `id`/`parent`
/// pair in `args` so causality survives the flat format.
pub fn write_chrome_trace(records: &[SpanRecord], out: &mut String) {
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.start_ns, r.id));
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, r) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"moqo\",\"ph\":\"{}\",\"ts\":",
            r.kind.name(),
            if r.kind.is_instant() { 'i' } else { 'X' }
        );
        write_ts_us(out, r.start_ns);
        if r.kind.is_instant() {
            out.push_str(",\"s\":\"t\"");
        } else {
            out.push_str(",\"dur\":");
            write_ts_us(out, r.end_ns.saturating_sub(r.start_ns));
        }
        let _ = write!(
            out,
            ",\"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{},\
             \"session\":{},\"arg\":{}}}}}",
            r.worker, r.id, r.parent, r.session, r.arg
        );
    }
    out.push_str("]}");
}

/// [`write_chrome_trace`] into a fresh string.
pub fn to_chrome_trace(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 160);
    write_chrome_trace(records, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as TestMutex, OnceLock};

    /// The span switch and ring are process-global; tests serialize here
    /// (the journal tests use the same pattern for the same reason).
    fn span_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<TestMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| TestMutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = span_lock();
        disable();
        drain();
        let before = metrics().spans_recorded.get();
        let span = begin(SpanKind::Batch, SpanId::NONE);
        assert!(span.is_none());
        finish(span);
        instant(SpanKind::Steal, SpanId::NONE, 3);
        assert!(records().is_empty());
        assert_eq!(metrics().spans_recorded.get(), before);
    }

    #[test]
    fn spans_nest_and_cross_record_parent_links() {
        let _guard = span_lock();
        enable();
        drain();
        crate::ctx::set_session(7);
        let session = begin(SpanKind::Session, SpanId::NONE);
        let sid = id_of(&session);
        assert!(!sid.is_none());
        let prev = set_current(sid);
        let batch = begin(SpanKind::Batch, SpanId::NONE);
        instant(SpanKind::Steal, SpanId::NONE, 2);
        finish(batch);
        set_current(prev);
        finish(session);
        crate::ctx::clear();
        let recs = drain();
        disable();
        assert_eq!(recs.len(), 3);
        let session_rec = recs.iter().find(|r| r.kind == SpanKind::Session).unwrap();
        let batch_rec = recs.iter().find(|r| r.kind == SpanKind::Batch).unwrap();
        let steal_rec = recs.iter().find(|r| r.kind == SpanKind::Steal).unwrap();
        assert_eq!(session_rec.parent, 0);
        assert_eq!(batch_rec.parent, session_rec.id);
        assert_eq!(steal_rec.parent, session_rec.id);
        assert_eq!(steal_rec.arg, 2);
        assert!(recs.iter().all(|r| r.session == 7));
        assert!(batch_rec.end_ns >= batch_rec.start_ns);
        assert!(session_rec.end_ns >= batch_rec.end_ns);
    }

    #[test]
    fn ring_is_bounded_by_configured_capacity() {
        let _guard = span_lock();
        enable();
        drain();
        set_capacity(8);
        for _ in 0..20 {
            finish(begin(SpanKind::Batch, SpanId::NONE));
        }
        let recs = drain();
        set_capacity(SPAN_CAPACITY);
        disable();
        assert_eq!(recs.len(), 8);
        for pair in recs.windows(2) {
            assert!(pair[0].id < pair[1].id);
        }
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let _guard = span_lock();
        enable();
        drain();
        let session = begin(SpanKind::Session, SpanId::NONE);
        let sid = id_of(&session);
        let mut publish = begin(SpanKind::ExchangePublish, sid).unwrap();
        publish.set_arg(5);
        finish(Some(publish));
        instant(SpanKind::Donation, sid, 1);
        finish(session);
        let recs = drain();
        disable();
        let json = to_chrome_trace(&recs);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"session\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"arg\":5"));
        // The session begins first, so it must be the first event even
        // though it finished last.
        let first = json.find("\"name\":\"session\"").unwrap();
        let second = json.find("\"name\":\"exchange_publish\"").unwrap();
        assert!(first < second);
    }
}
