//! The metrics registry: lock-free counters, per-thread sharded counters,
//! and fixed-bucket histograms, all `const`-constructible so the global
//! registry lives in a `static` with zero initialization cost.
//!
//! Naming follows the conventional dotted scheme (`climb.rejected`,
//! `exchange.merged`, …); [`Metrics::counters`] and
//! [`Metrics::histograms`] enumerate every registered metric with its
//! name, which is what [`crate::snapshot::ObsSnapshot`] exports.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A monotone counter: one relaxed atomic add per bump.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (usable in `static` initializers).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of shards in a [`ShardedCounter`]. Threads are assigned shards
/// round-robin, so up to this many writers bump disjoint cache lines.
const SHARDS: usize = 8;

/// One cache line per shard: `#[repr(align(64))]` keeps concurrent
/// writers from false-sharing each other's counters.
#[repr(align(64))]
#[derive(Debug)]
struct Shard(AtomicU64);

/// A counter sharded across cache-line-padded slots, one per writer
/// thread (round-robin beyond `SHARDS` threads). Bumping costs one
/// relaxed `fetch_add` on a line no other thread is writing — the right
/// shape for counters bumped from every optimizer worker at iteration
/// frequency. Reads sum the shards.
#[derive(Debug)]
pub struct ShardedCounter {
    shards: [Shard; SHARDS],
}

thread_local! {
    /// This thread's shard index; `usize::MAX` means "not yet assigned".
    static SHARD_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Round-robin assignment source for thread shard indices.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn shard_index() -> usize {
    SHARD_INDEX.with(|cell| {
        let idx = cell.get();
        if idx != usize::MAX {
            idx
        } else {
            let idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            cell.set(idx);
            idx
        }
    })
}

impl ShardedCounter {
    /// A zeroed sharded counter (usable in `static` initializers).
    pub const fn new() -> Self {
        ShardedCounter {
            shards: [const { Shard(AtomicU64::new(0)) }; SHARDS],
        }
    }

    /// Adds `n` to this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to this thread's shard.
    #[inline]
    pub fn incr(&self) {
        self.shards[shard_index()].0.fetch_add(1, Ordering::Relaxed);
    }

    /// Sums all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for ShardedCounter {
    fn default() -> Self {
        ShardedCounter::new()
    }
}

/// A last-value gauge: `set` overwrites, `get` reads. Used for
/// point-in-time quantities (current archive size) that counters cannot
/// express; exported through [`Metrics::counters`] like any other value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge (usable in `static` initializers).
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the current value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: power-of-two boundaries cover the full
/// `u64` range with `value → 64 - leading_zeros(value)` indexing, clamped
/// into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 44;

/// A fixed-bucket histogram with power-of-two bucket boundaries: bucket
/// `i` holds values in `[2^(i-1), 2^i)` (bucket 0 holds zero). Recording
/// costs four relaxed atomic ops and never allocates; quantiles linearly
/// interpolate inside the containing bucket (assuming its mass is evenly
/// spread), which keeps microsecond-scale percentiles honest even though
/// bucket widths double.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Approximate median (sub-bucket linear interpolation; 0 when empty).
    pub p50: u64,
    /// Approximate 90th percentile (interpolated).
    pub p90: u64,
    /// Approximate 99th percentile (interpolated).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[inline]
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Upper bound of bucket `i` (inclusive).
fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// An empty histogram (usable in `static` initializers).
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Summarizes the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if seen + n >= target {
                    // Linear interpolation inside the containing bucket,
                    // assuming its `n` values spread evenly over the
                    // bucket range. The observed max tightens the last
                    // occupied bucket's upper bound.
                    let lower = if i == 0 { 0 } else { bucket_upper(i - 1) + 1 };
                    let upper = bucket_upper(i).min(max);
                    let lower = lower.min(upper);
                    let need = target - seen; // in 1..=n
                    let width = (upper - lower) as f64;
                    return lower + (width * need as f64 / n as f64).round() as u64;
                }
                seen += n;
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The global metrics registry: every counter and histogram the
/// instrumented crates bump, each with a stable dotted name.
///
/// `climb.*` counters are flushed once per RMQ iteration from plain
/// per-iteration tallies (see `moqo-core`'s screening counters), so their
/// values are deterministic for a seeded run — the bench harness pins them
/// in its `obs` section to hard-pin hot-path behavior.
#[derive(Debug)]
pub struct Metrics {
    /// RMQ iterations completed (aborted iterations are not counted).
    pub rmq_iterations: ShardedCounter,
    /// Mutation candidates generated by the climb loop (every candidate
    /// is costed and offered to a Pareto frontier exactly once).
    pub climb_candidates: ShardedCounter,
    /// Member comparisons screened out by the aggregate-key pre-filter
    /// before any full dominance test ran.
    pub climb_agg_key_skips: ShardedCounter,
    /// Full component-wise dominance tests executed.
    pub climb_dominance_tests: ShardedCounter,
    /// Candidates rejected as dominated (or duplicate) by a frontier.
    pub climb_rejected: ShardedCounter,
    /// Candidates admitted into a frontier.
    pub climb_admitted: ShardedCounter,
    /// Incumbent members evicted by an admitted candidate.
    pub climb_evicted: ShardedCounter,
    /// Structure-of-arrays blocks screened by the Pareto dominance kernels
    /// (blocks the aggregate-key range filter could not skip).
    pub pareto_blocks_screened: ShardedCounter,
    /// Candidates rejected by the ε-box archive rule that exact dominance
    /// would have admitted (precision-driven rejections).
    pub pareto_eps_rejects: ShardedCounter,
    /// Current query-frontier (archive) size of the most recently flushed
    /// optimizer iteration.
    pub pareto_archive_size: Gauge,
    /// Plan-arena intern requests that allocated a new node.
    pub arena_interns: ShardedCounter,
    /// Plan-arena intern requests answered by an existing node.
    pub arena_dedup_hits: ShardedCounter,
    /// Shared-frontier publish calls.
    pub exchange_publishes: Counter,
    /// Plans offered to the shared frontier across all publishes.
    pub exchange_offered: Counter,
    /// Offered plans that were admitted (merged) into the global frontier.
    pub exchange_merged: Counter,
    /// Snapshot epoch bumps (one per publish that admitted anything).
    pub exchange_epochs: Counter,
    /// Plans absorbed from global snapshots by workers.
    pub exchange_absorbed: Counter,
    /// Sub-query (partial-plan) frontier members offered to the shared
    /// frontier's table-set-keyed partial exchange.
    pub exchange_partial_offered: Counter,
    /// Offered partial plans admitted into a shared sub-query frontier.
    pub exchange_partial_merged: Counter,
    /// Current exchange backoff level of the most recent adaptive-exchange
    /// decision (`0` = base period; level `k` = period `base << k`).
    pub exchange_backoff_level: Gauge,
    /// Climb batches executed by the work-stealing executor (every task
    /// invocation runs at most one batch).
    pub exec_pool_batches: ShardedCounter,
    /// Tasks an idle pool worker stole from another worker's deque.
    pub exec_pool_steals: Counter,
    /// Batches a waiting helper donated to a *foreign* task group while
    /// its own group drained (idle-wait work conservation).
    pub exec_pool_donations: Counter,
    /// Sessions admitted by the service.
    pub service_submitted: Counter,
    /// Submissions rejected: live-session bound reached.
    pub service_rejected_queue_full: Counter,
    /// Submissions rejected: worker-slot bound would be exceeded.
    pub service_rejected_no_slots: Counter,
    /// Submissions rejected: service shutting down.
    pub service_rejected_shutdown: Counter,
    /// Sessions that finished (any done reason).
    pub service_completed: Counter,
    /// Finished sessions that were cancelled or aborted by shutdown.
    pub service_cancelled: Counter,
    /// Cross-query cache lookups that returned warm-start plans.
    pub cache_hits: Counter,
    /// Cross-query cache lookups that returned nothing.
    pub cache_misses: Counter,
    /// Span records pushed into the tracing ring (spans and instants).
    pub spans_recorded: Counter,
    /// Span records evicted because the tracing ring was full.
    pub spans_dropped: Counter,
    /// Observed p99 time-to-first-frontier of the SLO monitor's sliding
    /// window, microseconds (0 until the monitor has samples).
    pub slo_ttff_p99_us: Gauge,
    /// Observed p99 queue delay of the SLO monitor's sliding window,
    /// microseconds.
    pub slo_queue_p99_us: Gauge,
    /// Observed shed (rejection) rate of the SLO monitor, per mille of
    /// submissions.
    pub slo_shed_per_mille: Gauge,
    /// Bitmask of currently breached SLO targets (bit 0 = TTFF, bit 1 =
    /// queue delay, bit 2 = shed rate); 0 when all targets hold.
    pub slo_breached: Gauge,
    /// Transitions of any SLO target from holding to breached.
    pub slo_breaches: Counter,
    /// Requests offered to the front door (admitted, coalesced, or shed).
    pub frontdoor_offered: Counter,
    /// Requests the front door coalesced onto an in-flight identical
    /// optimization (same tenant, context fingerprint, and table set).
    pub frontdoor_coalesced: Counter,
    /// Sessions admitted at a degraded tier (coarser ε-box precision
    /// and/or a reduced budget) instead of being shed.
    pub frontdoor_degraded: Counter,
    /// Requests the front door shed outright (quota exhaustion or a
    /// saturated shard), after the degradation ladder ran out.
    pub frontdoor_shed: Counter,
    /// Shed requests attributable to per-tenant quota exhaustion.
    pub frontdoor_quota_rejected: Counter,
    /// Highest degradation level currently active on any shard (0 full,
    /// 1 coarse ε, 2 reduced budget).
    pub frontdoor_degrade_level: Gauge,
    /// Executed physical plans.
    pub exec_runs: Counter,
    /// Tuples processed by execution engine operators.
    pub exec_tuples: Counter,
    /// Rows spilled by blocking operators under their memory grant.
    pub exec_spilled_rows: Counter,
    /// Inner-side rescans performed by nested-loop-style operators.
    pub exec_inner_rescans: Counter,
    /// Nanoseconds spent waiting for the shared-frontier merge mutex
    /// (sampled: every 8th publish).
    pub exchange_mutex_wait_ns: Histogram,
    /// Queue delay in microseconds: submission to first optimizer step.
    pub service_queue_delay_us: Histogram,
    /// Scheduling-slice duration in microseconds (per-session step timing
    /// at slice granularity — the sampled clock that avoids a per-step
    /// `Instant::now`).
    pub service_slice_us: Histogram,
    /// Plans absorbed from the cross-query cache per warm-started session.
    pub service_warm_start_depth: Histogram,
    /// Peak buffered rows per executed plan.
    pub exec_peak_buffer_rows: Histogram,
}

impl Metrics {
    const fn new() -> Self {
        Metrics {
            rmq_iterations: ShardedCounter::new(),
            climb_candidates: ShardedCounter::new(),
            climb_agg_key_skips: ShardedCounter::new(),
            climb_dominance_tests: ShardedCounter::new(),
            climb_rejected: ShardedCounter::new(),
            climb_admitted: ShardedCounter::new(),
            climb_evicted: ShardedCounter::new(),
            pareto_blocks_screened: ShardedCounter::new(),
            pareto_eps_rejects: ShardedCounter::new(),
            pareto_archive_size: Gauge::new(),
            arena_interns: ShardedCounter::new(),
            arena_dedup_hits: ShardedCounter::new(),
            exchange_publishes: Counter::new(),
            exchange_offered: Counter::new(),
            exchange_merged: Counter::new(),
            exchange_epochs: Counter::new(),
            exchange_absorbed: Counter::new(),
            exchange_partial_offered: Counter::new(),
            exchange_partial_merged: Counter::new(),
            exchange_backoff_level: Gauge::new(),
            exec_pool_batches: ShardedCounter::new(),
            exec_pool_steals: Counter::new(),
            exec_pool_donations: Counter::new(),
            service_submitted: Counter::new(),
            service_rejected_queue_full: Counter::new(),
            service_rejected_no_slots: Counter::new(),
            service_rejected_shutdown: Counter::new(),
            service_completed: Counter::new(),
            service_cancelled: Counter::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            spans_recorded: Counter::new(),
            spans_dropped: Counter::new(),
            slo_ttff_p99_us: Gauge::new(),
            slo_queue_p99_us: Gauge::new(),
            slo_shed_per_mille: Gauge::new(),
            slo_breached: Gauge::new(),
            slo_breaches: Counter::new(),
            frontdoor_offered: Counter::new(),
            frontdoor_coalesced: Counter::new(),
            frontdoor_degraded: Counter::new(),
            frontdoor_shed: Counter::new(),
            frontdoor_quota_rejected: Counter::new(),
            frontdoor_degrade_level: Gauge::new(),
            exec_runs: Counter::new(),
            exec_tuples: Counter::new(),
            exec_spilled_rows: Counter::new(),
            exec_inner_rescans: Counter::new(),
            exchange_mutex_wait_ns: Histogram::new(),
            service_queue_delay_us: Histogram::new(),
            service_slice_us: Histogram::new(),
            service_warm_start_depth: Histogram::new(),
            exec_peak_buffer_rows: Histogram::new(),
        }
    }

    /// Every counter with its dotted name, in registration order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("rmq.iterations", self.rmq_iterations.get()),
            ("climb.candidates", self.climb_candidates.get()),
            ("climb.agg_key_skips", self.climb_agg_key_skips.get()),
            ("climb.dominance_tests", self.climb_dominance_tests.get()),
            ("climb.rejected", self.climb_rejected.get()),
            ("climb.admitted", self.climb_admitted.get()),
            ("climb.evicted", self.climb_evicted.get()),
            ("pareto.blocks_screened", self.pareto_blocks_screened.get()),
            ("pareto.eps_rejects", self.pareto_eps_rejects.get()),
            ("pareto.archive_size", self.pareto_archive_size.get()),
            ("arena.interns", self.arena_interns.get()),
            ("arena.dedup_hits", self.arena_dedup_hits.get()),
            ("exchange.publishes", self.exchange_publishes.get()),
            ("exchange.offered", self.exchange_offered.get()),
            ("exchange.merged", self.exchange_merged.get()),
            ("exchange.epochs", self.exchange_epochs.get()),
            ("exchange.absorbed", self.exchange_absorbed.get()),
            (
                "exchange.partial_offered",
                self.exchange_partial_offered.get(),
            ),
            (
                "exchange.partial_merged",
                self.exchange_partial_merged.get(),
            ),
            ("exchange.backoff_level", self.exchange_backoff_level.get()),
            ("exec_pool.batches", self.exec_pool_batches.get()),
            ("exec_pool.steals", self.exec_pool_steals.get()),
            ("exec_pool.donations", self.exec_pool_donations.get()),
            ("service.submitted", self.service_submitted.get()),
            (
                "service.rejected_queue_full",
                self.service_rejected_queue_full.get(),
            ),
            (
                "service.rejected_no_slots",
                self.service_rejected_no_slots.get(),
            ),
            (
                "service.rejected_shutdown",
                self.service_rejected_shutdown.get(),
            ),
            ("service.completed", self.service_completed.get()),
            ("service.cancelled", self.service_cancelled.get()),
            ("cache.hits", self.cache_hits.get()),
            ("cache.misses", self.cache_misses.get()),
            ("spans.recorded", self.spans_recorded.get()),
            ("spans.dropped", self.spans_dropped.get()),
            ("slo.ttff_p99_us", self.slo_ttff_p99_us.get()),
            ("slo.queue_p99_us", self.slo_queue_p99_us.get()),
            ("slo.shed_per_mille", self.slo_shed_per_mille.get()),
            ("slo.breached", self.slo_breached.get()),
            ("slo.breaches", self.slo_breaches.get()),
            ("frontdoor.offered", self.frontdoor_offered.get()),
            ("frontdoor.coalesced", self.frontdoor_coalesced.get()),
            ("frontdoor.degraded", self.frontdoor_degraded.get()),
            ("frontdoor.shed", self.frontdoor_shed.get()),
            (
                "frontdoor.quota_rejected",
                self.frontdoor_quota_rejected.get(),
            ),
            (
                "frontdoor.degrade_level",
                self.frontdoor_degrade_level.get(),
            ),
            ("exec.runs", self.exec_runs.get()),
            ("exec.tuples", self.exec_tuples.get()),
            ("exec.spilled_rows", self.exec_spilled_rows.get()),
            ("exec.inner_rescans", self.exec_inner_rescans.get()),
        ]
    }

    /// Every histogram with its dotted name, in registration order.
    pub fn histograms(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        vec![
            (
                "exchange.mutex_wait_ns",
                self.exchange_mutex_wait_ns.snapshot(),
            ),
            (
                "service.queue_delay_us",
                self.service_queue_delay_us.snapshot(),
            ),
            ("service.slice_us", self.service_slice_us.snapshot()),
            (
                "service.warm_start_depth",
                self.service_warm_start_depth.snapshot(),
            ),
            (
                "exec.peak_buffer_rows",
                self.exec_peak_buffer_rows.snapshot(),
            ),
        ]
    }
}

static METRICS: Metrics = Metrics::new();

/// The process-global metrics registry. Counters are monotone for the
/// process lifetime; consumers wanting per-phase numbers take before/after
/// deltas (which is what the bench harness does per fixture).
#[inline]
pub fn metrics() -> &'static Metrics {
    &METRICS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_sharded_counter_accumulate() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        c.add(0);
        assert_eq!(c.get(), 42);

        let s = ShardedCounter::new();
        s.add(5);
        s.incr();
        assert_eq!(s.get(), 6);
    }

    #[test]
    fn sharded_counter_sums_across_threads() {
        let s = std::sync::Arc::new(ShardedCounter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.get(), 4000);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        for v in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 1_001_106);
        assert_eq!(snap.max, 1_000_000);
        // p50 falls in the bucket containing {2, 3} → interpolates to 3.
        assert_eq!(snap.p50, 3);
        // Quantiles interpolate within their bucket, tightened by the max.
        assert!(snap.p99 >= 1000 && snap.p99 <= 1_000_000);
        assert!(snap.mean() > 0.0);
    }

    #[test]
    fn histogram_quantiles_never_exceed_max() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(700);
        }
        let snap = h.snapshot();
        // All mass sits in bucket [512, 1023], whose upper bound the max
        // tightens to 700; interpolation stays inside [512, 700].
        assert!(snap.p50 >= 512 && snap.p50 <= 700);
        assert!(snap.p99 >= snap.p50 && snap.p99 <= 700);
        assert_eq!(snap.max, 700);
    }

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        // Known distribution: 1..=1000 uniformly. Pure bucket upper
        // bounds would report p50 = 511 and p90 = 1000; sub-bucket
        // interpolation must land near the true percentiles.
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert!(
            (498..=502).contains(&snap.p50),
            "p50 {} not near 500",
            snap.p50
        );
        assert!(
            (895..=905).contains(&snap.p90),
            "p90 {} not near 900",
            snap.p90
        );
        assert!(
            (985..=1000).contains(&snap.p99),
            "p99 {} not near 990",
            snap.p99
        );
        assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99);
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut last = 0;
        for v in [0u64, 1, 2, 4, 16, 1024, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last);
            assert!(idx < HISTOGRAM_BUCKETS);
            last = idx;
        }
    }

    #[test]
    fn gauge_overwrites_and_reads() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(17);
        g.set(5);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn registry_enumerates_all_metrics() {
        let names: Vec<&str> = metrics().counters().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"rmq.iterations"));
        assert!(names.contains(&"climb.agg_key_skips"));
        assert!(names.contains(&"pareto.blocks_screened"));
        assert!(names.contains(&"pareto.eps_rejects"));
        assert!(names.contains(&"pareto.archive_size"));
        assert!(names.contains(&"exchange.merged"));
        assert!(names.contains(&"exchange.partial_merged"));
        assert!(names.contains(&"exchange.backoff_level"));
        assert!(names.contains(&"exec_pool.batches"));
        assert!(names.contains(&"exec_pool.steals"));
        assert!(names.contains(&"exec_pool.donations"));
        assert!(names.contains(&"service.rejected_queue_full"));
        assert!(names.contains(&"exec.tuples"));
        assert!(names.contains(&"spans.recorded"));
        assert!(names.contains(&"spans.dropped"));
        assert!(names.contains(&"slo.ttff_p99_us"));
        assert!(names.contains(&"slo.queue_p99_us"));
        assert!(names.contains(&"slo.shed_per_mille"));
        assert!(names.contains(&"slo.breached"));
        assert!(names.contains(&"slo.breaches"));
        assert!(names.contains(&"frontdoor.offered"));
        assert!(names.contains(&"frontdoor.coalesced"));
        assert!(names.contains(&"frontdoor.degraded"));
        assert!(names.contains(&"frontdoor.shed"));
        assert!(names.contains(&"frontdoor.quota_rejected"));
        assert!(names.contains(&"frontdoor.degrade_level"));
        let hists: Vec<&str> = metrics().histograms().iter().map(|(n, _)| *n).collect();
        assert!(hists.contains(&"service.queue_delay_us"));
        assert!(hists.contains(&"exchange.mutex_wait_ns"));
    }
}
