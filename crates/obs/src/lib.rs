//! # moqo-obs — zero-overhead observability for the moqo optimizer
//!
//! The paper's central property is *anytime* behavior: usable frontiers in
//! milliseconds, refined forever. Observing only the endpoints (final
//! frontiers, TTFF percentiles) cannot explain *why* a session is fast or
//! slow — how many mutations the agg-key pre-filter screened out before a
//! full dominance test ran, how long workers waited on the shared-frontier
//! mutex, whether cache warm-starts actually shortened climbs. This crate
//! is the telemetry layer that answers those questions without slowing the
//! loops it watches:
//!
//! * [`mod@metrics`] — a registry of lock-free counters and fixed-bucket
//!   histograms. Hot counters are **sharded per thread** (cache-line
//!   padded), so an instrumented hot loop costs one relaxed atomic add on
//!   a thread-private line; the truly hot paths (Pareto screening) count
//!   into plain non-atomic fields and flush a delta once per RMQ
//!   iteration, costing nothing per candidate.
//! * [`journal`] — a bounded ring buffer of typed [`Event`]s
//!   carrying `(session, worker, epoch, iteration)` context from [`ctx`].
//!   A packed atomic target/severity filter makes a **disabled** journal
//!   site compile to one relaxed load and a branch — the same pattern the
//!   optimizer's `StopFlag` uses for cancellation.
//! * [`snapshot`] — [`ObsSnapshot`]: a point-in-time
//!   capture of every registered metric plus the journal tail,
//!   serializable to JSON (hand-rolled, no dependencies) or a plain-text
//!   exposition dump.
//! * [`mod@spans`] — causal span tracing: begin/end records for session
//!   slices, climb batches, exchange operations, and cache lookups, with
//!   parent links that survive work stealing, exportable as Chrome
//!   trace-event JSON (Perfetto-loadable). Same disabled-path discipline
//!   as the journal: one relaxed load per site when off.
//!
//! ## Overhead contract
//!
//! With the journal disabled (the default), every instrumentation site is
//! either a relaxed atomic add on a thread-local shard, a plain integer
//! increment flushed at iteration granularity, or a single relaxed load
//! plus an untaken branch. Nothing allocates, nothing locks, and no
//! `Instant::now` runs on a per-candidate path — clocks are sampled at
//! slice/publish granularity only.
//!
//! ```
//! use moqo_obs::{journal, metrics, snapshot::ObsSnapshot};
//!
//! metrics::metrics().rmq_iterations.add(3);
//! journal::enable_all(journal::Level::Debug);
//! journal::emit_with(journal::Target::Climb, journal::Level::Info, || {
//!     journal::EventKind::Note("climb started")
//! });
//! let snap = ObsSnapshot::capture();
//! assert!(snap.counter("rmq.iterations") >= 3);
//! assert!(snap.to_json().starts_with("{\"schema\":1"));
//! journal::disable();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ctx;
pub mod journal;
pub mod metrics;
pub mod snapshot;
pub mod spans;

pub use ctx::Ctx;
pub use journal::{Event, EventKind, Level, Target};
pub use metrics::{metrics, Counter, Histogram, HistogramSnapshot, Metrics, ShardedCounter};
pub use snapshot::ObsSnapshot;
pub use spans::{SpanId, SpanKind, SpanRecord};
