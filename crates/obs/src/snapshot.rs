//! Telemetry export: [`ObsSnapshot`] captures every registered metric
//! plus the journal tail and renders them as JSON (hand-rolled — this
//! crate has no dependencies) or a plain-text exposition dump.
//!
//! The JSON layout (`"schema": 1`) is what `serve --obs-json` flushes
//! periodically and what the bench harness's `obs_check` validates:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "counters": { "rmq.iterations": 123, ... },
//!   "histograms": { "service.queue_delay_us": { "count": 2, ... }, ... },
//!   "events": [ { "seq": 1, "level": "info", ... }, ... ]
//! }
//! ```

use std::fmt::Write;

use crate::journal::{self, Event};
use crate::metrics::{metrics, HistogramSnapshot};

/// A point-in-time capture of the whole observability surface.
#[derive(Clone, Debug)]
pub struct ObsSnapshot {
    /// Every counter, `(dotted name, value)`, in registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Every histogram, `(dotted name, summary)`, in registration order.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
    /// The journal ring at capture time (oldest first; empty when the
    /// journal is disabled or drained).
    pub events: Vec<Event>,
}

impl ObsSnapshot {
    /// Captures the global registry and journal ring.
    pub fn capture() -> Self {
        ObsSnapshot {
            counters: metrics().counters(),
            histograms: metrics().histograms(),
            events: journal::events(),
        }
    }

    /// Value of the named counter (0 when unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Summary of the named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| *h)
    }

    /// Renders the snapshot as one JSON object (`"schema": 1`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"schema\":1,\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count, h.sum, h.max, h.p50, h.p90, h.p99
            );
        }
        out.push_str("},\"events\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            event.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Renders the snapshot as a plain-text exposition dump: one
    /// `name value` line per counter, one summary line per histogram,
    /// then the event tail.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("# counters\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name} {value}");
        }
        out.push_str("# histograms\n");
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name} count={} sum={} max={} p50={} p90={} p99={}",
                h.count, h.sum, h.max, h.p50, h.p90, h.p99
            );
        }
        if !self.events.is_empty() {
            out.push_str("# events\n");
            for event in &self.events {
                let _ = writeln!(out, "{event}");
            }
        }
        out
    }
}

/// Escapes `s` into `out` as JSON string content (quotes, backslashes,
/// and control characters).
pub(crate) fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_captures_registry_and_serializes() {
        metrics().rmq_iterations.add(2);
        metrics().service_queue_delay_us.record(1500);
        let snap = ObsSnapshot::capture();
        assert!(snap.counter("rmq.iterations") >= 2);
        assert_eq!(snap.counter("no.such.counter"), 0);
        let h = snap.histogram("service.queue_delay_us").unwrap();
        assert!(h.count >= 1);
        assert!(snap.histogram("no.such.histogram").is_none());

        let json = snap.to_json();
        assert!(json.starts_with("{\"schema\":1,\"counters\":{"));
        assert!(json.contains("\"rmq.iterations\":"));
        assert!(json.contains("\"service.queue_delay_us\":{\"count\":"));
        assert!(json.ends_with("]}"));

        let text = snap.to_text();
        assert!(text.contains("rmq.iterations "));
        assert!(text.contains("service.queue_delay_us count="));
    }

    #[test]
    fn json_escaping_handles_specials() {
        let mut out = String::new();
        escape_json_into("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
