//! Thread-local event context: which session, worker, epoch, and
//! iteration an instrumented thread is currently working for.
//!
//! The service's worker loop sets the session id for the duration of a
//! scheduling slice; `moqo-parallel` sets the worker id in each spawned
//! intra-query thread; the RMQ loop bumps the iteration. Journal events
//! capture the ambient [`Ctx`] at emission time, so every event is
//! attributable without threading ids through APIs.

use std::cell::Cell;

/// Ambient context attached to journal events. Zero fields mean "not
/// set" (e.g. a sequential optimizer has no worker id).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ctx {
    /// Service session id (0 outside a session).
    pub session: u64,
    /// Intra-query worker id, 1-based (0 outside a parallel worker).
    pub worker: u32,
    /// Shared-frontier snapshot epoch last observed by this thread.
    pub epoch: u64,
    /// Optimizer iteration counter of the driving loop.
    pub iteration: u64,
}

thread_local! {
    static CTX: Cell<Ctx> = const { Cell::new(Ctx {
        session: 0,
        worker: 0,
        epoch: 0,
        iteration: 0,
    }) };
}

/// The calling thread's current context.
#[inline]
pub fn current() -> Ctx {
    CTX.with(Cell::get)
}

/// Sets the session id for this thread (0 clears it).
pub fn set_session(session: u64) {
    CTX.with(|c| {
        let mut ctx = c.get();
        ctx.session = session;
        c.set(ctx);
    });
}

/// Sets the 1-based intra-query worker id for this thread (0 clears it).
pub fn set_worker(worker: u32) {
    CTX.with(|c| {
        let mut ctx = c.get();
        ctx.worker = worker;
        c.set(ctx);
    });
}

/// Sets the last-observed exchange epoch for this thread.
pub fn set_epoch(epoch: u64) {
    CTX.with(|c| {
        let mut ctx = c.get();
        ctx.epoch = epoch;
        c.set(ctx);
    });
}

/// Sets the driving loop's iteration counter for this thread.
pub fn set_iteration(iteration: u64) {
    CTX.with(|c| {
        let mut ctx = c.get();
        ctx.iteration = iteration;
        c.set(ctx);
    });
}

/// Resets every field to the unset state.
pub fn clear() {
    CTX.with(|c| c.set(Ctx::default()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_is_thread_local_and_settable() {
        clear();
        assert_eq!(current(), Ctx::default());
        set_session(7);
        set_worker(2);
        set_iteration(31);
        set_epoch(4);
        assert_eq!(
            current(),
            Ctx {
                session: 7,
                worker: 2,
                epoch: 4,
                iteration: 31,
            }
        );
        let other = std::thread::spawn(current).join().unwrap();
        assert_eq!(other, Ctx::default());
        clear();
        assert_eq!(current(), Ctx::default());
    }
}
