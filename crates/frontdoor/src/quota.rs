//! Per-tenant admission quotas: classic token buckets.
//!
//! Every request charges one token from its tenant's bucket — including
//! coalesced requests, because the quota governs *request rate*, not
//! optimization cost (a tenant cannot launder unlimited traffic through a
//! hot query). Buckets refill continuously at `refill_per_sec` up to the
//! `burst` capacity, so a tenant that stays under its sustained rate never
//! notices the quota while a tenant that floods is shed after at most
//! `burst` requests — and only that tenant is: buckets are independent,
//! which is the isolation property the front door's tests pin.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Per-tenant token-bucket quota configuration.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Bucket capacity: requests a tenant may burst before refill matters.
    /// `0` disables quotas entirely (every request is admitted).
    pub burst: u64,
    /// Sustained refill rate in tokens (requests) per second.
    pub refill_per_sec: f64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        // Quotas are opt-in: a front door without an explicit quota serves
        // every tenant unconditionally.
        QuotaConfig {
            burst: 0,
            refill_per_sec: 0.0,
        }
    }
}

impl QuotaConfig {
    /// Whether any quota is enforced.
    pub fn is_enabled(&self) -> bool {
        self.burst > 0
    }
}

struct Bucket {
    tokens: f64,
    last_refill: Instant,
    /// Requests this tenant has had shed by quota (journaled on breach).
    shed: u64,
}

/// The front door's per-tenant bucket table.
pub(crate) struct QuotaSet {
    config: QuotaConfig,
    buckets: Mutex<HashMap<u64, Bucket>>,
}

/// Outcome of charging one token.
pub(crate) enum QuotaDecision {
    /// Token taken (or quotas disabled).
    Admitted,
    /// Bucket dry; `shed` counts this tenant's quota rejections so far.
    Exhausted {
        /// Quota rejections this tenant has accumulated, including this one.
        shed: u64,
    },
}

impl QuotaSet {
    pub(crate) fn new(config: QuotaConfig) -> Self {
        QuotaSet {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Charges one token from `tenant`'s bucket.
    pub(crate) fn charge(&self, tenant: u64) -> QuotaDecision {
        if !self.config.is_enabled() {
            return QuotaDecision::Admitted;
        }
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = buckets.entry(tenant).or_insert_with(|| Bucket {
            tokens: self.config.burst as f64,
            last_refill: now,
            shed: 0,
        });
        let elapsed = now.saturating_duration_since(bucket.last_refill);
        bucket.tokens = (bucket.tokens + elapsed.as_secs_f64() * self.config.refill_per_sec)
            .min(self.config.burst as f64);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            QuotaDecision::Admitted
        } else {
            bucket.shed += 1;
            QuotaDecision::Exhausted { shed: bucket.shed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admitted(q: &QuotaSet, tenant: u64) -> bool {
        matches!(q.charge(tenant), QuotaDecision::Admitted)
    }

    #[test]
    fn disabled_quota_admits_everything() {
        let q = QuotaSet::new(QuotaConfig::default());
        for _ in 0..10_000 {
            assert!(admitted(&q, 1));
        }
    }

    #[test]
    fn burst_bounds_admissions_without_refill() {
        let q = QuotaSet::new(QuotaConfig {
            burst: 5,
            refill_per_sec: 0.0,
        });
        for i in 0..5 {
            assert!(admitted(&q, 42), "request {i} within burst");
        }
        match q.charge(42) {
            QuotaDecision::Exhausted { shed } => assert_eq!(shed, 1),
            QuotaDecision::Admitted => panic!("sixth request must be shed"),
        }
        match q.charge(42) {
            QuotaDecision::Exhausted { shed } => assert_eq!(shed, 2),
            QuotaDecision::Admitted => panic!("still dry"),
        }
    }

    #[test]
    fn buckets_are_independent_per_tenant() {
        let q = QuotaSet::new(QuotaConfig {
            burst: 2,
            refill_per_sec: 0.0,
        });
        assert!(admitted(&q, 1));
        assert!(admitted(&q, 1));
        assert!(!admitted(&q, 1), "tenant 1 exhausted");
        // Tenant 2's bucket is untouched by tenant 1's flood.
        assert!(admitted(&q, 2));
        assert!(admitted(&q, 2));
    }

    #[test]
    fn refill_restores_tokens_over_time() {
        let q = QuotaSet::new(QuotaConfig {
            burst: 1,
            refill_per_sec: 1000.0,
        });
        assert!(admitted(&q, 7));
        // At 1000 tokens/sec the bucket is full again within a few ms.
        let deadline = Instant::now() + std::time::Duration::from_secs(2);
        loop {
            if admitted(&q, 7) {
                break;
            }
            assert!(Instant::now() < deadline, "bucket never refilled");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
}
