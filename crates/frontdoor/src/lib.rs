//! # moqo-frontdoor — a sharded multi-tenant front door
//!
//! `moqo-service` is one in-process scheduler with one global plan cache —
//! the right shape for one tenant, the wrong one for "millions of users":
//! every submission crosses the same scheduler mutex and every query hits
//! the same cache. This crate puts a **front door** in front of it:
//!
//! * **Sharding** — [`FrontDoor`] runs `shards` independent
//!   [`OptimizationService`]s and routes every request by a hash of
//!   `(tenant, context fingerprint)`. Shards share *nothing*: each has its
//!   own scheduler lock, executor pool, cross-query plan cache, and SLO
//!   monitor, so a saturated tenant cannot contend a quiet tenant's shard.
//! * **Request coalescing** — concurrent requests for an identical
//!   `(tenant, context, table set)` are merged into one optimization. The
//!   subscriber gets a clone of the leader's [`SessionHandle`]; cloned
//!   handles share the session's state, so all subscribers observe the
//!   same epoch-numbered frontier snapshots and a late subscriber reads
//!   the current epoch immediately (see [`coalesce`](self)).
//! * **Per-tenant quotas** — token buckets ([`QuotaConfig`]) bound each
//!   tenant's request rate independently; an exhausted bucket sheds *that
//!   tenant's* requests with [`FrontdoorError::QuotaExhausted`] and a
//!   `quota_breach` journal event.
//! * **SLO-aware degradation** — before any request is shed for load, new
//!   sessions step down a ladder ([`DegradationConfig`]): full precision →
//!   coarser ε-box archives (Trummer & Koch 2014) → reduced budgets →
//!   shed. The ladder reads each shard's `slo.*` breach mask and
//!   live-session pressure; every transition is journaled and the deepest
//!   active level exports as the `frontdoor.degrade_level` gauge.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use moqo_core::model::testing::StubModel;
//! use moqo_core::optimizer::Budget;
//! use moqo_core::rmq::{Rmq, RmqConfig};
//! use moqo_core::tables::TableSet;
//! use moqo_frontdoor::{FrontDoor, FrontDoorConfig, FrontRequest};
//!
//! let door = FrontDoor::new(FrontDoorConfig::default());
//! let model = Arc::new(StubModel::line(6, 2, 42));
//! let query = TableSet::prefix(6);
//! let admitted = door
//!     .submit(
//!         FrontRequest {
//!             tenant: 7,
//!             query,
//!             context: 0xC0FFEE,
//!             budget: Budget::Iterations(40),
//!         },
//!         |grant| {
//!             // The builder sees the grant: a degraded grant carries the
//!             // ε factor the optimizer must be built with.
//!             let mut cfg = RmqConfig::seeded(1);
//!             if let Some(eps) = grant.eps {
//!                 cfg.archive = moqo_core::archive::ArchiveConfig::eps_box(
//!                     moqo_core::EpsFactors::uniform(eps),
//!                 );
//!             }
//!             Box::new(Rmq::new(Arc::clone(&model), query, cfg))
//!         },
//!     )
//!     .expect("admitted");
//! let done = admitted
//!     .handle
//!     .wait_done(std::time::Duration::from_secs(10))
//!     .expect("finishes");
//! assert!(!done.plans.is_empty());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod coalesce;
mod degrade;
mod quota;

pub use degrade::{DegradationConfig, DegradeLevel, Grant};
pub use quota::QuotaConfig;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use moqo_core::optimizer::Budget;
use moqo_core::tables::TableSet;
use moqo_obs::journal::{self, EventKind, Level, Target};
use moqo_obs::metrics::metrics;
use moqo_service::{
    AdmissionError, OptimizationService, PlanExchange, ServiceConfig, ServiceStats, SessionHandle,
    SessionRequest,
};

use coalesce::CoalesceMap;
use quota::{QuotaDecision, QuotaSet};

/// Configuration of the front door.
#[derive(Clone, Copy, Debug)]
pub struct FrontDoorConfig {
    /// Number of independent service shards (≥ 1).
    pub shards: usize,
    /// Per-shard service configuration. `shard.workers` is the worker
    /// count of **each** shard's executor pool — a front door with
    /// `shards: 4` and `shard.workers: 2` runs 8 worker threads total.
    pub shard: ServiceConfig,
    /// Per-tenant admission quota (disabled by default).
    pub quota: QuotaConfig,
    /// The degradation ladder (enabled by default).
    pub degradation: DegradationConfig,
}

impl Default for FrontDoorConfig {
    fn default() -> Self {
        FrontDoorConfig {
            shards: 4,
            shard: ServiceConfig::default(),
            quota: QuotaConfig::default(),
            degradation: DegradationConfig::default(),
        }
    }
}

/// One optimization request presented at the front door.
///
/// Unlike [`SessionRequest`], the request does not carry a pre-built
/// optimizer: the front door may grant a degraded admission (coarser ε,
/// reduced budget), so the optimizer is constructed *after* admission by
/// the builder closure passed to [`FrontDoor::submit`], which receives the
/// [`Grant`].
#[derive(Clone, Copy, Debug)]
pub struct FrontRequest {
    /// The requesting tenant.
    pub tenant: u64,
    /// The query's table set.
    pub query: TableSet,
    /// Cache context fingerprint (see `moqo_service::context_fingerprint`).
    pub context: u64,
    /// The requested budget (a degraded grant may reduce it).
    pub budget: Budget,
}

/// A successfully admitted request.
#[derive(Clone, Debug)]
pub struct Admitted {
    /// Handle to the session serving this request. For a coalesced request
    /// this is a clone of the in-flight leader's handle — identical
    /// epoch-numbered snapshots by construction.
    pub handle: SessionHandle,
    /// The shard the session runs on.
    pub shard: usize,
    /// Whether the request was coalesced onto an in-flight optimization.
    pub coalesced: bool,
    /// What was granted (level, ε, effective budget). A coalesced request
    /// reports the full-precision grant of its own request; the shared
    /// session runs under the *leader's* grant.
    pub grant: Grant,
}

/// Why the front door rejected a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontdoorError {
    /// The tenant's token bucket is dry; only this tenant is affected.
    QuotaExhausted {
        /// The rejected tenant.
        tenant: u64,
    },
    /// The routed shard's admission control rejected the session even
    /// after degradation — the shard is saturated and the request is shed.
    Saturated(AdmissionError),
}

impl fmt::Display for FrontdoorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontdoorError::QuotaExhausted { tenant } => {
                write!(f, "tenant {tenant} quota exhausted")
            }
            FrontdoorError::Saturated(e) => write!(f, "shard saturated: {e}"),
        }
    }
}

impl std::error::Error for FrontdoorError {}

/// Counters of one front door instance (process-global `frontdoor.*`
/// metrics aggregate across instances; these are per-instance).
#[derive(Clone, Copy, Debug, Default)]
pub struct FrontDoorStats {
    /// Requests presented (admitted + coalesced + shed).
    pub offered: u64,
    /// Requests admitted as fresh sessions (any grant level).
    pub admitted: u64,
    /// Requests coalesced onto in-flight sessions.
    pub coalesced: u64,
    /// Fresh sessions admitted at a degraded level.
    pub degraded: u64,
    /// Requests shed (quota + saturated shards).
    pub shed: u64,
    /// Shed requests attributable to per-tenant quotas.
    pub quota_rejected: u64,
    /// Deepest degradation level currently active on any shard.
    pub degrade_level: u64,
}

impl FrontDoorStats {
    /// Shed requests per mille of offered requests.
    pub fn shed_per_mille(&self) -> u64 {
        (self.shed * 1000).checked_div(self.offered).unwrap_or(0)
    }

    /// Coalesced requests per mille of offered requests.
    pub fn coalesce_per_mille(&self) -> u64 {
        (self.coalesced * 1000)
            .checked_div(self.offered)
            .unwrap_or(0)
    }
}

struct Shard {
    service: OptimizationService,
    coalesce: CoalesceMap,
    /// Current degradation level (a `DegradeLevel` as u64).
    degrade: AtomicU64,
}

/// The sharded multi-tenant front door. Dropping it shuts every shard's
/// service down.
pub struct FrontDoor {
    config: FrontDoorConfig,
    shards: Vec<Shard>,
    quotas: QuotaSet,
    offered: AtomicU64,
    admitted: AtomicU64,
    coalesced: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    quota_rejected: AtomicU64,
}

impl FrontDoor {
    /// Starts a front door: `config.shards` independent services, each
    /// with its own scheduler, executor pool, and plan cache.
    pub fn new(config: FrontDoorConfig) -> Self {
        let shards = (0..config.shards.max(1))
            .map(|_| Shard {
                service: OptimizationService::new(config.shard),
                coalesce: CoalesceMap::new(),
                degrade: AtomicU64::new(0),
            })
            .collect();
        FrontDoor {
            config,
            shards,
            quotas: QuotaSet::new(config.quota),
            offered: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
        }
    }

    /// The shard `(tenant, context)` routes to. Deterministic, so a
    /// tenant's sessions for one catalog always share a shard (and its
    /// cross-query plan cache), while different tenants spread out.
    pub fn shard_of(&self, tenant: u64, context: u64) -> usize {
        // FNV-1a over the two route keys: cheap and well-mixed.
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for part in [tenant, context] {
            for byte in part.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Submits a request. `build` constructs the session's optimizer and
    /// is only called for a fresh (non-coalesced) admission, with the
    /// [`Grant`] naming the ε precision and budget it must honor.
    ///
    /// # Errors
    /// [`FrontdoorError::QuotaExhausted`] when the tenant's bucket is dry;
    /// [`FrontdoorError::Saturated`] when the routed shard's admission
    /// control sheds the request even after degradation.
    pub fn submit<F>(&self, request: FrontRequest, build: F) -> Result<Admitted, FrontdoorError>
    where
        F: FnOnce(&Grant) -> Box<dyn PlanExchange>,
    {
        let m = metrics();
        self.offered.fetch_add(1, Ordering::Relaxed);
        m.frontdoor_offered.incr();

        // 1. Quota: charged per request (coalesced or not) — the bucket
        //    governs request rate, not optimization cost.
        if let QuotaDecision::Exhausted { shed } = self.quotas.charge(request.tenant) {
            self.shed.fetch_add(1, Ordering::Relaxed);
            self.quota_rejected.fetch_add(1, Ordering::Relaxed);
            m.frontdoor_shed.incr();
            m.frontdoor_quota_rejected.incr();
            journal::emit_with(Target::Frontdoor, Level::Warn, || EventKind::QuotaBreach {
                tenant: request.tenant,
                shed,
            });
            return Err(FrontdoorError::QuotaExhausted {
                tenant: request.tenant,
            });
        }

        let shard_idx = self.shard_of(request.tenant, request.context);
        let shard = &self.shards[shard_idx];

        // 2. Coalescing: an identical in-flight optimization serves this
        //    request for free — the subscriber shares the leader's session.
        let key = (request.tenant, request.context, request.query);
        if let Some(handle) = shard.coalesce.join(&key) {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            m.frontdoor_coalesced.incr();
            if journal::enabled(Target::Frontdoor, Level::Debug) {
                let epoch = handle.snapshot().epoch;
                journal::emit_with(Target::Frontdoor, Level::Debug, || {
                    EventKind::SessionCoalesced {
                        tenant: request.tenant,
                        epoch,
                    }
                });
            }
            return Ok(Admitted {
                handle,
                shard: shard_idx,
                coalesced: true,
                grant: Grant::full(request.budget),
            });
        }

        // 3. Degradation ladder: pick the admission tier from the shard's
        //    SLO breach mask and live-session pressure.
        let level = degrade::decide(
            &self.config.degradation,
            shard.service.slo_breached(),
            shard.service.live_sessions(),
            shard.service.admission_config().max_live_sessions,
        );
        self.note_degrade_transition(shard_idx, level);
        let grant = Grant::at(level, request.budget, &self.config.degradation);

        // 4. Build and submit at the granted tier.
        let optimizer = build(&grant);
        let session = SessionRequest {
            optimizer,
            budget: grant.budget,
            query: request.query,
            context: request.context,
        };
        match shard.service.submit(session) {
            Ok(handle) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                if level != DegradeLevel::Full {
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                    m.frontdoor_degraded.incr();
                }
                shard.coalesce.lead(key, handle.clone());
                Ok(Admitted {
                    handle,
                    shard: shard_idx,
                    coalesced: false,
                    grant,
                })
            }
            Err(e) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                m.frontdoor_shed.incr();
                Err(FrontdoorError::Saturated(e))
            }
        }
    }

    /// Journals a shard's ladder transition and refreshes the
    /// `frontdoor.degrade_level` gauge (deepest level across shards).
    fn note_degrade_transition(&self, shard_idx: usize, level: DegradeLevel) {
        let shard = &self.shards[shard_idx];
        let prev = shard.degrade.swap(level.as_u64(), Ordering::Relaxed);
        if prev == level.as_u64() {
            return;
        }
        let severity = if level.as_u64() > prev {
            Level::Warn
        } else {
            Level::Info
        };
        journal::emit_with(Target::Frontdoor, severity, || {
            EventKind::DegradeTransition {
                shard: shard_idx as u64,
                from: prev,
                to: level.as_u64(),
            }
        });
        let deepest = self
            .shards
            .iter()
            .map(|s| s.degrade.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        metrics().frontdoor_degrade_level.set(deepest);
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The degradation level shard `idx` last admitted at.
    pub fn shard_degrade_level(&self, idx: usize) -> DegradeLevel {
        DegradeLevel::from_u64(self.shards[idx].degrade.load(Ordering::Relaxed))
    }

    /// In-flight coalescing entries on shard `idx` (finished leaders may
    /// linger until lazily swept).
    pub fn coalesce_entries(&self, idx: usize) -> usize {
        self.shards[idx].coalesce.len()
    }

    /// This instance's front-door counters.
    pub fn stats(&self) -> FrontDoorStats {
        FrontDoorStats {
            offered: self.offered.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            quota_rejected: self.quota_rejected.load(Ordering::Relaxed),
            degrade_level: self
                .shards
                .iter()
                .map(|s| s.degrade.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
        }
    }

    /// Per-shard service statistics, indexed by shard. Each shard's TTFF
    /// and queue-delay percentiles are computed over *its own* sessions —
    /// the isolation surface the multi-tenant tests pin.
    pub fn shard_stats(&self) -> Vec<ServiceStats> {
        self.shards.iter().map(|s| s.service.stats()).collect()
    }

    /// Service statistics of shard `idx`.
    pub fn shard_service_stats(&self, idx: usize) -> ServiceStats {
        self.shards[idx].service.stats()
    }

    /// Shuts every shard down (equivalent to dropping the front door).
    pub fn shutdown(self) {
        drop(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn door(shards: usize) -> FrontDoor {
        FrontDoor::new(FrontDoorConfig {
            shards,
            // Zero workers: admission-only services, nothing is stepped —
            // routing and accounting tests stay deterministic.
            shard: ServiceConfig {
                workers: 0,
                ..ServiceConfig::default()
            },
            ..FrontDoorConfig::default()
        })
    }

    #[test]
    fn routing_is_deterministic_and_spreads() {
        let d = door(8);
        let mut seen = std::collections::HashSet::new();
        for tenant in 0..64u64 {
            let s = d.shard_of(tenant, 0xC0FFEE);
            assert_eq!(s, d.shard_of(tenant, 0xC0FFEE), "stable route");
            assert!(s < 8);
            seen.insert(s);
        }
        assert!(
            seen.len() >= 6,
            "64 tenants should cover most of 8 shards, got {}",
            seen.len()
        );
    }

    #[test]
    fn same_tenant_same_context_shares_a_shard() {
        let d = door(4);
        let a = d.shard_of(42, 1);
        assert_eq!(a, d.shard_of(42, 1));
        // Different context may route elsewhere (not asserted — hashing),
        // but the route must stay in range.
        assert!(d.shard_of(42, 2) < 4);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let d = door(0);
        assert_eq!(d.shards(), 1);
        assert_eq!(d.shard_of(7, 7), 0);
    }

    #[test]
    fn stats_rates_handle_zero_offered() {
        let s = FrontDoorStats::default();
        assert_eq!(s.shed_per_mille(), 0);
        assert_eq!(s.coalesce_per_mille(), 0);
    }
}
