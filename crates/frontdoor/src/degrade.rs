//! The SLO-aware degradation ladder: full precision → coarser ε-box
//! precision → reduced budget → shed.
//!
//! The paper's anytime contract is what makes this ladder possible: RMQ
//! trades plan quality for response time *continuously*, so an overloaded
//! serving system has two useful intermediate positions between "serve at
//! full quality" and "reject the request". The ε-Pareto box archive
//! (Trummer & Koch 2014) is the principled first step down — the frontier
//! stays within a per-metric factor of the true one while the archive (and
//! therefore per-iteration work) shrinks — and a reduced budget is the
//! second: sessions finish sooner, the shard's live-session queue drains
//! faster, and admission stops hitting its hard cap. Only when both steps
//! are exhausted does the front door shed.

use std::time::Duration;

use moqo_core::optimizer::Budget;

/// How far down the ladder a new session is admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum DegradeLevel {
    /// Requested precision and budget.
    Full = 0,
    /// Coarser ε-box archive precision; budget unchanged.
    CoarseEps = 1,
    /// Coarser ε-box precision *and* a reduced budget.
    ReducedBudget = 2,
}

impl DegradeLevel {
    /// Numeric level (journaled and exported as a gauge).
    pub fn as_u64(self) -> u64 {
        self as u64
    }

    /// Level from its numeric encoding (saturates at the deepest tier).
    pub(crate) fn from_u64(v: u64) -> Self {
        match v {
            0 => DegradeLevel::Full,
            1 => DegradeLevel::CoarseEps,
            _ => DegradeLevel::ReducedBudget,
        }
    }
}

/// Configuration of the degradation ladder.
#[derive(Clone, Copy, Debug)]
pub struct DegradationConfig {
    /// Whether the ladder is active at all. Disabled, every session is
    /// admitted at [`DegradeLevel::Full`] until the shard's admission
    /// control sheds outright — the ablation the bench harness measures
    /// degrade-before-shed against.
    pub enabled: bool,
    /// Uniform per-metric ε-box factor degraded sessions are built with
    /// (must be > 1; see `ArchiveConfig::eps_box`).
    pub eps: f64,
    /// Budget multiplier (percent) applied at
    /// [`DegradeLevel::ReducedBudget`]; clamped to `1..=100`.
    pub budget_pct: u32,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            enabled: true,
            // The paper's α-schedule starts very coarse (α = 25) and
            // tightens as a session converges; a degraded grant pins
            // precision at the coarse end instead, so per-iteration work
            // stays flat rather than growing with the frontier. A factor
            // *below* the schedule's starting point would make degraded
            // sessions carry *larger* archives than full-precision ones —
            // degrading into more work.
            eps: 32.0,
            budget_pct: 50,
        }
    }
}

/// What a session was actually granted: the ladder position plus the
/// concrete parameters the optimizer must be built with.
#[derive(Clone, Copy, Debug)]
pub struct Grant {
    /// Ladder position.
    pub level: DegradeLevel,
    /// ε-box factor the optimizer must use (`None` = requested precision).
    pub eps: Option<f64>,
    /// The (possibly reduced) budget the session runs under.
    pub budget: Budget,
}

impl Grant {
    /// A full-precision grant for the requested budget.
    pub(crate) fn full(budget: Budget) -> Self {
        Grant {
            level: DegradeLevel::Full,
            eps: None,
            budget,
        }
    }

    /// The grant for `level` under `config`.
    pub(crate) fn at(level: DegradeLevel, budget: Budget, config: &DegradationConfig) -> Self {
        match level {
            DegradeLevel::Full => Grant::full(budget),
            DegradeLevel::CoarseEps => Grant {
                level,
                eps: Some(config.eps),
                budget,
            },
            DegradeLevel::ReducedBudget => Grant {
                level,
                eps: Some(config.eps),
                budget: reduce_budget(budget, config.budget_pct),
            },
        }
    }
}

/// Scales a budget down to `pct` percent. Iteration budgets keep at least
/// one iteration; time budgets scale their duration; absolute deadlines
/// are left untouched (the cutoff is the client's contract).
pub(crate) fn reduce_budget(budget: Budget, pct: u32) -> Budget {
    let pct = pct.clamp(1, 100) as u64;
    match budget {
        Budget::Iterations(n) => Budget::Iterations((n * pct / 100).max(1)),
        Budget::Time(d) => Budget::Time(Duration::from_nanos((d.as_nanos() as u64 / 100) * pct)),
        Budget::Deadline(at) => Budget::Deadline(at),
    }
}

/// Picks the ladder position for a new session on a shard with `live` of
/// `cap` admission slots occupied and the given SLO breach mask.
///
/// The policy is deliberately simple and deterministic — and it engages
/// *early*. Degradation only averts sheds if the sessions already queued
/// when the cap is finally hit were admitted with reduced budgets; a
/// ladder that waits until the queue is nearly full degrades only the
/// last few admissions and drains no faster than no ladder at all.
///
/// * at ≥ 1/2 of the live-session cap, new sessions take the deepest tier
///   (reduced budget), so a queue that does fill is half cheap sessions
///   and drains well before the backlog turns into sheds;
/// * under an SLO breach, or at ≥ 1/4 of the cap, precision is coarsened
///   (the archive stays at the α-schedule's coarse end) while budgets
///   stay intact;
/// * otherwise the session runs at full precision.
pub(crate) fn decide(
    config: &DegradationConfig,
    slo_breached: u64,
    live: usize,
    cap: usize,
) -> DegradeLevel {
    if !config.enabled || cap == 0 {
        return DegradeLevel::Full;
    }
    if live * 2 >= cap {
        DegradeLevel::ReducedBudget
    } else if slo_breached != 0 || live * 4 >= cap {
        DegradeLevel::CoarseEps
    } else {
        DegradeLevel::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_escalates_with_pressure_and_breach() {
        let cfg = DegradationConfig::default();
        assert_eq!(decide(&cfg, 0, 0, 64), DegradeLevel::Full);
        assert_eq!(decide(&cfg, 0, 15, 64), DegradeLevel::Full);
        // Quarter-full coarsens precision even without a breach.
        assert_eq!(decide(&cfg, 0, 16, 64), DegradeLevel::CoarseEps);
        // Any SLO breach coarsens precision immediately.
        assert_eq!(decide(&cfg, 1, 0, 64), DegradeLevel::CoarseEps);
        // From half-full on, budgets are cut so the queue drains before
        // the backlog turns into sheds.
        assert_eq!(decide(&cfg, 0, 32, 64), DegradeLevel::ReducedBudget);
        assert_eq!(decide(&cfg, 7, 64, 64), DegradeLevel::ReducedBudget);
    }

    #[test]
    fn disabled_ladder_always_grants_full() {
        let cfg = DegradationConfig {
            enabled: false,
            ..DegradationConfig::default()
        };
        assert_eq!(decide(&cfg, 7, 64, 64), DegradeLevel::Full);
    }

    #[test]
    fn grants_carry_eps_and_reduced_budget() {
        let cfg = DegradationConfig::default();
        let full = Grant::at(DegradeLevel::Full, Budget::Iterations(40), &cfg);
        assert_eq!(full.eps, None);
        assert_eq!(full.budget, Budget::Iterations(40));

        let coarse = Grant::at(DegradeLevel::CoarseEps, Budget::Iterations(40), &cfg);
        assert_eq!(coarse.eps, Some(32.0));
        assert_eq!(coarse.budget, Budget::Iterations(40), "budget intact");

        let reduced = Grant::at(DegradeLevel::ReducedBudget, Budget::Iterations(40), &cfg);
        assert_eq!(reduced.eps, Some(32.0));
        assert_eq!(reduced.budget, Budget::Iterations(20));
    }

    #[test]
    fn budget_reduction_floors_and_scales() {
        assert_eq!(
            reduce_budget(Budget::Iterations(1), 50),
            Budget::Iterations(1),
            "at least one iteration survives"
        );
        assert_eq!(
            reduce_budget(Budget::Time(Duration::from_millis(100)), 25),
            Budget::Time(Duration::from_millis(25))
        );
        let at = std::time::Instant::now() + Duration::from_secs(5);
        assert_eq!(
            reduce_budget(Budget::Deadline(at), 50),
            Budget::Deadline(at),
            "absolute deadlines are the client's contract"
        );
        // Out-of-range percentages clamp instead of zeroing budgets.
        assert_eq!(
            reduce_budget(Budget::Iterations(100), 0),
            Budget::Iterations(1)
        );
        assert_eq!(
            reduce_budget(Budget::Iterations(100), 700),
            Budget::Iterations(100)
        );
    }

    #[test]
    fn level_roundtrips_through_u64() {
        for level in [
            DegradeLevel::Full,
            DegradeLevel::CoarseEps,
            DegradeLevel::ReducedBudget,
        ] {
            assert_eq!(DegradeLevel::from_u64(level.as_u64()), level);
        }
        assert_eq!(DegradeLevel::from_u64(99), DegradeLevel::ReducedBudget);
    }
}
