//! Request coalescing: concurrent sessions for an identical
//! `(tenant, context fingerprint, table set)` share one optimization.
//!
//! The fan-back contract is structural, not copied: a coalesced subscriber
//! receives a *clone* of the leader's [`SessionHandle`], and cloned handles
//! share the leader session's state — so every subscriber observes the
//! **same epoch-numbered frontier snapshots** by construction, and a late
//! subscriber's first `snapshot()` starts at the leader's *current* epoch
//! (catch-up is a read, not a replay). When the leader finishes, its map
//! entry is dropped lazily on the next lookup and the next identical
//! request starts a fresh optimization (warm-started from the cross-query
//! cache the finished leader published into).

use std::collections::HashMap;
use std::sync::Mutex;

use moqo_core::tables::TableSet;
use moqo_service::SessionHandle;

/// Coalescing key: requests are only merged when the *tenant*, the cache
/// context (catalog + cost model fingerprint), and the exact table set all
/// match. Tenant membership in the key keeps isolation intact even when
/// two tenants hash to the same shard.
pub(crate) type CoalesceKey = (u64, u64, TableSet);

/// Above this many live entries a lookup sweeps finished leaders out of
/// the map (entries are otherwise removed lazily on key collision).
const SWEEP_THRESHOLD: usize = 4096;

/// One shard's coalescing map.
pub(crate) struct CoalesceMap {
    inflight: Mutex<HashMap<CoalesceKey, SessionHandle>>,
}

impl CoalesceMap {
    pub(crate) fn new() -> Self {
        CoalesceMap {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Returns a clone of the in-flight leader's handle for `key`, if one
    /// exists and is still running. Finished leaders are evicted.
    pub(crate) fn join(&self, key: &CoalesceKey) -> Option<SessionHandle> {
        let mut map = self.inflight.lock().unwrap();
        if map.len() > SWEEP_THRESHOLD {
            map.retain(|_, h| !h.status().is_done());
        }
        match map.get(key) {
            Some(handle) if !handle.status().is_done() => Some(handle.clone()),
            Some(_) => {
                map.remove(key);
                None
            }
            None => None,
        }
    }

    /// Registers `handle` as the in-flight leader for `key`.
    pub(crate) fn lead(&self, key: CoalesceKey, handle: SessionHandle) {
        self.inflight.lock().unwrap().insert(key, handle);
    }

    /// Live (not yet swept) entries — for introspection and tests.
    pub(crate) fn len(&self) -> usize {
        self.inflight.lock().unwrap().len()
    }
}
