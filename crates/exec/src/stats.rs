//! Execution statistics: the measured counterparts of the cost model's
//! three resource metrics.

use std::ops::AddAssign;

/// Resource usage measured while executing a plan.
///
/// The counters mirror the resource cost model's metrics: `tuples_processed`
/// tracks work (the model's *time* proxy), `peak_buffer_rows` tracks the
/// largest number of rows held in memory by any single operator (the
/// model's *buffer* metric counts pages additively; peak vs. sum is
/// reported separately via `total_buffer_rows`), and `spilled_rows` counts
/// rows written to simulated temporary storage (the *disk* metric).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total tuples read, probed, or emitted across all operators.
    pub tuples_processed: u64,
    /// Rows held in memory by the hungriest single operator.
    pub peak_buffer_rows: u64,
    /// Sum over operators of their peak buffered rows (additive, like the
    /// cost model's buffer metric).
    pub total_buffer_rows: u64,
    /// Rows written to temporary storage (partitions, runs,
    /// materializations).
    pub spilled_rows: u64,
    /// Number of times an inner input was re-scanned (block nested loops).
    pub inner_rescans: u64,
}

impl ExecStats {
    /// Records an operator's local usage into the plan-level totals.
    pub fn absorb_operator(&mut self, op: OperatorStats) {
        self.tuples_processed += op.tuples;
        self.peak_buffer_rows = self.peak_buffer_rows.max(op.buffered_rows);
        self.total_buffer_rows += op.buffered_rows;
        self.spilled_rows += op.spilled_rows;
        self.inner_rescans += op.rescans;
    }
}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, other: ExecStats) {
        self.tuples_processed += other.tuples_processed;
        self.peak_buffer_rows = self.peak_buffer_rows.max(other.peak_buffer_rows);
        self.total_buffer_rows += other.total_buffer_rows;
        self.spilled_rows += other.spilled_rows;
        self.inner_rescans += other.inner_rescans;
    }
}

/// Usage of a single operator application.
#[derive(Clone, Copy, Debug, Default)]
pub struct OperatorStats {
    /// Tuples read/probed/emitted by this operator.
    pub tuples: u64,
    /// Peak rows buffered by this operator.
    pub buffered_rows: u64,
    /// Rows spilled by this operator.
    pub spilled_rows: u64,
    /// Inner re-scans performed by this operator.
    pub rescans: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_and_tracks_peak() {
        let mut total = ExecStats::default();
        total.absorb_operator(OperatorStats {
            tuples: 100,
            buffered_rows: 50,
            spilled_rows: 10,
            rescans: 0,
        });
        total.absorb_operator(OperatorStats {
            tuples: 10,
            buffered_rows: 80,
            spilled_rows: 0,
            rescans: 3,
        });
        assert_eq!(total.tuples_processed, 110);
        assert_eq!(total.peak_buffer_rows, 80);
        assert_eq!(total.total_buffer_rows, 130);
        assert_eq!(total.spilled_rows, 10);
        assert_eq!(total.inner_rescans, 3);
    }

    #[test]
    fn add_assign_merges_subtrees() {
        let mut a = ExecStats {
            tuples_processed: 5,
            peak_buffer_rows: 9,
            total_buffer_rows: 9,
            spilled_rows: 1,
            inner_rescans: 0,
        };
        a += ExecStats {
            tuples_processed: 7,
            peak_buffer_rows: 4,
            total_buffer_rows: 4,
            spilled_rows: 2,
            inner_rescans: 1,
        };
        assert_eq!(a.tuples_processed, 12);
        assert_eq!(a.peak_buffer_rows, 9);
        assert_eq!(a.total_buffer_rows, 13);
        assert_eq!(a.spilled_rows, 3);
        assert_eq!(a.inner_rescans, 1);
    }
}
