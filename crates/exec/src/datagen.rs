//! Synthetic data generation realizing a catalog's statistics.
//!
//! Every table gets one `i64` key column **per incident join edge**. For an
//! edge with selectivity `s`, both endpoint columns draw uniformly from the
//! domain `0..round(1/s)`: two uniform draws collide with probability
//! `s`, so the equi-join on that column realizes the catalog's selectivity
//! in expectation. Cardinalities can be scaled down (`max_rows`) while
//! *selectivities are preserved*, so executions stay fast without
//! distorting which plans are relatively cheap.

use moqo_catalog::Catalog;
use moqo_core::tables::TableId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of synthetic data generation.
#[derive(Clone, Copy, Debug)]
pub struct DataGenConfig {
    /// RNG seed.
    pub seed: u64,
    /// Cap on generated rows per table. Catalog cardinalities above the cap
    /// are scaled down proportionally (the largest table maps to the cap).
    pub max_rows: usize,
}

impl Default for DataGenConfig {
    fn default() -> Self {
        DataGenConfig {
            seed: 0,
            max_rows: 4_096,
        }
    }
}

/// One synthetic table: a key column per incident edge, column-major.
#[derive(Clone, Debug)]
pub struct TableData {
    /// Number of rows.
    pub rows: usize,
    /// `columns[e]` is the key column for incident edge index `e` (order
    /// matches [`Database::edge_index`]).
    pub columns: Vec<Vec<i64>>,
}

/// A generated database over a catalog.
pub struct Database {
    catalog_tables: usize,
    /// Per table: generated data.
    tables: Vec<TableData>,
    /// Per table: the edge ids (indices into `catalog.edges()`) incident to
    /// it, in column order.
    incident_edges: Vec<Vec<usize>>,
}

impl Database {
    /// Generates data for every table of `catalog`.
    pub fn generate(catalog: &Catalog, config: DataGenConfig) -> Self {
        let n = catalog.num_tables();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Scale factor: largest catalog table maps to at most max_rows.
        let largest = (0..n)
            .map(|t| catalog.rows(TableId::new(t)))
            .fold(1.0f64, f64::max);
        let scale = (config.max_rows as f64 / largest).min(1.0);

        let mut incident_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (e, edge) in catalog.edges().iter().enumerate() {
            incident_edges[edge.a.index()].push(e);
            incident_edges[edge.b.index()].push(e);
        }

        let mut tables = Vec::with_capacity(n);
        for (t, edges) in incident_edges.iter().enumerate() {
            let rows = ((catalog.rows(TableId::new(t)) * scale).round() as usize).max(2);
            let columns = edges
                .iter()
                .map(|&e| {
                    let sel = catalog.edges()[e].selectivity;
                    // Domain size ~ 1/sel realizes the selectivity for a
                    // uniform equi-join; at least 1 (cross-product-like).
                    let domain = (1.0 / sel).round().max(1.0) as i64;
                    (0..rows).map(|_| rng.random_range(0..domain)).collect()
                })
                .collect();
            tables.push(TableData { rows, columns });
        }
        Database {
            catalog_tables: n,
            tables,
            incident_edges,
        }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.catalog_tables
    }

    /// The generated data of table `t`.
    pub fn table(&self, t: TableId) -> &TableData {
        &self.tables[t.index()]
    }

    /// Column index of edge `edge_id` within table `t`'s data, if incident.
    pub fn edge_index(&self, t: TableId, edge_id: usize) -> Option<usize> {
        self.incident_edges[t.index()]
            .iter()
            .position(|&e| e == edge_id)
    }

    /// The key value of `row` of table `t` for edge `edge_id`.
    ///
    /// # Panics
    /// Panics if the edge is not incident to `t`.
    pub fn key(&self, t: TableId, edge_id: usize, row: usize) -> i64 {
        let col = self.edge_index(t, edge_id).expect("edge incident to table");
        self.tables[t.index()].columns[col][row]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_workload::{GraphShape, SelectivityMethod, WorkloadSpec};

    fn small_db(seed: u64) -> (std::sync::Arc<Catalog>, Database) {
        let (catalog, _) = WorkloadSpec {
            tables: 5,
            shape: GraphShape::Chain,
            selectivity: SelectivityMethod::MinMax,
            seed,
        }
        .generate();
        let db = Database::generate(
            &catalog,
            DataGenConfig {
                seed,
                max_rows: 500,
            },
        );
        (catalog, db)
    }

    #[test]
    fn tables_respect_row_cap_and_scaling() {
        let (catalog, db) = small_db(3);
        for t in 0..catalog.num_tables() {
            let t = TableId::new(t);
            assert!(db.table(t).rows <= 500);
            assert!(db.table(t).rows >= 2);
        }
        // Relative sizes preserved: the biggest catalog table is the
        // biggest generated table.
        let biggest_catalog = (0..5)
            .max_by(|&a, &b| {
                catalog
                    .rows(TableId::new(a))
                    .total_cmp(&catalog.rows(TableId::new(b)))
            })
            .unwrap();
        let biggest_data = (0..5)
            .max_by_key(|&t| db.table(TableId::new(t)).rows)
            .unwrap();
        assert_eq!(biggest_catalog, biggest_data);
    }

    #[test]
    fn one_column_per_incident_edge() {
        let (catalog, db) = small_db(5);
        // Chain: endpoints have 1 incident edge, middles 2.
        assert_eq!(db.table(TableId::new(0)).columns.len(), 1);
        assert_eq!(db.table(TableId::new(2)).columns.len(), 2);
        for (e, edge) in catalog.edges().iter().enumerate() {
            assert!(db.edge_index(edge.a, e).is_some());
            assert!(db.edge_index(edge.b, e).is_some());
        }
        assert!(db.edge_index(TableId::new(0), 3).is_none());
    }

    #[test]
    fn realized_selectivity_matches_catalog() {
        // Fixed cardinalities/selectivity so the expected match count is
        // large regardless of the RNG stream backing table generation.
        let mut builder = Catalog::builder();
        let ta = builder.add_table("a", 300.0);
        let tb = builder.add_table("b", 400.0);
        builder.add_join(ta, tb, 0.01);
        let catalog = builder.build();
        let db = Database::generate(
            &catalog,
            DataGenConfig {
                seed: 7,
                max_rows: 500,
            },
        );
        // For the only edge, count matches by brute force and compare to
        // |A||B|*sel within generous sampling tolerance.
        let edge = catalog.edges()[0];
        let (a, b) = (edge.a, edge.b);
        let (ra, rb) = (db.table(a).rows, db.table(b).rows);
        let mut matches = 0usize;
        for i in 0..ra {
            for j in 0..rb {
                if db.key(a, 0, i) == db.key(b, 0, j) {
                    matches += 1;
                }
            }
        }
        let expected = ra as f64 * rb as f64 * edge.selectivity;
        // Expected counts are large for MinMax joins; allow 3x slack.
        assert!(
            (matches as f64) > expected / 3.0 && (matches as f64) < expected * 3.0,
            "matches {matches} vs expected {expected}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, db1) = small_db(11);
        let (_, db2) = small_db(11);
        for t in 0..5 {
            let t = TableId::new(t);
            assert_eq!(db1.table(t).columns, db2.table(t).columns);
        }
    }
}
