//! # moqo-exec — an in-memory execution engine for optimizer plans
//!
//! The paper assumes cost models and never executes plans; a downstream
//! user of the optimizer will. This crate closes the loop: it generates
//! synthetic relational data that *realizes* a catalog's cardinalities and
//! join selectivities, implements every physical operator of the resource
//! cost model (sequential/index scans; block-nested-loop, in-memory hash,
//! Grace hash, and sort-merge joins; pipelined vs. materialized transfer),
//! executes any [`moqo_core::plan::Plan`] against that data, and measures
//! **actual** resource usage — tuples processed, peak buffered rows,
//! spilled rows — so the cost model's tradeoffs can be validated instead of
//! merely assumed.
//!
//! Correctness invariant (heavily tested): *every* plan for the same query
//! computes the same result multiset, whatever its join order, operator
//! choices, or transfer modes — including all Pareto plans produced by the
//! optimizer.
//!
//! Scale note: synthetic tables are capped ([`datagen::DataGenConfig`]) so
//! executions stay laptop-sized; join keys are generated per edge with
//! domain `round(1/selectivity)`, which realizes the catalog's selectivity
//! in expectation under uniform hashing.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod datagen;
pub mod engine;
pub mod stats;

pub use datagen::{DataGenConfig, Database};
pub use engine::{execute, ExecError, ResultSet};
pub use stats::ExecStats;
