//! Plan execution: interprets optimizer plans over synthetic data.
//!
//! The engine implements every operator of the resource cost model
//! ([`moqo_cost::operators`]): sequential and index scans; block nested
//! loop (two block sizes), in-memory hash, Grace hash, and sort-merge
//! joins; pipelined vs. materialized transfer. Join predicates are the
//! conjunction of equi-joins over the catalog edges crossing the operand
//! cut — no crossing edge means a cross product, exactly like the
//! optimizer's unconstrained plan space.
//!
//! The measured counters are I/O-centric to match the cost model's page
//! formulas: `tuples_processed` counts tuples *read, written or emitted*
//! (not CPU comparisons), buffer counters track rows held in memory, and
//! `spilled_rows` counts partition/run/materialization writes.

use moqo_catalog::Catalog;
use moqo_core::fxhash::FxHashMap;
use moqo_core::plan::{Plan, PlanKind};
use moqo_core::tables::{TableId, TableSet};
use moqo_cost::operators::{JoinKind, JoinOp, ScanKind};

use crate::datagen::Database;
use crate::stats::{ExecStats, OperatorStats};

/// Rows per block-nested-loop block page (mirrors the cost model's
/// tuples-per-page constant).
const TUPLES_PER_PAGE: usize = 100;

/// Run size (rows) of the external sort's run-generation phase.
const SORT_RUN_ROWS: usize = 512;

/// Grace hash join partition count.
const GRACE_PARTITIONS: usize = 8;

/// Execution failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An intermediate result exceeded the configured row limit.
    RowLimit {
        /// The configured limit.
        limit: usize,
    },
    /// The plan references an operator id the engine cannot interpret
    /// (e.g. a plan built for a different cost model).
    UnknownOperator(u16),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::RowLimit { limit } => {
                write!(f, "intermediate result exceeded the row limit {limit}")
            }
            ExecError::UnknownOperator(id) => write!(f, "unknown operator id {id}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A materialized intermediate result: tuples of base-table row indices.
#[derive(Clone, Debug)]
pub struct ResultSet {
    /// The covered tables, ascending.
    pub tables: Vec<TableId>,
    /// One entry per output tuple: row indices aligned with `tables`.
    pub tuples: Vec<Vec<u32>>,
}

impl ResultSet {
    /// Number of result tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Sorts tuples lexicographically so results compare structurally.
    pub fn canonicalize(&mut self) {
        self.tuples.sort_unstable();
    }

    fn position(&self, t: TableId) -> usize {
        self.tables
            .iter()
            .position(|x| *x == t)
            .expect("covered table")
    }
}

/// A finished execution: the result plus measured resource usage.
#[derive(Clone, Debug)]
pub struct Execution {
    /// The (canonicalized) result set.
    pub result: ResultSet,
    /// Measured resource usage.
    pub stats: ExecStats,
}

/// Executes `plan` against `db` with the default row limit (2 million).
pub fn execute(plan: &Plan, catalog: &Catalog, db: &Database) -> Result<Execution, ExecError> {
    execute_with_limit(plan, catalog, db, 2_000_000)
}

/// Executes with an explicit intermediate-result row limit.
pub fn execute_with_limit(
    plan: &Plan,
    catalog: &Catalog,
    db: &Database,
    row_limit: usize,
) -> Result<Execution, ExecError> {
    let engine = Engine {
        catalog,
        db,
        row_limit,
    };
    let mut stats = ExecStats::default();
    let mut result = engine.eval(plan, &mut stats)?;
    result.canonicalize();
    flush_obs(&stats);
    Ok(Execution { result, stats })
}

/// Flushes one finished execution's measured usage into the global
/// observability registry (counters + peak-buffer histogram) and journals
/// an `ExecFinished` event when the exec target is enabled.
fn flush_obs(stats: &ExecStats) {
    use moqo_obs::journal::{self, EventKind, Level, Target};
    let m = moqo_obs::metrics();
    m.exec_runs.incr();
    m.exec_tuples.add(stats.tuples_processed);
    m.exec_spilled_rows.add(stats.spilled_rows);
    m.exec_inner_rescans.add(stats.inner_rescans);
    m.exec_peak_buffer_rows.record(stats.peak_buffer_rows);
    if journal::enabled(Target::Exec, Level::Info) {
        let (tuples, spilled) = (stats.tuples_processed, stats.spilled_rows);
        journal::emit_with(Target::Exec, Level::Info, || EventKind::ExecFinished {
            tuples,
            spilled,
        });
    }
}

struct Engine<'a> {
    catalog: &'a Catalog,
    db: &'a Database,
    row_limit: usize,
}

/// The equi-join predicate across a cut: pairs of (edge id, outer table,
/// inner table) for every catalog edge crossing the cut.
struct CutPredicate {
    parts: Vec<(usize, TableId, TableId)>,
}

impl<'a> Engine<'a> {
    fn eval(&self, plan: &Plan, stats: &mut ExecStats) -> Result<ResultSet, ExecError> {
        match plan.kind() {
            PlanKind::Scan { table, op } => {
                if op.0 > 1 {
                    return Err(ExecError::UnknownOperator(op.0));
                }
                Ok(self.scan(*table, ScanKind::from_id(*op), stats))
            }
            PlanKind::Join { outer, inner, op } => {
                if op.0 as usize >= JoinKind::ALL.len() * 2 {
                    return Err(ExecError::UnknownOperator(op.0));
                }
                let left = self.eval(outer, stats)?;
                let right = self.eval(inner, stats)?;
                self.join(
                    left,
                    right,
                    JoinOp::from_id(*op),
                    outer.rel(),
                    inner.rel(),
                    stats,
                )
            }
        }
    }

    fn scan(&self, table: TableId, kind: ScanKind, stats: &mut ExecStats) -> ResultSet {
        let data = self.db.table(table);
        let mut rows: Vec<u32> = (0..data.rows as u32).collect();
        let mut op = OperatorStats {
            tuples: data.rows as u64,
            ..OperatorStats::default()
        };
        match kind {
            ScanKind::Sequential => {
                op.buffered_rows = (data.rows as u64).min(64);
            }
            ScanKind::Index => {
                // Index order: sorted by the first key column (or row id
                // when the table has no incident edges).
                if let Some(col) = data.columns.first() {
                    rows.sort_by_key(|&r| col[r as usize]);
                }
                op.buffered_rows = 1;
            }
        }
        stats.absorb_operator(op);
        ResultSet {
            tables: vec![table],
            tuples: rows.into_iter().map(|r| vec![r]).collect(),
        }
    }

    fn cut_predicate(&self, outer: TableSet, inner: TableSet) -> CutPredicate {
        let mut parts = Vec::new();
        for (e, edge) in self.catalog.edges().iter().enumerate() {
            if outer.contains(edge.a) && inner.contains(edge.b) {
                parts.push((e, edge.a, edge.b));
            } else if outer.contains(edge.b) && inner.contains(edge.a) {
                parts.push((e, edge.b, edge.a));
            }
        }
        CutPredicate { parts }
    }

    /// Composite key of an outer-side tuple under the cut predicate.
    fn outer_key(&self, pred: &CutPredicate, rs: &ResultSet, tuple: &[u32]) -> Vec<i64> {
        pred.parts
            .iter()
            .map(|&(e, ot, _)| self.db.key(ot, e, tuple[rs.position(ot)] as usize))
            .collect()
    }

    /// Composite key of an inner-side tuple under the cut predicate.
    fn inner_key(&self, pred: &CutPredicate, rs: &ResultSet, tuple: &[u32]) -> Vec<i64> {
        pred.parts
            .iter()
            .map(|&(e, _, it)| self.db.key(it, e, tuple[rs.position(it)] as usize))
            .collect()
    }

    fn join(
        &self,
        left: ResultSet,
        right: ResultSet,
        op: JoinOp,
        outer_rel: TableSet,
        inner_rel: TableSet,
        stats: &mut ExecStats,
    ) -> Result<ResultSet, ExecError> {
        let pred = self.cut_predicate(outer_rel, inner_rel);
        let mut op_stats = OperatorStats::default();
        let tuples = match op.kind {
            JoinKind::Hash => self.hash_join(&pred, &left, &right, &mut op_stats)?,
            JoinKind::GraceHash => self.grace_join(&pred, &left, &right, &mut op_stats)?,
            JoinKind::BnlSmall => self.bnl_join(&pred, &left, &right, 4, &mut op_stats)?,
            JoinKind::BnlLarge => self.bnl_join(&pred, &left, &right, 64, &mut op_stats)?,
            JoinKind::SortMerge => self.merge_join(&pred, &left, &right, &mut op_stats)?,
        };
        if op.materialize {
            op_stats.spilled_rows += tuples.len() as u64;
            op_stats.tuples += tuples.len() as u64;
        }
        stats.absorb_operator(op_stats);

        // Output schema: union of both sides, ascending by table id.
        let mut tables = left.tables.clone();
        tables.extend(&right.tables);
        let mut order: Vec<usize> = (0..tables.len()).collect();
        order.sort_by_key(|&i| tables[i]);
        let tables_sorted: Vec<TableId> = order.iter().map(|&i| tables[i]).collect();
        let tuples_sorted: Vec<Vec<u32>> = tuples
            .into_iter()
            .map(|t| order.iter().map(|&i| t[i]).collect())
            .collect();
        Ok(ResultSet {
            tables: tables_sorted,
            tuples: tuples_sorted,
        })
    }

    fn emit_check(&self, emitted: usize) -> Result<(), ExecError> {
        if emitted > self.row_limit {
            Err(ExecError::RowLimit {
                limit: self.row_limit,
            })
        } else {
            Ok(())
        }
    }

    /// Concatenated output tuple (left columns then right columns,
    /// re-ordered by the caller).
    fn concat(l: &[u32], r: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(l.len() + r.len());
        out.extend_from_slice(l);
        out.extend_from_slice(r);
        out
    }

    fn hash_join(
        &self,
        pred: &CutPredicate,
        left: &ResultSet,
        right: &ResultSet,
        op: &mut OperatorStats,
    ) -> Result<Vec<Vec<u32>>, ExecError> {
        // Build on the inner (right) input.
        let mut table: FxHashMap<Vec<i64>, Vec<usize>> = FxHashMap::default();
        for (idx, tuple) in right.tuples.iter().enumerate() {
            table
                .entry(self.inner_key(pred, right, tuple))
                .or_default()
                .push(idx);
        }
        op.buffered_rows = right.len() as u64;
        op.tuples += right.len() as u64;
        let mut out = Vec::new();
        for ltuple in &left.tuples {
            op.tuples += 1;
            if let Some(matches) = table.get(&self.outer_key(pred, left, ltuple)) {
                for &ridx in matches {
                    out.push(Self::concat(ltuple, &right.tuples[ridx]));
                }
                self.emit_check(out.len())?;
            }
        }
        op.tuples += out.len() as u64;
        Ok(out)
    }

    fn grace_join(
        &self,
        pred: &CutPredicate,
        left: &ResultSet,
        right: &ResultSet,
        op: &mut OperatorStats,
    ) -> Result<Vec<Vec<u32>>, ExecError> {
        // Partition both inputs by key hash ("writing" them to disk).
        let hash_of = |key: &[i64]| -> usize {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for k in key {
                h = (h ^ *k as u64).wrapping_mul(0x1000_0000_01b3);
            }
            (h % GRACE_PARTITIONS as u64) as usize
        };
        let mut left_parts: Vec<Vec<usize>> = vec![Vec::new(); GRACE_PARTITIONS];
        let mut right_parts: Vec<Vec<usize>> = vec![Vec::new(); GRACE_PARTITIONS];
        for (idx, tuple) in left.tuples.iter().enumerate() {
            left_parts[hash_of(&self.outer_key(pred, left, tuple))].push(idx);
        }
        for (idx, tuple) in right.tuples.iter().enumerate() {
            right_parts[hash_of(&self.inner_key(pred, right, tuple))].push(idx);
        }
        op.spilled_rows += (left.len() + right.len()) as u64;
        // Partition write + read back.
        op.tuples += 2 * (left.len() + right.len()) as u64;

        let mut out = Vec::new();
        for p in 0..GRACE_PARTITIONS {
            let mut table: FxHashMap<Vec<i64>, Vec<usize>> = FxHashMap::default();
            for &ridx in &right_parts[p] {
                table
                    .entry(self.inner_key(pred, right, &right.tuples[ridx]))
                    .or_default()
                    .push(ridx);
            }
            op.buffered_rows = op.buffered_rows.max(right_parts[p].len() as u64);
            for &lidx in &left_parts[p] {
                let ltuple = &left.tuples[lidx];
                if let Some(matches) = table.get(&self.outer_key(pred, left, ltuple)) {
                    for &ridx in matches {
                        out.push(Self::concat(ltuple, &right.tuples[ridx]));
                    }
                    self.emit_check(out.len())?;
                }
            }
        }
        op.tuples += out.len() as u64;
        Ok(out)
    }

    fn bnl_join(
        &self,
        pred: &CutPredicate,
        left: &ResultSet,
        right: &ResultSet,
        block_pages: usize,
        op: &mut OperatorStats,
    ) -> Result<Vec<Vec<u32>>, ExecError> {
        let block_rows = (block_pages.saturating_sub(2)).max(1) * TUPLES_PER_PAGE;
        op.buffered_rows = block_rows.min(left.len().max(1)) as u64;
        op.tuples += left.len() as u64;
        let mut out = Vec::new();
        let mut first_pass = true;
        for block in left.tuples.chunks(block_rows.max(1)) {
            if !first_pass {
                op.rescans += 1;
            }
            first_pass = false;
            // One full inner scan per block.
            op.tuples += right.len() as u64;
            for rtuple in &right.tuples {
                let rkey = self.inner_key(pred, right, rtuple);
                for ltuple in block {
                    if self.outer_key(pred, left, ltuple) == rkey {
                        out.push(Self::concat(ltuple, rtuple));
                    }
                }
                self.emit_check(out.len())?;
            }
        }
        op.tuples += out.len() as u64;
        Ok(out)
    }

    fn merge_join(
        &self,
        pred: &CutPredicate,
        left: &ResultSet,
        right: &ResultSet,
        op: &mut OperatorStats,
    ) -> Result<Vec<Vec<u32>>, ExecError> {
        // External sort both inputs: run generation "spills" both inputs.
        let mut lkeys: Vec<(Vec<i64>, usize)> = left
            .tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (self.outer_key(pred, left, t), i))
            .collect();
        let mut rkeys: Vec<(Vec<i64>, usize)> = right
            .tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (self.inner_key(pred, right, t), i))
            .collect();
        lkeys.sort_unstable();
        rkeys.sort_unstable();
        op.spilled_rows += (left.len() + right.len()) as u64;
        // Run write + merge read.
        op.tuples += 2 * (left.len() + right.len()) as u64;
        op.buffered_rows = SORT_RUN_ROWS.min(left.len() + right.len()) as u64;

        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < lkeys.len() && j < rkeys.len() {
            match lkeys[i].0.cmp(&rkeys[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Emit the full group product.
                    let key = lkeys[i].0.clone();
                    let i_end = (i..lkeys.len())
                        .find(|&x| lkeys[x].0 != key)
                        .unwrap_or(lkeys.len());
                    let j_end = (j..rkeys.len())
                        .find(|&x| rkeys[x].0 != key)
                        .unwrap_or(rkeys.len());
                    for lkey in &lkeys[i..i_end] {
                        for rkey in &rkeys[j..j_end] {
                            out.push(Self::concat(&left.tuples[lkey.1], &right.tuples[rkey.1]));
                        }
                        self.emit_check(out.len())?;
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        op.tuples += out.len() as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::DataGenConfig;
    use moqo_core::plan::{Plan, PlanRef};
    use moqo_core::random_plan::random_plan;
    use moqo_cost::{ResourceCostModel, ResourceMetric};
    use moqo_workload::{GraphShape, SelectivityMethod, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup(
        n: usize,
        shape: GraphShape,
        seed: u64,
        max_rows: usize,
    ) -> (
        Arc<moqo_catalog::Catalog>,
        ResourceCostModel,
        Database,
        TableSet,
    ) {
        let (catalog, query) = WorkloadSpec {
            tables: n,
            shape,
            selectivity: SelectivityMethod::MinMax,
            seed,
        }
        .generate();
        let db = Database::generate(&catalog, DataGenConfig { seed, max_rows });
        let model = ResourceCostModel::new(catalog.clone(), &ResourceMetric::ALL);
        (catalog, model, db, query.tables())
    }

    fn op(kind: JoinKind, materialize: bool) -> moqo_core::model::JoinOpId {
        JoinOp { kind, materialize }.id()
    }

    /// Reference join: brute-force nested loops in test code.
    fn brute_force(
        catalog: &moqo_catalog::Catalog,
        db: &Database,
        tables: &[TableId],
    ) -> Vec<Vec<u32>> {
        let mut acc: Vec<Vec<u32>> = vec![vec![]];
        for (pos, &t) in tables.iter().enumerate() {
            let mut next = Vec::new();
            for base in &acc {
                for r in 0..db.table(t).rows as u32 {
                    // Check edges between t and all previously placed tables.
                    let ok = catalog.edges().iter().enumerate().all(|(e, edge)| {
                        let other = if edge.a == t {
                            edge.b
                        } else if edge.b == t {
                            edge.a
                        } else {
                            return true;
                        };
                        match tables[..pos].iter().position(|x| *x == other) {
                            None => true,
                            Some(oidx) => {
                                db.key(t, e, r as usize) == db.key(other, e, base[oidx] as usize)
                            }
                        }
                    });
                    if ok {
                        let mut tuple = base.clone();
                        tuple.push(r);
                        next.push(tuple);
                    }
                }
            }
            acc = next;
        }
        // Canonical order: tables ascending (input is ascending already).
        acc.sort_unstable();
        acc
    }

    #[test]
    fn every_join_operator_computes_the_same_result() {
        // Fixed cardinalities/selectivity (instead of a random workload) so
        // the join is guaranteed non-empty for any RNG stream.
        let mut builder = moqo_catalog::Catalog::builder();
        let ta = builder.add_table("a", 50.0);
        let tb = builder.add_table("b", 60.0);
        builder.add_join(ta, tb, 0.05);
        let catalog = Arc::new(builder.build());
        let db = Database::generate(
            &catalog,
            DataGenConfig {
                seed: 3,
                max_rows: 60,
            },
        );
        let model = ResourceCostModel::new(catalog.clone(), &ResourceMetric::ALL);
        let t0 = TableId::new(0);
        let t1 = TableId::new(1);
        let s0 = Plan::scan(&model, t0, ScanKind::Sequential.id());
        let s1 = Plan::scan(&model, t1, ScanKind::Index.id());
        let expected = brute_force(&catalog, &db, &[t0, t1]);
        assert!(!expected.is_empty(), "fixture: join must produce rows");
        for kind in JoinKind::ALL {
            for materialize in [false, true] {
                let plan = Plan::join(&model, s0.clone(), s1.clone(), op(kind, materialize));
                let exec = execute(&plan, &catalog, &db).expect("execution succeeds");
                assert_eq!(
                    exec.result.tuples, expected,
                    "{:?}/mat={materialize} computed a different result",
                    kind
                );
            }
        }
    }

    #[test]
    fn all_plans_for_a_query_agree() {
        // The fundamental equivalence invariant: random plans (any join
        // order, any operators) compute identical results.
        let (catalog, model, db, query) = setup(4, GraphShape::Chain, 7, 40);
        let mut rng = StdRng::seed_from_u64(9);
        let reference: Option<Vec<Vec<u32>>> = None;
        let mut reference = reference;
        for _ in 0..12 {
            let plan: PlanRef = random_plan(&model, query, &mut rng);
            let exec = execute(&plan, &catalog, &db).expect("execution succeeds");
            match &reference {
                None => reference = Some(exec.result.tuples),
                Some(r) => assert_eq!(
                    &exec.result.tuples,
                    r,
                    "plan {} disagrees",
                    plan.display(&model)
                ),
            }
        }
    }

    #[test]
    fn cross_products_are_supported() {
        // A star query joined satellite-first forces a cross product.
        let (catalog, model, db, _) = setup(3, GraphShape::Star, 5, 30);
        let s1 = Plan::scan(&model, TableId::new(1), ScanKind::Sequential.id());
        let s2 = Plan::scan(&model, TableId::new(2), ScanKind::Sequential.id());
        let cross = Plan::join(&model, s1, s2, op(JoinKind::Hash, false));
        let exec = execute(&cross, &catalog, &db).expect("cross product");
        assert_eq!(
            exec.result.len(),
            db.table(TableId::new(1)).rows * db.table(TableId::new(2)).rows
        );
        // Completing the join with the hub filters it back down.
        let hub = Plan::scan(&model, TableId::new(0), ScanKind::Sequential.id());
        let full = Plan::join(&model, cross, hub, op(JoinKind::Hash, false));
        let exec2 = execute(&full, &catalog, &db).expect("full query");
        assert!(exec2.result.len() < exec.result.len());
        let expected = brute_force(
            &catalog,
            &db,
            &[TableId::new(0), TableId::new(1), TableId::new(2)],
        );
        assert_eq!(exec2.result.len(), expected.len());
    }

    #[test]
    fn measured_tradeoffs_match_the_cost_model_story() {
        let (catalog, model, db, _) = setup(2, GraphShape::Chain, 11, 400);
        let s0 = Plan::scan(&model, TableId::new(0), ScanKind::Sequential.id());
        let s1 = Plan::scan(&model, TableId::new(1), ScanKind::Sequential.id());
        let run = |kind: JoinKind| {
            let plan = Plan::join(&model, s0.clone(), s1.clone(), op(kind, false));
            execute(&plan, &catalog, &db).unwrap().stats
        };
        let hash = run(JoinKind::Hash);
        let bnl = run(JoinKind::BnlSmall);
        let grace = run(JoinKind::GraceHash);
        // Hash buffers the whole inner; BNL-4 buffers only a block.
        assert!(hash.peak_buffer_rows > bnl.peak_buffer_rows);
        // BNL re-scans the inner; hash does not.
        assert!(bnl.inner_rescans > 0 || db.table(TableId::new(0)).rows <= 200);
        assert_eq!(hash.inner_rescans, 0);
        // Grace spills, hash does not; grace buffers less than hash.
        assert!(grace.spilled_rows > 0);
        assert_eq!(hash.spilled_rows, 0);
        assert!(grace.peak_buffer_rows <= hash.peak_buffer_rows);
        // BNL processes more tuples (re-scans) than hash.
        assert!(bnl.tuples_processed >= hash.tuples_processed);
    }

    #[test]
    fn materialization_spills_output() {
        let (catalog, model, db, _) = setup(2, GraphShape::Chain, 13, 100);
        let s0 = Plan::scan(&model, TableId::new(0), ScanKind::Sequential.id());
        let s1 = Plan::scan(&model, TableId::new(1), ScanKind::Sequential.id());
        let pipe = execute(
            &Plan::join(&model, s0.clone(), s1.clone(), op(JoinKind::Hash, false)),
            &catalog,
            &db,
        )
        .unwrap();
        let mat = execute(
            &Plan::join(&model, s0, s1, op(JoinKind::Hash, true)),
            &catalog,
            &db,
        )
        .unwrap();
        assert_eq!(pipe.result.tuples, mat.result.tuples);
        assert_eq!(
            mat.stats.spilled_rows,
            pipe.stats.spilled_rows + pipe.result.len() as u64
        );
    }

    #[test]
    fn row_limit_guards_explosions() {
        let (catalog, model, db, _) = setup(3, GraphShape::Star, 17, 200);
        let s1 = Plan::scan(&model, TableId::new(1), ScanKind::Sequential.id());
        let s2 = Plan::scan(&model, TableId::new(2), ScanKind::Sequential.id());
        let cross = Plan::join(&model, s1, s2, op(JoinKind::Hash, false));
        let err = execute_with_limit(&cross, &catalog, &db, 10).unwrap_err();
        assert_eq!(err, ExecError::RowLimit { limit: 10 });
        assert!(err.to_string().contains("row limit"));
    }

    #[test]
    fn unknown_operators_are_rejected() {
        // Invalid operator ids cannot be constructed through a cost model
        // (`Plan::scan`/`Plan::join` cost the node at construction), so the
        // engine's guard is exercised via its error type; a well-formed
        // plan over the same database must execute fine.
        let (catalog, model, db, _) = setup(2, GraphShape::Chain, 19, 50);
        let s0 = Plan::scan(&model, TableId::new(0), ScanKind::Sequential.id());
        let s1 = Plan::scan(&model, TableId::new(1), ScanKind::Sequential.id());
        let plan = Plan::join(&model, s0, s1, op(JoinKind::Hash, false));
        assert!(execute(&plan, &catalog, &db).is_ok());
        assert_eq!(
            ExecError::UnknownOperator(7).to_string(),
            "unknown operator id 7"
        );
    }

    #[test]
    fn index_scans_produce_key_ordered_rows() {
        let (catalog, model, db, _) = setup(2, GraphShape::Chain, 23, 80);
        let t = TableId::new(0);
        let plan = Plan::scan(&model, t, ScanKind::Index.id());
        let exec = execute(&plan, &catalog, &db).unwrap();
        // Canonicalization re-sorts by row id, so instead verify the scan
        // emitted every row exactly once.
        assert_eq!(exec.result.len(), db.table(t).rows);
        let mut seen: Vec<u32> = exec.result.tuples.iter().map(|t| t[0]).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), db.table(t).rows);
    }
}
