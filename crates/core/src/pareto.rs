//! Pareto-set maintenance: the paper's `Prune` functions behind the
//! unified admission API of [`crate::archive`].
//!
//! The pruning rules (encoded as [`AdmissionRule`]s and applied through the
//! single entry point [`ParetoSet::admit`]):
//!
//! * **Climb pruning** (Alg. 2, [`AdmissionRule::Climb`]):
//!   `Better(p1, p2) = SameOutput ∧ p1 ≺ p2`. A new plan is inserted unless
//!   an existing plan with the same output format strictly dominates it;
//!   inserting removes the same-format plans it strictly dominates. The
//!   comment in the paper says this "keeps one Pareto plan per output
//!   format" and Lemma 2 assumes "each instance of ParetoStep returns only
//!   one non-dominated plan" — with several metrics, however, the literal
//!   rule can retain *incomparable* same-format plans. We therefore support
//!   both readings via [`PrunePolicy`]: the default
//!   [`PrunePolicy::OnePerFormat`] keeps the incumbent when plans are
//!   incomparable (matching the complexity analysis); the literal
//!   [`PrunePolicy::KeepIncomparable`] follows the pseudo-code exactly.
//!
//! * **Approximate pruning** (Alg. 3, [`AdmissionRule::Approx`]):
//!   `SigBetter(p1, p2, α) = SameOutput ∧ p1 ⪯_α p2`, generalized to a
//!   per-metric factor vector ([`EpsFactors`]). A new plan is inserted only
//!   if no stored same-format plan α-approximately dominates it; insertion
//!   removes stored plans the new plan weakly dominates. This keeps the
//!   per-table-set frontier size polynomially bounded (Lemma 6).
//!
//! * **ε-Pareto box archive** ([`AdmissionRule::EpsBox`], Trummer & Koch
//!   2014): at most one occupant per non-dominated per-format precision
//!   box, so the archive size is bounded by the precision target rather
//!   than the true frontier cardinality — the many-objective (d = 6–10)
//!   scaling mode.
//!
//! * **Cost frontier** ([`AdmissionRule::CostFrontier`]): the exact
//!   format-blind cost-Pareto frontier, for result archives.
//!
//! # Hot-path representation
//!
//! `Prune`/`SigBetter` run inside every hill-climbing step and every
//! `ApproximateFrontiers` traversal, so the paper's per-iteration complexity
//! argument hinges on these checks being cheap. [`ParetoSet`] therefore
//!
//! * **buckets members by output format** — the `SameOutput` conjunct
//!   becomes a hash-map lookup followed by a scan of one format's members;
//! * **stores each bucket's cost vectors in structure-of-arrays blocks** —
//!   blocks of [`LANES`] members hold metric `k` of all lanes contiguously,
//!   so one candidate is screened against a whole block per pass with a
//!   branch-free, auto-vectorizable inner loop (tail lanes are padded with
//!   `+∞`, which can never cover a candidate); each block also carries its
//!   aggregate-key range (see [`CostVector::agg_key`]), letting a whole
//!   block be skipped when its key range already rules dominance out;
//! * **defers plan materialization** — [`ParetoSet::admit`] takes the
//!   candidate's cost and format plus a closure producing the plan, so
//!   *rejected candidates never allocate* (callers cost a candidate, probe
//!   the set, and only build the plan handle on admission).
//!
//! The pre-bucketing flat-`Vec` implementation is retained as
//! [`LinearParetoSet`] for differential tests and the `pruning`
//! micro-benchmark; it admits through the scalar reference predicates
//! [`AdmissionRule::rejects`] / [`AdmissionRule::evicts`], and both
//! implementations make identical keep/evict decisions and store survivors
//! in the same order.

use crate::archive::{Admission, AdmissionRule, BoxKey, EpsFactors};
use crate::cost::CostVector;
use crate::fxhash::FxHashMap;
use crate::model::OutputFormat;
use crate::plan::{Plan, PlanRef};

pub use crate::archive::PrunePolicy;

/// Number of members per structure-of-arrays block: metric `k` of all
/// [`LANES`] lanes is stored contiguously, so the screening inner loop is a
/// fixed-width, branch-free compare the compiler can vectorize.
pub const LANES: usize = 8;

/// `Better(p1, p2)` of Algorithm 2: same output format and strictly
/// dominating cost.
#[inline]
pub fn better(p1: &Plan, p2: &Plan) -> bool {
    p1.same_output(p2) && p1.cost().strictly_dominates(p2.cost())
}

/// `SigBetter(p1, p2, α)` of Algorithm 3: same output format and
/// α-approximately dominating cost.
#[inline]
pub fn sig_better(p1: &Plan, p2: &Plan, alpha: f64) -> bool {
    p1.same_output(p2) && p1.cost().approx_dominates(p2.cost(), alpha)
}

/// Screening tallies accumulated by a [`ParetoSet`]'s admission paths:
/// how much work the two-stage screen (block key-range pre-filter, then
/// block-wide component compares) did, and how candidates fared.
///
/// The fields are plain `u64`s bumped inline — no atomics, no
/// allocation — so counting is free relative to the dominance arithmetic
/// it measures. Callers on instrumented paths harvest them with
/// [`ParetoSet::take_screen_counters`] and flush the totals to the global
/// `moqo-obs` registry at iteration granularity; because the tallies are
/// pure observations (they never influence pruning, ordering, or RNG
/// state), they are bit-for-bit deterministic for a seeded run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScreenCounters {
    /// Candidates offered to the set (admission probes).
    pub probes: u64,
    /// Member comparisons resolved by the aggregate-key pre-filter alone
    /// (members inside blocks whose key range ruled dominance out).
    pub agg_key_skips: u64,
    /// Member comparisons executed by the component-wise kernels (lanes of
    /// screened blocks, or scalar compares on the scalar paths).
    pub dominance_tests: u64,
    /// Candidates rejected (dominated, α-covered, box-covered, duplicate,
    /// or refused at capacity).
    pub rejected: u64,
    /// Candidates admitted.
    pub admitted: u64,
    /// Incumbent members evicted by admitted candidates.
    pub evicted: u64,
    /// Structure-of-arrays blocks actually screened (not key-skipped) by
    /// the block kernels.
    pub blocks_screened: u64,
    /// Candidates rejected by the ε-box rule that exact dominance would
    /// have admitted — the precision-driven rejections that bound the
    /// archive.
    pub eps_rejects: u64,
}

impl ScreenCounters {
    /// Adds `other`'s tallies into `self`.
    pub fn absorb(&mut self, other: &ScreenCounters) {
        self.probes += other.probes;
        self.agg_key_skips += other.agg_key_skips;
        self.dominance_tests += other.dominance_tests;
        self.rejected += other.rejected;
        self.admitted += other.admitted;
        self.evicted += other.evicted;
        self.blocks_screened += other.blocks_screened;
        self.eps_rejects += other.eps_rejects;
    }
}

/// Inline per-member pruning metadata: the cost vector, its cached
/// aggregate key, and the output format. Dominance checks touch only this
/// dense array (or the bucket's SoA mirror of it); the member's plan handle
/// is never dereferenced.
#[derive(Clone, Copy, Debug)]
struct Meta {
    cost: CostVector,
    /// `cost.agg_key()`, cached at insertion.
    key: f64,
    format: OutputFormat,
}

impl Meta {
    #[inline]
    fn of(cost: &CostVector, format: OutputFormat) -> Self {
        Meta {
            cost: *cost,
            key: cost.agg_key(),
            format,
        }
    }
}

/// One output format's members: ascending member indices plus a
/// structure-of-arrays mirror of their cost vectors in blocks of [`LANES`],
/// each block carrying its aggregate-key range for whole-block skips, and
/// (under ε-box admission) a cache of the members' precision boxes.
#[derive(Clone, Debug, Default)]
struct Bucket {
    /// Ascending indices into the set's `plans`/`meta`.
    ids: Vec<u32>,
    /// Block-major columnar costs: metric `k` of block `b`'s lanes lives at
    /// `cols[(b * dim + k) * LANES + lane]`. Tail lanes are padded with
    /// `+∞` (never covers in rejection; masked out in eviction harvest).
    cols: Vec<f64>,
    /// Per-block minimum aggregate key (conservative: may under-estimate
    /// after in-place replacement, which only weakens the skip).
    kmin: Vec<f64>,
    /// Per-block maximum aggregate key (conservative likewise).
    kmax: Vec<f64>,
    /// Cost dimensionality of the members (set on first push).
    dim: usize,
    /// Cached ε-boxes, parallel to `ids`, valid for `box_factors`.
    boxes: Vec<BoxKey>,
    /// The factors `boxes` was computed with; recomputed lazily when the
    /// schedule moves (amortized: once per schedule step per bucket).
    box_factors: Option<EpsFactors>,
}

impl Bucket {
    /// Appends a member, opening a new `+∞`-padded block when the previous
    /// one is full.
    fn push(&mut self, idx: u32, meta: &Meta) {
        let d = meta.cost.dim();
        if self.ids.is_empty() {
            self.dim = d;
        }
        debug_assert_eq!(self.dim, d, "mixed cost dimensionality in bucket");
        let lane = self.ids.len() % LANES;
        let block = self.ids.len() / LANES;
        if lane == 0 {
            self.cols.resize(self.cols.len() + d * LANES, f64::INFINITY);
            self.kmin.push(f64::INFINITY);
            self.kmax.push(f64::NEG_INFINITY);
        }
        let base = block * d * LANES;
        for k in 0..d {
            self.cols[base + k * LANES + lane] = meta.cost[k];
        }
        self.kmin[block] = self.kmin[block].min(meta.key);
        self.kmax[block] = self.kmax[block].max(meta.key);
        self.ids.push(idx);
        if let Some(f) = self.box_factors {
            self.boxes.push(f.box_key(&meta.cost));
        }
    }

    /// Overwrites the member at bucket slot `slot` in place (the
    /// one-per-format replacement path). Key ranges are widened, never
    /// tightened — stale-but-sound for the block skips.
    fn replace(&mut self, slot: usize, meta: &Meta) {
        let d = self.dim;
        let block = slot / LANES;
        let lane = slot % LANES;
        let base = block * d * LANES;
        for k in 0..d {
            self.cols[base + k * LANES + lane] = meta.cost[k];
        }
        self.kmin[block] = self.kmin[block].min(meta.key);
        self.kmax[block] = self.kmax[block].max(meta.key);
        if let Some(f) = self.box_factors {
            self.boxes[slot] = f.box_key(&meta.cost);
        }
    }

    /// Drops all members, retaining the box-factor tag so rebuilt members
    /// get their boxes recomputed eagerly.
    fn reset(&mut self) {
        self.ids.clear();
        self.cols.clear();
        self.kmin.clear();
        self.kmax.clear();
        self.boxes.clear();
    }

    /// Makes the cached ε-boxes valid for `factors`, recomputing them from
    /// the members' costs if the factors moved since the last probe.
    fn ensure_boxes(&mut self, factors: &EpsFactors, meta: &[Meta]) {
        if self.box_factors.as_ref() == Some(factors) && self.boxes.len() == self.ids.len() {
            return;
        }
        self.boxes.clear();
        self.boxes.extend(
            self.ids
                .iter()
                .map(|&i| factors.box_key(&meta[i as usize].cost)),
        );
        self.box_factors = Some(*factors);
    }

    /// Rejection kernel: whether any member's cost is component-wise `≤`
    /// `bound` (`bound_key` must be `bound.agg_key()`). One pass per block:
    /// blocks whose minimum key exceeds the bound's key are skipped whole
    /// (a covering member's key cannot exceed the bound's); screened blocks
    /// run a branch-free lane-wide compare.
    fn covers(&self, bound: &CostVector, bound_key: f64, screen: &mut ScreenCounters) -> bool {
        let d = self.dim;
        let n = self.ids.len();
        for block in 0..self.kmin.len() {
            let lanes = (n - block * LANES).min(LANES);
            if self.kmin[block] > bound_key {
                screen.agg_key_skips += lanes as u64;
                continue;
            }
            screen.blocks_screened += 1;
            screen.dominance_tests += lanes as u64;
            let base = block * d * LANES;
            let mut ok = [true; LANES];
            for k in 0..d {
                let b = bound[k];
                let col = &self.cols[base + k * LANES..base + (k + 1) * LANES];
                for (o, &c) in ok.iter_mut().zip(col) {
                    *o &= c <= b;
                }
            }
            // +∞ padding never satisfies `≤ bound`, so tail lanes are false.
            if ok.iter().any(|&o| o) {
                return true;
            }
        }
        false
    }

    /// Eviction kernel: appends to `dead` the member indices weakly
    /// dominated by `cost` (`key` must be `cost.agg_key()`), in ascending
    /// order. Blocks whose maximum key is below the candidate's are skipped
    /// whole (a dominated member's key is at least the candidate's); the
    /// `+∞` tail padding would spuriously match, so the harvest is masked
    /// to real lanes.
    fn harvest_dominated(
        &self,
        cost: &CostVector,
        key: f64,
        dead: &mut Vec<u32>,
        screen: &mut ScreenCounters,
    ) {
        let d = self.dim;
        let n = self.ids.len();
        for block in 0..self.kmax.len() {
            let lanes = (n - block * LANES).min(LANES);
            if self.kmax[block] < key {
                screen.agg_key_skips += lanes as u64;
                continue;
            }
            screen.blocks_screened += 1;
            screen.dominance_tests += lanes as u64;
            let base = block * d * LANES;
            let mut ok = [true; LANES];
            for k in 0..d {
                let c = cost[k];
                let col = &self.cols[base + k * LANES..base + (k + 1) * LANES];
                for (o, &m) in ok.iter_mut().zip(col) {
                    *o &= c <= m;
                }
            }
            for (j, &o) in ok.iter().take(lanes).enumerate() {
                if o {
                    dead.push(self.ids[block * LANES + j]);
                }
            }
        }
    }
}

/// A pruned set of plans over the same table set.
///
/// Invariant: no member strictly dominates another member with the same
/// output format (every [`AdmissionRule`] preserves this — the ε-box rule
/// included, because box keys are monotone under dominance).
///
/// Members are stored in insertion order (evictions compact in place), with
/// a per-output-format bucket on the side holding the
/// structure-of-arrays mirror of the members' costs, so same-format probes
/// never scan members of other formats and screened members are compared a
/// whole block per pass. See the module docs for the full hot-path
/// rationale.
///
/// The member handle type `P` is generic: every pruning decision reads only
/// the inline `(cost, key, format)` metadata, so the same code stores
/// `Arc<Plan>` trees (`ParetoSet<PlanRef>`, the default) or hash-consed
/// [`crate::arena::PlanId`]s (`ParetoSet<PlanId>`, where members are `Copy`
/// integers and the set never touches an allocation).
#[derive(Clone, Debug)]
pub struct ParetoSet<P = PlanRef> {
    plans: Vec<P>,
    /// Parallel to `plans`: inline cost metadata.
    meta: Vec<Meta>,
    /// Output format → SoA bucket over ascending indices into `plans`/`meta`.
    buckets: FxHashMap<OutputFormat, Bucket>,
    /// Screening tallies (observational only; see [`ScreenCounters`]).
    screen: ScreenCounters,
}

impl<P> Default for ParetoSet<P> {
    fn default() -> Self {
        ParetoSet {
            plans: Vec::new(),
            meta: Vec::new(),
            buckets: FxHashMap::default(),
            screen: ScreenCounters::default(),
        }
    }
}

impl<P> ParetoSet<P> {
    /// Creates an empty set.
    pub fn new() -> Self {
        ParetoSet::default()
    }

    /// The current members.
    #[inline]
    pub fn plans(&self) -> &[P] {
        &self.plans
    }

    /// The members' cost vectors, parallel to [`ParetoSet::plans`].
    pub fn costs(&self) -> impl Iterator<Item = &CostVector> + '_ {
        self.meta.iter().map(|m| &m.cost)
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.plans.clear();
        self.meta.clear();
        for bucket in self.buckets.values_mut() {
            bucket.reset();
        }
    }

    #[inline]
    fn push(&mut self, plan: P, meta: Meta) {
        let idx = self.plans.len() as u32;
        self.plans.push(plan);
        self.buckets
            .entry(meta.format)
            .or_default()
            .push(idx, &meta);
        self.meta.push(meta);
    }

    /// Removes the members at the given ascending indices, preserving the
    /// relative order of the survivors (mirrors `Vec::retain`, which the
    /// linear reference implementation uses), then rebuilds the format
    /// buckets (including their SoA blocks and box caches). Eviction is the
    /// rare path — admissions evict only when the newcomer dominates stored
    /// members — so the O(len) compaction does not affect the rejection
    /// fast path.
    fn remove_sorted(&mut self, dead: &[u32]) {
        debug_assert!(dead.windows(2).all(|w| w[0] < w[1]));
        let mut di = 0usize;
        let mut idx = 0u32;
        self.plans.retain(|_| {
            let drop = di < dead.len() && dead[di] == idx;
            if drop {
                di += 1;
            }
            idx += 1;
            !drop
        });
        di = 0;
        idx = 0;
        self.meta.retain(|_| {
            let drop = di < dead.len() && dead[di] == idx;
            if drop {
                di += 1;
            }
            idx += 1;
            !drop
        });
        for bucket in self.buckets.values_mut() {
            bucket.reset();
        }
        for (i, m) in self.meta.iter().enumerate() {
            self.buckets.entry(m.format).or_default().push(i as u32, m);
        }
    }

    /// The unified admission entry point: offers a candidate described by
    /// its cost and output format alone, under the given [`Admission`]
    /// (rule + capacity). `make` is invoked — and the plan materialized —
    /// **only if the candidate is admitted**; the materialized plan must
    /// have exactly the given cost and format. Returns `true` iff the
    /// candidate was inserted.
    ///
    /// This replaces the former `insert_climb_with` / `insert_approx_with`
    /// / `insert_cost_frontier_with` trio: the rule is data, not an entry
    /// point, so every consumer (climb, frontier approximation, caches,
    /// merges, baselines, the service's cross-query cache) funnels through
    /// one screening kernel.
    ///
    /// At capacity, a candidate that evicts nobody is rejected — the
    /// established archive wins, which is deterministic and order-stable.
    pub fn admit(
        &mut self,
        cost: &CostVector,
        format: OutputFormat,
        admission: &Admission,
        make: impl FnOnce() -> P,
    ) -> bool {
        self.screen.probes += 1;
        // One-per-format climb pruning is a scalar slot-replace, not a scan.
        if admission.rule == AdmissionRule::Climb(PrunePolicy::OnePerFormat) {
            return match self
                .buckets
                .get(&format)
                .and_then(|b| b.ids.first().copied())
            {
                Some(idx) => {
                    self.screen.dominance_tests += 1;
                    if cost.strictly_dominates(&self.meta[idx as usize].cost) {
                        let meta = Meta::of(cost, format);
                        self.buckets
                            .get_mut(&format)
                            .expect("bucket exists")
                            .replace(0, &meta);
                        self.meta[idx as usize] = meta;
                        self.plans[idx as usize] = make();
                        self.screen.admitted += 1;
                        self.screen.evicted += 1;
                        true
                    } else {
                        self.screen.rejected += 1;
                        false
                    }
                }
                None => {
                    if admission
                        .capacity
                        .is_some_and(|cap| self.plans.len() >= cap)
                    {
                        self.screen.rejected += 1;
                        return false;
                    }
                    self.screen.admitted += 1;
                    self.push(make(), Meta::of(cost, format));
                    true
                }
            };
        }

        let mut dead: Vec<u32> = Vec::new();
        let rejected = match admission.rule {
            AdmissionRule::Climb(_) => {
                // Weak dominance (`m ⪯ c`) folds the strict-domination and
                // exact-duplicate rejections of Algorithm 2 into one bound.
                let key = cost.agg_key();
                let screen = &mut self.screen;
                if self
                    .buckets
                    .get(&format)
                    .is_some_and(|b| b.covers(cost, key, screen))
                {
                    true
                } else {
                    // Weakly dominated members are strictly dominated here:
                    // an equal-cost member would have rejected the candidate.
                    if let Some(b) = self.buckets.get(&format) {
                        b.harvest_dominated(cost, key, &mut dead, &mut self.screen);
                    }
                    false
                }
            }
            AdmissionRule::Approx(eps) => {
                // `m ⪯ bound_of(c)` is per-metric α-dominance, computed with
                // exactly the arithmetic of `approx_dominates` (and
                // `bound.agg_key()` matches `scaled_agg_key` for uniform
                // factors), so decisions are bit-identical to the former
                // scalar-α path.
                let bound = eps.bound_of(cost);
                let bound_key = bound.agg_key();
                let screen = &mut self.screen;
                if self
                    .buckets
                    .get(&format)
                    .is_some_and(|b| b.covers(&bound, bound_key, screen))
                {
                    true
                } else {
                    let key = cost.agg_key();
                    if let Some(b) = self.buckets.get(&format) {
                        b.harvest_dominated(cost, key, &mut dead, &mut self.screen);
                    }
                    false
                }
            }
            AdmissionRule::EpsBox(eps) => {
                let cbox = eps.box_key(cost);
                let meta = &self.meta;
                let screen = &mut self.screen;
                let bucket = self.buckets.entry(format).or_default();
                bucket.ensure_boxes(&eps, meta);
                let mut covered = false;
                for (slot, &i) in bucket.ids.iter().enumerate() {
                    screen.dominance_tests += 1;
                    let mbox = &bucket.boxes[slot];
                    let mcost = &meta[i as usize].cost;
                    // A member whose box weakly dominates the candidate's
                    // rejects it — unless they share a box and the candidate
                    // strictly dominates the incumbent (it replaces it).
                    if mbox.dominates(&cbox) && (*mbox != cbox || !cost.strictly_dominates(mcost)) {
                        if !mcost.dominates(cost) {
                            screen.eps_rejects += 1;
                        }
                        covered = true;
                        break;
                    }
                }
                if !covered {
                    for (slot, &i) in bucket.ids.iter().enumerate() {
                        let mbox = &bucket.boxes[slot];
                        let mcost = &meta[i as usize].cost;
                        if cbox.dominates(mbox) && (cbox != *mbox || cost.strictly_dominates(mcost))
                        {
                            dead.push(i);
                        }
                    }
                }
                covered
            }
            AdmissionRule::CostFrontier => {
                let key = cost.agg_key();
                let screen = &mut self.screen;
                let mut covered = false;
                for b in self.buckets.values() {
                    if b.covers(cost, key, screen) {
                        covered = true;
                        break;
                    }
                }
                if !covered {
                    for b in self.buckets.values() {
                        b.harvest_dominated(cost, key, &mut dead, &mut self.screen);
                    }
                    // Bucket iteration order is arbitrary; restore the
                    // ascending order `remove_sorted` requires.
                    dead.sort_unstable();
                }
                covered
            }
        };

        if rejected {
            self.screen.rejected += 1;
            return false;
        }
        if !dead.is_empty() {
            self.screen.evicted += dead.len() as u64;
            self.remove_sorted(&dead);
        }
        if admission
            .capacity
            .is_some_and(|cap| self.plans.len() >= cap)
        {
            self.screen.rejected += 1;
            return false;
        }
        self.screen.admitted += 1;
        self.push(make(), Meta::of(cost, format));
        true
    }

    /// Merges every member of `other` into `self` under the given
    /// admission, in `other`'s storage order. The candidate's cost and
    /// format come from `other`'s inline metadata; `adopt` translates the
    /// foreign handle into `self`'s handle type and runs **only for
    /// admitted members** (rejected candidates cost one screening probe and
    /// nothing else). Returns the number of members inserted.
    ///
    /// This is the frontier-merge entry point of the parallel optimizer:
    /// worker frontiers (`ParetoSet<PlanId>` over private arenas) batch-merge
    /// into a shared global frontier, with `adopt` re-interning each
    /// surviving plan into the shared arena
    /// ([`PlanArena::adopt`](crate::arena::PlanArena::adopt)).
    pub fn merge_with<Q>(
        &mut self,
        other: &ParetoSet<Q>,
        admission: &Admission,
        mut adopt: impl FnMut(&Q) -> P,
    ) -> usize {
        let mut inserted = 0;
        for (plan, meta) in other.plans.iter().zip(&other.meta) {
            if self.admit(&meta.cost, meta.format, admission, || adopt(plan)) {
                inserted += 1;
            }
        }
        inserted
    }

    /// Screening tallies accumulated by this set's admissions so far.
    pub fn screen_counters(&self) -> ScreenCounters {
        self.screen
    }

    /// Returns and resets the screening tallies — the harvest point for
    /// instrumented callers that aggregate per-step counters (the climb
    /// scratch) and flush them at iteration granularity.
    pub fn take_screen_counters(&mut self) -> ScreenCounters {
        std::mem::take(&mut self.screen)
    }

    /// Consumes the set, returning the plans.
    pub fn into_plans(self) -> Vec<P> {
        self.plans
    }

    /// Iterates over members.
    pub fn iter(&self) -> impl Iterator<Item = &P> {
        self.plans.iter()
    }

    /// Debug check of the handle-independent part of the set invariant: no
    /// member strictly dominates another member with the same output
    /// format, and the metadata / SoA bucket index is internally consistent
    /// (columns mirror member costs, block key ranges are conservative,
    /// box caches match their factors).
    /// (`ParetoSet<PlanRef>::check_invariant` additionally cross-checks the
    /// stored plans against the metadata.)
    pub fn check_invariant_meta(&self) -> bool {
        if self.plans.len() != self.meta.len() {
            return false;
        }
        for m in &self.meta {
            if m.key != m.cost.agg_key() {
                return false;
            }
        }
        let indexed: usize = self.buckets.values().map(|b| b.ids.len()).sum();
        if indexed != self.meta.len() {
            return false;
        }
        for (format, bucket) in &self.buckets {
            if bucket.ids.windows(2).any(|w| w[0] >= w[1]) {
                return false;
            }
            if bucket.box_factors.is_some() && bucket.boxes.len() != bucket.ids.len() {
                return false;
            }
            for (slot, &i) in bucket.ids.iter().enumerate() {
                let m = match self.meta.get(i as usize) {
                    Some(m) if m.format == *format => m,
                    _ => return false,
                };
                let d = bucket.dim;
                if m.cost.dim() != d {
                    return false;
                }
                let base = (slot / LANES) * d * LANES + slot % LANES;
                for k in 0..d {
                    if bucket.cols[base + k * LANES] != m.cost[k] {
                        return false;
                    }
                }
                let block = slot / LANES;
                if !(bucket.kmin[block] <= m.key && m.key <= bucket.kmax[block]) {
                    return false;
                }
                if let Some(f) = &bucket.box_factors {
                    if bucket.boxes[slot] != f.box_key(&m.cost) {
                        return false;
                    }
                }
            }
        }
        for (i, a) in self.meta.iter().enumerate() {
            for (j, b) in self.meta.iter().enumerate() {
                if i != j && a.format == b.format && a.cost.strictly_dominates(&b.cost) {
                    return false;
                }
            }
        }
        true
    }
}

impl ParetoSet<PlanRef> {
    /// Offers a materialized plan under the given admission. Returns
    /// `true` iff the plan was inserted. (Prefer [`admit`](Self::admit)
    /// on paths where rejected candidates should not allocate.)
    #[inline]
    pub fn insert(&mut self, new_plan: PlanRef, admission: &Admission) -> bool {
        let cost = *new_plan.cost();
        let format = new_plan.format();
        self.admit(&cost, format, admission, move || new_plan)
    }

    /// Debug check of the full set invariant: the handle-independent checks
    /// of [`check_invariant_meta`](Self::check_invariant_meta) plus
    /// agreement between every stored plan and its inline metadata.
    pub fn check_invariant(&self) -> bool {
        if !self.check_invariant_meta() {
            return false;
        }
        self.plans
            .iter()
            .zip(&self.meta)
            .all(|(p, m)| p.cost().as_slice() == m.cost.as_slice() && p.format() == m.format)
    }
}

impl FromIterator<PlanRef> for ParetoSet {
    /// Collects plans into an exact cost-Pareto frontier (format-agnostic).
    fn from_iter<I: IntoIterator<Item = PlanRef>>(iter: I) -> Self {
        let mut set = ParetoSet::new();
        let admission = Admission::cost_frontier();
        for p in iter {
            set.insert(p, &admission);
        }
        set
    }
}

/// The pre-bucketing reference implementation: a flat `Vec<PlanRef>` with
/// O(n·d) dominance scans per admission that dereference every member's
/// `Arc<Plan>`, deciding through the scalar reference predicates
/// [`AdmissionRule::rejects`] / [`AdmissionRule::evicts`].
///
/// Kept for two purposes only: differential tests proving the
/// bucketed-SoA set makes identical decisions, and the `pruning`
/// micro-benchmark quantifying the speedup. Not used on any hot path, and
/// only compiled under the `diff-testing` feature (on in test and bench
/// builds, off in plain release builds).
#[cfg(any(test, feature = "diff-testing"))]
#[derive(Clone, Default, Debug)]
pub struct LinearParetoSet {
    plans: Vec<PlanRef>,
}

#[cfg(any(test, feature = "diff-testing"))]
impl LinearParetoSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        LinearParetoSet { plans: Vec::new() }
    }

    /// The current members.
    #[inline]
    pub fn plans(&self) -> &[PlanRef] {
        &self.plans
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// The unified admission entry point, by linear scan over materialized
    /// plans — the oracle the bucketed [`ParetoSet::admit`] is
    /// differentially tested against.
    pub fn admit(&mut self, new_plan: PlanRef, admission: &Admission) -> bool {
        if admission.rule == AdmissionRule::Climb(PrunePolicy::OnePerFormat) {
            return if let Some(idx) = self.plans.iter().position(|p| p.same_output(&new_plan)) {
                if new_plan.cost().strictly_dominates(self.plans[idx].cost()) {
                    self.plans[idx] = new_plan;
                    true
                } else {
                    false
                }
            } else {
                if admission
                    .capacity
                    .is_some_and(|cap| self.plans.len() >= cap)
                {
                    return false;
                }
                self.plans.push(new_plan);
                true
            };
        }
        let rule = &admission.rule;
        let scoped = rule.format_scoped();
        let in_scope = |p: &PlanRef| !scoped || p.same_output(&new_plan);
        if self
            .plans
            .iter()
            .any(|p| in_scope(p) && rule.rejects(p.cost(), new_plan.cost()))
        {
            return false;
        }
        self.plans
            .retain(|p| !(in_scope(p) && rule.evicts(new_plan.cost(), p.cost())));
        if admission
            .capacity
            .is_some_and(|cap| self.plans.len() >= cap)
        {
            return false;
        }
        self.plans.push(new_plan);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::ArchiveConfig;
    use crate::cost::CostVector;
    use crate::model::{CostModel, JoinOpId, OutputFormat, PlanProps, PlanView, ScanOpId};
    use crate::plan::Plan;
    use crate::tables::TableId;

    /// A model with hand-picked costs so dominance relations are exact:
    /// join op 0 adds (1, 2), op 1 adds (2, 1) — incomparable, format 0;
    /// op 2 adds (1.5, 1.5) with format 1; scan op 0 costs (1, 1) and scan
    /// op 1 costs (2, 2) — strictly dominated.
    struct ManualModel {
        scan_ops: Vec<ScanOpId>,
    }

    impl ManualModel {
        fn new() -> Self {
            ManualModel {
                scan_ops: vec![ScanOpId(0), ScanOpId(1)],
            }
        }
    }

    impl CostModel for ManualModel {
        fn dim(&self) -> usize {
            2
        }
        fn metric_name(&self, _k: usize) -> &str {
            "m"
        }
        fn num_tables(&self) -> usize {
            2
        }
        fn scan_ops(&self, _table: TableId) -> &[ScanOpId] {
            &self.scan_ops
        }
        fn join_ops(&self, _outer: &PlanView, _inner: &PlanView, out: &mut Vec<JoinOpId>) {
            out.extend([JoinOpId(0), JoinOpId(1), JoinOpId(2)]);
        }
        fn scan_props(&self, _table: TableId, op: ScanOpId) -> PlanProps {
            let c = if op.0 == 0 { 1.0 } else { 2.0 };
            PlanProps {
                cost: CostVector::new(&[c, c]),
                rows: 100.0,
                pages: 1.0,
                format: OutputFormat(0),
            }
        }
        fn join_props(&self, outer: &PlanView, inner: &PlanView, op: JoinOpId) -> PlanProps {
            let extra = match op.0 {
                0 => [1.0, 2.0],
                1 => [2.0, 1.0],
                _ => [1.5, 1.5],
            };
            let cost = outer.cost.add(&inner.cost).add(&CostVector::new(&extra));
            PlanProps {
                cost,
                rows: 100.0,
                pages: 1.0,
                format: if op.0 == 2 {
                    OutputFormat(1)
                } else {
                    OutputFormat(0)
                },
            }
        }
        fn scan_op_name(&self, _op: ScanOpId) -> String {
            "scan".into()
        }
        fn join_op_name(&self, _op: JoinOpId) -> String {
            "join".into()
        }
        fn num_formats(&self) -> usize {
            2
        }
    }

    /// Builds join plans over the same two tables with each operator so we
    /// get plans with controlled formats and genuinely different costs:
    /// `plans[0]` (3,4), `plans[1]` (4,3) — incomparable, format 0;
    /// `plans[2]` (3.5,3.5), format 1; `plans[3]` (5,6), format 0,
    /// strictly dominated by `plans[0]`.
    fn sample_plans() -> (ManualModel, Vec<PlanRef>) {
        let m = ManualModel::new();
        let s0 = Plan::scan(&m, TableId::new(0), ScanOpId(0));
        let s1 = Plan::scan(&m, TableId::new(1), ScanOpId(0));
        let mut plans = Vec::new();
        for op in 0..3u16 {
            plans.push(Plan::join(&m, s0.clone(), s1.clone(), JoinOpId(op)));
        }
        // A strictly worse variant of plan 0 (same format, higher cost):
        // built from the strictly more expensive scans.
        let e0 = Plan::scan(&m, TableId::new(0), ScanOpId(1));
        let e1 = Plan::scan(&m, TableId::new(1), ScanOpId(1));
        plans.push(Plan::join(&m, e0, e1, JoinOpId(0)));
        (m, plans)
    }

    fn one_per_format() -> Admission {
        Admission::climb(PrunePolicy::OnePerFormat)
    }

    fn keep_incomparable() -> Admission {
        Admission::climb(PrunePolicy::KeepIncomparable)
    }

    #[test]
    fn climb_prune_discards_strictly_dominated() {
        let (_, plans) = sample_plans();
        let good = plans[0].clone();
        let bad = plans[3].clone();
        assert!(better(&good, &bad), "fixture: plan 0 must dominate plan 3");

        let mut set = ParetoSet::new();
        assert!(set.insert(good.clone(), &one_per_format()));
        assert!(!set.insert(bad.clone(), &one_per_format()));
        assert_eq!(set.len(), 1);

        // Inserting in the reverse order replaces the dominated plan.
        let mut set = ParetoSet::new();
        assert!(set.insert(bad, &one_per_format()));
        assert!(set.insert(good.clone(), &one_per_format()));
        assert_eq!(set.len(), 1);
        assert!(std::sync::Arc::ptr_eq(&set.plans()[0], &good));
        assert!(set.check_invariant());
    }

    #[test]
    fn climb_prune_keeps_one_plan_per_format() {
        let (_, plans) = sample_plans();
        // plans[0] and plans[1] are format 0 and incomparable; plans[2] is format 1.
        let mut set = ParetoSet::new();
        assert!(set.insert(plans[0].clone(), &one_per_format()));
        assert!(!set.insert(plans[1].clone(), &one_per_format()));
        assert!(set.insert(plans[2].clone(), &one_per_format()));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn literal_prune_keeps_incomparable_same_format_plans() {
        let (_, plans) = sample_plans();
        let mut set = ParetoSet::new();
        assert!(set.insert(plans[0].clone(), &keep_incomparable()));
        assert!(set.insert(plans[1].clone(), &keep_incomparable()));
        assert_eq!(set.len(), 2);
        // Exact duplicates are rejected.
        assert!(!set.insert(plans[0].clone(), &keep_incomparable()));
        assert!(set.check_invariant());
    }

    #[test]
    fn approx_prune_rejects_alpha_covered_plans() {
        let (_, plans) = sample_plans();
        let good = plans[0].clone();
        let bad = plans[3].clone();
        // With a huge alpha, the worse plan is "covered" and rejected.
        let mut set = ParetoSet::new();
        assert!(set.insert(good.clone(), &Admission::approx(1e9)));
        assert!(!set.insert(bad.clone(), &Admission::approx(1e9)));
        // With alpha = 1 it is still rejected (strictly dominated)...
        let mut set = ParetoSet::new();
        assert!(set.insert(good.clone(), &Admission::exact()));
        assert!(!set.insert(bad.clone(), &Admission::exact()));
    }

    #[test]
    fn approx_prune_keeps_distinct_tradeoffs_at_low_alpha() {
        let (_, plans) = sample_plans();
        let mut set = ParetoSet::new();
        assert!(set.insert(plans[0].clone(), &Admission::exact()));
        assert!(set.insert(plans[1].clone(), &Admission::exact()));
        assert_eq!(set.len(), 2, "incomparable plans both kept at alpha=1");
    }

    #[test]
    fn approx_prune_insertion_removes_weakly_dominated() {
        let (_, plans) = sample_plans();
        let good = plans[0].clone();
        let bad = plans[3].clone();
        let mut set = ParetoSet::new();
        // Insert the worse plan first with alpha=1, then the better one:
        // the worse plan must be evicted.
        assert!(set.insert(bad, &Admission::exact()));
        assert!(set.insert(good.clone(), &Admission::exact()));
        assert_eq!(set.len(), 1);
        assert!(std::sync::Arc::ptr_eq(&set.plans()[0], &good));
    }

    #[test]
    fn per_metric_factors_prune_each_axis_independently() {
        // Factor 4 on metric 0, exact on metric 1: a plan 3x worse on
        // metric 0 only is covered; a plan 2x worse on metric 0 but
        // better on the exact metric 1 is a kept tradeoff.
        let eps = EpsFactors::per_metric(&[4.0, 1.0]);
        let adm = Admission::approx_per_metric(eps);
        let mut set = ParetoSet::new();
        assert!(set.insert(synthetic_plan(&[1.0, 1.0], 0), &adm));
        assert!(!set.insert(synthetic_plan(&[3.0, 1.0], 0), &adm));
        assert!(set.insert(synthetic_plan(&[2.0, 0.9], 0), &adm));
        assert_eq!(set.len(), 2);
        assert!(set.check_invariant());
    }

    #[test]
    fn cost_frontier_ignores_format() {
        let (_, plans) = sample_plans();
        let mut set = ParetoSet::new();
        for p in &plans {
            set.insert(p.clone(), &Admission::cost_frontier());
        }
        // plans[3] is dominated by plans[0]; the rest are incomparable.
        assert_eq!(set.len(), 3);
        // No member dominates another.
        for a in set.iter() {
            for b in set.iter() {
                if !std::sync::Arc::ptr_eq(a, b) {
                    assert!(!a.cost().strictly_dominates(b.cost()));
                }
            }
        }
    }

    #[test]
    fn from_iterator_builds_cost_frontier() {
        let (_, plans) = sample_plans();
        let set: ParetoSet = plans.into_iter().collect();
        assert_eq!(set.len(), 3);
        assert!(set.check_invariant());
    }

    #[test]
    fn capacity_rejects_when_full_unless_candidate_evicts() {
        let adm = Admission::exact().with_capacity(2);
        let mut set = ParetoSet::new();
        assert!(set.insert(synthetic_plan(&[1.0, 8.0], 0), &adm));
        assert!(set.insert(synthetic_plan(&[8.0, 1.0], 0), &adm));
        // A third incomparable tradeoff is refused at capacity.
        assert!(!set.insert(synthetic_plan(&[4.0, 4.0], 0), &adm));
        assert_eq!(set.len(), 2);
        // A dominating candidate still displaces a member.
        assert!(set.insert(synthetic_plan(&[0.5, 4.0], 0), &adm));
        assert_eq!(set.len(), 2);
        assert!(set.check_invariant());
        // One-per-format admission honors capacity on fresh formats.
        let capped = Admission::climb(PrunePolicy::OnePerFormat).with_capacity(1);
        let mut set = ParetoSet::new();
        assert!(set.insert(synthetic_plan(&[1.0, 1.0], 0), &capped));
        assert!(!set.insert(synthetic_plan(&[1.0, 1.0], 1), &capped));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn merge_preserves_union_semantics_and_defers_adoption() {
        let (_, plans) = sample_plans();
        // Set A holds the two incomparable format-0 plans; set B holds the
        // dominated variant plus the format-1 plan.
        let exact = Admission::exact();
        let mut a: ParetoSet = ParetoSet::new();
        assert!(a.insert(plans[0].clone(), &exact));
        assert!(a.insert(plans[1].clone(), &exact));
        let mut b: ParetoSet = ParetoSet::new();
        assert!(b.insert(plans[3].clone(), &exact));
        assert!(b.insert(plans[2].clone(), &exact));
        let mut adoptions = 0;
        let inserted = a.merge_with(&b, &exact, |p| {
            adoptions += 1;
            p.clone()
        });
        // plans[3] is dominated by plans[0] → rejected without adoption;
        // plans[2] (format 1) is admitted.
        assert_eq!(inserted, 1);
        assert_eq!(adoptions, 1, "rejected members must not be adopted");
        assert_eq!(a.len(), 3);
        assert!(a.check_invariant());
        // Merging the same set again changes nothing (idempotent union).
        assert_eq!(a.merge_with(&b, &exact, |p| p.clone()), 0);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn merge_order_matches_sequential_insertion() {
        // Merging B into A must make exactly the decisions of inserting B's
        // members one by one in storage order — the property the parallel
        // optimizer's deterministic reduction relies on.
        let exact = Admission::exact();
        let streams: [&[(&[f64], u8)]; 2] = [
            &[(&[4.0, 4.0], 0), (&[2.0, 6.0], 0), (&[6.0, 2.0], 1)],
            &[(&[3.0, 3.0], 0), (&[2.0, 6.0], 1), (&[9.0, 1.0], 0)],
        ];
        let mut sets: Vec<ParetoSet> = Vec::new();
        for stream in streams {
            let mut s = ParetoSet::new();
            for (cost, format) in stream {
                s.insert(synthetic_plan(cost, *format), &exact);
            }
            sets.push(s);
        }
        let mut merged = ParetoSet::new();
        let mut sequential = ParetoSet::new();
        for s in &sets {
            merged.merge_with(s, &exact, |p| p.clone());
            for p in s.iter() {
                sequential.insert(p.clone(), &exact);
            }
        }
        let render = |s: &ParetoSet| -> Vec<(Vec<f64>, u8)> {
            s.iter()
                .map(|p| (p.cost().as_slice().to_vec(), p.format().0))
                .collect()
        };
        assert_eq!(render(&merged), render(&sequential));
    }

    #[test]
    fn helpers_cover_empty_and_clear() {
        let mut set = ParetoSet::new();
        assert!(set.is_empty());
        let (_, plans) = sample_plans();
        set.insert(plans[0].clone(), &Admission::cost_frontier());
        assert!(!set.is_empty());
        set.clear();
        assert!(set.is_empty());
        assert!(set.check_invariant());
        assert_eq!(set.into_plans().len(), 0);
    }

    #[test]
    fn deferred_materialization_skips_rejected_candidates() {
        let (_, plans) = sample_plans();
        let good = plans[0].clone();
        let bad = plans[3].clone();
        let mut set = ParetoSet::new();
        assert!(set.insert(good, &one_per_format()));
        // The rejected candidate's closure must never run.
        let bad_cost = *bad.cost();
        let bad_format = bad.format();
        let mut made = false;
        assert!(!set.admit(&bad_cost, bad_format, &one_per_format(), || {
            made = true;
            bad
        }));
        assert!(!made, "rejected candidate was materialized");

        let mut set = ParetoSet::new();
        assert!(set.insert(plans[0].clone(), &Admission::approx(1e9)));
        let mut made = false;
        assert!(
            !set.admit(&bad_cost, bad_format, &Admission::approx(1e9), || {
                made = true;
                plans[3].clone()
            })
        );
        assert!(!made, "rejected approx candidate was materialized");
    }

    #[test]
    fn screen_counters_tally_probes_rejections_and_evictions() {
        let (_, plans) = sample_plans();
        let good = plans[0].clone();
        let bad = plans[3].clone();

        // OnePerFormat: admit, then reject a dominated candidate.
        let mut set = ParetoSet::new();
        assert!(set.insert(good.clone(), &one_per_format()));
        assert!(!set.insert(bad.clone(), &one_per_format()));
        let c = set.screen_counters();
        assert_eq!(c.probes, 2);
        assert_eq!(c.admitted, 1);
        assert_eq!(c.rejected, 1);
        assert_eq!(c.dominance_tests, 1);

        // Eviction: dominated incumbent replaced under the literal policy.
        // The admitted candidate's eviction pass screens one SoA block.
        let mut set = ParetoSet::new();
        assert!(set.insert(bad, &keep_incomparable()));
        assert!(set.insert(good, &keep_incomparable()));
        let c = set.screen_counters();
        assert_eq!(c.probes, 2);
        assert_eq!(c.admitted, 2);
        assert_eq!(c.evicted, 1);
        assert!(c.blocks_screened >= 1, "{c:?}");

        // take_screen_counters drains; absorb sums.
        let mut total = ScreenCounters::default();
        total.absorb(&set.take_screen_counters());
        assert_eq!(total.probes, 2);
        assert_eq!(set.screen_counters(), ScreenCounters::default());

        // The block key-range pre-filter skips blocks whose keys already
        // rule dominance out: a cheap member cannot be dominated by an
        // expensive candidate, so the second probe's eviction pass skips
        // the incumbent's block.
        let mut set = ParetoSet::new();
        assert!(set.insert(synthetic_plan(&[1.0, 1.0, 1.0], 0), &Admission::exact()));
        assert!(set.insert(synthetic_plan(&[0.5, 4.0, 1.0], 0), &Admission::exact()));
        let c = set.screen_counters();
        assert!(c.agg_key_skips >= 1, "{c:?}");
    }

    #[test]
    fn eps_box_keeps_one_occupant_per_box_and_counts_eps_rejects() {
        let adm = Admission::eps_box(EpsFactors::uniform(2.0));
        let mut set = ParetoSet::new();
        // (2, 3) and (3, 2.5) are incomparable but share the factor-2 box
        // [2, 4)^2: the newcomer is rejected, and only by precision —
        // exact dominance would have kept it.
        assert!(set.insert(synthetic_plan(&[2.0, 3.0], 0), &adm));
        assert!(!set.insert(synthetic_plan(&[3.0, 2.5], 0), &adm));
        assert_eq!(set.screen_counters().eps_rejects, 1);
        // A same-box strictly dominating candidate replaces the incumbent.
        assert!(set.insert(synthetic_plan(&[2.0, 2.5], 0), &adm));
        assert_eq!(set.len(), 1);
        // A different non-dominated box is admitted.
        assert!(set.insert(synthetic_plan(&[8.0, 1.0], 0), &adm));
        assert_eq!(set.len(), 2);
        // A candidate box-dominating every member evicts them all.
        assert!(set.insert(synthetic_plan(&[0.5, 0.5], 0), &adm));
        assert_eq!(set.len(), 1);
        assert!(set.check_invariant());
    }

    #[test]
    fn eps_box_archive_is_bounded_by_box_counts() {
        // An adversarial anti-correlated stream: points on the plane
        // c0 + c1 + c2 = 300 are pairwise non-dominated, so the exact
        // archive keeps essentially every candidate while the ε-archive is
        // bounded by the number of per-metric boxes.
        let eps = EpsFactors::uniform(2.0);
        let boxed = Admission::eps_box(eps);
        let exact = Admission::exact();
        let mut eps_set = ParetoSet::new();
        let mut exact_set = ParetoSet::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let n = 2048;
        for _ in 0..n {
            let c0 = 1.0 + 99.0 * next();
            let c1 = 1.0 + 99.0 * next();
            let cost = [c0, c1, 300.0 - c0 - c1];
            eps_set.insert(synthetic_plan(&cost, 0), &boxed);
            exact_set.insert(synthetic_plan(&cost, 0), &exact);
        }
        // Size bound: every cost component lies in [1, 298], whose factor-2
        // boxes are indices 0..=8 — at most 9 per metric, 9^3 overall.
        assert!(
            eps_set.len() <= 9 * 9 * 9,
            "ε-archive exceeded the box-count bound: {}",
            eps_set.len()
        );
        // At most one occupant per box.
        let keys: Vec<BoxKey> = eps_set.iter().map(|p| eps.box_key(p.cost())).collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "two occupants share a box");
            }
        }
        // The exact archive blows up on the anti-correlated stream (the
        // bench harness records the d=8 version of this curve).
        assert!(
            exact_set.len() >= 5 * eps_set.len(),
            "exact {} vs ε {}",
            exact_set.len(),
            eps_set.len()
        );
        assert!(eps_set.check_invariant());
        assert!(eps_set.screen_counters().eps_rejects > 0);
    }

    #[test]
    fn eps_box_survives_schedule_driven_factor_changes() {
        // When the schedule decays between probes, cached boxes are
        // recomputed for the new factors and the invariant holds.
        let cfg = ArchiveConfig {
            policy: crate::archive::ArchivePolicy::EpsBox,
            eps: crate::archive::EpsSchedule::Geometric {
                start: EpsFactors::splat(4.0),
                decay: 0.5,
                period: 4,
            },
            capacity: None,
        };
        let mut set = ParetoSet::new();
        for i in 0..32u64 {
            let adm = cfg.admission(i);
            let c = [1.0 + (i % 7) as f64, 8.0 - (i % 7) as f64];
            set.insert(synthetic_plan(&c, (i % 2) as u8), &adm);
            assert!(set.check_invariant(), "iteration {i}");
        }
        assert!(!set.is_empty());
    }

    /// Fabricates a plan with arbitrary cost and format through the
    /// props-based constructor (the table/operator are irrelevant to
    /// `ParetoSet`, which only reads cost and format).
    fn synthetic_plan(cost: &[f64], format: u8) -> PlanRef {
        Plan::scan_from_props(
            TableId::new(0),
            ScanOpId(0),
            PlanProps {
                cost: CostVector::new(cost),
                rows: 1.0,
                pages: 1.0,
                format: OutputFormat(format),
            },
        )
    }

    #[cfg(any(test, feature = "diff-testing"))]
    #[test]
    fn bucketed_matches_linear_on_handpicked_eviction_chain() {
        // A chain designed to hit rejection, replacement, and multi-member
        // eviction in both implementations.
        let stream: Vec<(Vec<f64>, u8)> = vec![
            (vec![4.0, 4.0, 4.0], 0),
            (vec![5.0, 3.0, 5.0], 0),
            (vec![3.0, 5.0, 5.0], 0),
            (vec![6.0, 6.0, 6.0], 1),
            (vec![2.0, 2.0, 2.0], 0), // dominates all three format-0 members
            (vec![2.0, 2.0, 2.0], 0), // duplicate
            (vec![1.0, 9.0, 1.0], 1),
        ];
        for alpha in [1.0, 1.5, 10.0] {
            let adm = Admission::approx(alpha);
            let mut bucketed = ParetoSet::new();
            let mut linear = LinearParetoSet::new();
            for (cost, format) in &stream {
                let p = synthetic_plan(cost, *format);
                assert_eq!(
                    bucketed.insert(p.clone(), &adm),
                    linear.admit(p, &adm),
                    "decision diverged at alpha={alpha}"
                );
            }
            assert_eq!(bucketed.len(), linear.len());
            assert!(bucketed.check_invariant());
        }
    }

    #[cfg(any(test, feature = "diff-testing"))]
    mod differential {
        //! Differential proptests (compiled under the `diff-testing`
        //! feature): (a) every admission rule preserves the Pareto-set
        //! invariant, (b) the bucketed-SoA implementation makes exactly the
        //! decisions — and stores exactly the survivors, in the same order —
        //! as the linear-scan reference deciding through the scalar
        //! [`AdmissionRule`] predicates, and (c) the degenerate ε-archive
        //! (all factors 1) makes exactly the decisions of exact approximate
        //! pruning at d ∈ {2, 4, 8}.

        use super::*;
        use proptest::prelude::*;

        /// Candidate streams: small integer-ish costs maximize dominance /
        /// equality collisions, few formats maximize bucket contention.
        fn arb_stream_d(dim: usize) -> impl Strategy<Value = Vec<(Vec<f64>, u8)>> {
            proptest::collection::vec(
                (
                    proptest::collection::vec((0..8u8).prop_map(f64::from), dim),
                    0..3u8,
                ),
                1..40,
            )
        }

        fn arb_stream() -> impl Strategy<Value = Vec<(Vec<f64>, u8)>> {
            arb_stream_d(3)
        }

        fn survivors(plans: &[PlanRef]) -> Vec<(Vec<f64>, u8)> {
            plans
                .iter()
                .map(|p| (p.cost().as_slice().to_vec(), p.format().0))
                .collect()
        }

        /// Runs a stream through the bucketed set under `adm` and the
        /// linear oracle, asserting identical decisions and survivors.
        fn assert_matches_linear(
            stream: &[(Vec<f64>, u8)],
            adm: &Admission,
        ) -> Result<(), TestCaseError> {
            let mut bucketed = ParetoSet::new();
            let mut linear = LinearParetoSet::new();
            for (cost, format) in stream {
                let p = synthetic_plan(cost, *format);
                let kept_b = bucketed.insert(p.clone(), adm);
                let kept_l = linear.admit(p, adm);
                prop_assert_eq!(kept_b, kept_l, "decision diverged under {:?}", adm);
            }
            prop_assert!(bucketed.check_invariant());
            prop_assert_eq!(
                survivors(bucketed.plans()),
                survivors(linear.plans()),
                "survivors diverged under {:?}",
                adm
            );
            Ok(())
        }

        /// Runs a stream through the exact ε-box archive and exact
        /// approximate pruning, asserting identical decisions and
        /// survivors — the ε=0 differential property.
        fn assert_exact_eps_box_matches(stream: &[(Vec<f64>, u8)]) -> Result<(), TestCaseError> {
            let boxed = Admission::eps_box(EpsFactors::exact());
            let exact = Admission::exact();
            let mut eps_set = ParetoSet::new();
            let mut exact_set = ParetoSet::new();
            for (cost, format) in stream {
                let p = synthetic_plan(cost, *format);
                prop_assert_eq!(
                    eps_set.insert(p.clone(), &boxed),
                    exact_set.insert(p, &exact),
                    "ε=0 archive decision diverged from exact pruning"
                );
            }
            prop_assert!(eps_set.check_invariant());
            prop_assert_eq!(survivors(eps_set.plans()), survivors(exact_set.plans()));
            prop_assert_eq!(
                eps_set.screen_counters().eps_rejects,
                0,
                "ε=0 must never reject on precision alone"
            );
            Ok(())
        }

        proptest! {
            /// Both climb policies preserve the invariant (no member
            /// strictly dominates a same-format member), and bucketed
            /// pruning returns the same surviving set as the linear scan.
            #[test]
            fn climb_policies_match_linear_and_keep_invariant(stream in arb_stream()) {
                for policy in [PrunePolicy::OnePerFormat, PrunePolicy::KeepIncomparable] {
                    assert_matches_linear(&stream, &Admission::climb(policy))?;
                }
            }

            /// Approximate pruning: same decisions and survivors for a range
            /// of α, and the invariant holds.
            #[test]
            fn approx_prune_matches_linear_and_keeps_invariant(
                stream in arb_stream(),
                alpha in prop_oneof![Just(1.0f64), 1.0f64..4.0, Just(1e12f64)],
            ) {
                assert_matches_linear(&stream, &Admission::approx(alpha))?;
            }

            /// Per-metric factors match the linear oracle too.
            #[test]
            fn per_metric_approx_matches_linear(
                stream in arb_stream(),
                factors in proptest::collection::vec(1.0f64..4.0, 3),
            ) {
                let adm = Admission::approx_per_metric(EpsFactors::per_metric(&factors));
                assert_matches_linear(&stream, &adm)?;
            }

            /// Format-agnostic cost-frontier insertion matches as well.
            #[test]
            fn cost_frontier_matches_linear(stream in arb_stream()) {
                assert_matches_linear(&stream, &Admission::cost_frontier())?;
            }

            /// The ε-box archive matches the linear oracle for coarse
            /// factors (the SoA-cached box path vs the scalar predicates).
            #[test]
            fn eps_box_matches_linear(
                stream in arb_stream(),
                factor in prop_oneof![Just(1.0f64), 1.0f64..3.0],
            ) {
                let adm = Admission::eps_box(EpsFactors::uniform(factor));
                assert_matches_linear(&stream, &adm)?;
            }

            /// Capacity-bounded admission matches the linear oracle.
            #[test]
            fn capacity_matches_linear(stream in arb_stream(), cap in 1usize..6) {
                assert_matches_linear(&stream, &Admission::exact().with_capacity(cap))?;
            }

            /// ε=0 (exact factors) archive == exact pruning at d = 2.
            #[test]
            fn exact_eps_box_matches_exact_archive_d2(stream in arb_stream_d(2)) {
                assert_exact_eps_box_matches(&stream)?;
            }

            /// ε=0 (exact factors) archive == exact pruning at d = 4.
            #[test]
            fn exact_eps_box_matches_exact_archive_d4(stream in arb_stream_d(4)) {
                assert_exact_eps_box_matches(&stream)?;
            }

            /// ε=0 (exact factors) archive == exact pruning at d = 8.
            #[test]
            fn exact_eps_box_matches_exact_archive_d8(stream in arb_stream_d(8)) {
                assert_exact_eps_box_matches(&stream)?;
            }
        }
    }
}
