//! Pareto-set maintenance: the two `Prune` functions of the paper.
//!
//! Algorithm 2 (hill climbing) and Algorithm 3 (frontier approximation) use
//! different pruning rules:
//!
//! * **Climb pruning** (Alg. 2): `Better(p1, p2) = SameOutput ∧ p1 ≺ p2`.
//!   A new plan is inserted unless an existing plan with the same output
//!   format strictly dominates it; inserting removes the same-format plans
//!   it strictly dominates. The comment in the paper says this "keeps one
//!   Pareto plan per output format" and Lemma 2 assumes "each instance of
//!   ParetoStep returns only one non-dominated plan" — with several metrics,
//!   however, the literal rule can retain *incomparable* same-format plans.
//!   We therefore support both readings via [`PrunePolicy`]: the default
//!   [`PrunePolicy::OnePerFormat`] keeps the incumbent when plans are
//!   incomparable (matching the complexity analysis); the literal
//!   [`PrunePolicy::KeepIncomparable`] follows the pseudo-code exactly.
//!
//! * **Approximate pruning** (Alg. 3): `SigBetter(p1, p2, α) = SameOutput ∧
//!   p1 ⪯_α p2`. A new plan is inserted only if no stored same-format plan
//!   α-approximately dominates it; insertion removes stored plans the new
//!   plan weakly dominates (α = 1). This keeps the per-table-set frontier
//!   size polynomially bounded (Lemma 6).

use crate::plan::{Plan, PlanRef};

/// `Better(p1, p2)` of Algorithm 2: same output format and strictly
/// dominating cost.
#[inline]
pub fn better(p1: &Plan, p2: &Plan) -> bool {
    p1.same_output(p2) && p1.cost().strictly_dominates(p2.cost())
}

/// `SigBetter(p1, p2, α)` of Algorithm 3: same output format and
/// α-approximately dominating cost.
#[inline]
pub fn sig_better(p1: &Plan, p2: &Plan, alpha: f64) -> bool {
    p1.same_output(p2) && p1.cost().approx_dominates(p2.cost(), alpha)
}

/// How climb pruning treats incomparable plans with the same output format.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PrunePolicy {
    /// Keep at most one plan per output format: a new incomparable plan is
    /// discarded in favour of the incumbent. Matches the assumption of the
    /// paper's Lemma 2 and is the production default.
    #[default]
    OnePerFormat,
    /// Keep all mutually non-dominated plans per output format — the literal
    /// reading of Algorithm 2's `Prune`.
    KeepIncomparable,
}

/// A pruned set of plans over the same table set.
///
/// Invariant: no member strictly dominates another member with the same
/// output format (both policies and the approximate rule preserve this).
#[derive(Clone, Default, Debug)]
pub struct ParetoSet {
    plans: Vec<PlanRef>,
}

impl ParetoSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ParetoSet { plans: Vec::new() }
    }

    /// The current members.
    #[inline]
    pub fn plans(&self) -> &[PlanRef] {
        &self.plans
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.plans.clear();
    }

    /// Climb pruning (Algorithm 2's `Prune`). Returns `true` iff the plan
    /// was inserted.
    pub fn insert_climb(&mut self, new_plan: PlanRef, policy: PrunePolicy) -> bool {
        match policy {
            PrunePolicy::KeepIncomparable => {
                if self.plans.iter().any(|p| better(p, &new_plan)) {
                    return false;
                }
                // Also drop exact same-format cost duplicates: the paper's
                // strict rule would accumulate them without bound.
                if self
                    .plans
                    .iter()
                    .any(|p| p.same_output(&new_plan) && p.cost() == new_plan.cost())
                {
                    return false;
                }
                self.plans.retain(|p| !better(&new_plan, p));
                self.plans.push(new_plan);
                true
            }
            PrunePolicy::OnePerFormat => {
                if let Some(idx) = self.plans.iter().position(|p| p.same_output(&new_plan)) {
                    if new_plan.cost().strictly_dominates(self.plans[idx].cost()) {
                        self.plans[idx] = new_plan;
                        true
                    } else {
                        false
                    }
                } else {
                    self.plans.push(new_plan);
                    true
                }
            }
        }
    }

    /// Approximate pruning (Algorithm 3's `Prune` with factor `alpha`).
    /// Returns `true` iff the plan was inserted.
    pub fn insert_approx(&mut self, new_plan: PlanRef, alpha: f64) -> bool {
        if self.plans.iter().any(|p| sig_better(p, &new_plan, alpha)) {
            return false;
        }
        self.plans.retain(|p| !sig_better(&new_plan, p, 1.0));
        self.plans.push(new_plan);
        true
    }

    /// Inserts keeping the exact cost-Pareto frontier, ignoring output
    /// formats (used for result archives where only cost tradeoffs matter).
    /// Returns `true` iff the plan was inserted.
    pub fn insert_cost_frontier(&mut self, new_plan: PlanRef) -> bool {
        if self
            .plans
            .iter()
            .any(|p| p.cost().strictly_dominates(new_plan.cost()) || p.cost() == new_plan.cost())
        {
            return false;
        }
        self.plans
            .retain(|p| !new_plan.cost().strictly_dominates(p.cost()));
        self.plans.push(new_plan);
        true
    }

    /// Consumes the set, returning the plans.
    pub fn into_plans(self) -> Vec<PlanRef> {
        self.plans
    }

    /// Iterates over members.
    pub fn iter(&self) -> impl Iterator<Item = &PlanRef> {
        self.plans.iter()
    }

    /// Debug check of the set invariant: no member strictly dominates
    /// another member with the same output format.
    pub fn check_invariant(&self) -> bool {
        for (i, a) in self.plans.iter().enumerate() {
            for (j, b) in self.plans.iter().enumerate() {
                if i != j && better(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

impl FromIterator<PlanRef> for ParetoSet {
    /// Collects plans into an exact cost-Pareto frontier (format-agnostic).
    fn from_iter<I: IntoIterator<Item = PlanRef>>(iter: I) -> Self {
        let mut set = ParetoSet::new();
        for p in iter {
            set.insert_cost_frontier(p);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostVector;
    use crate::model::{CostModel, JoinOpId, OutputFormat, PlanProps, ScanOpId};
    use crate::plan::Plan;
    use crate::tables::TableId;

    /// A model with hand-picked costs so dominance relations are exact:
    /// join op 0 adds (1, 2), op 1 adds (2, 1) — incomparable, format 0;
    /// op 2 adds (1.5, 1.5) with format 1; scan op 0 costs (1, 1) and scan
    /// op 1 costs (2, 2) — strictly dominated.
    struct ManualModel {
        scan_ops: Vec<ScanOpId>,
    }

    impl ManualModel {
        fn new() -> Self {
            ManualModel {
                scan_ops: vec![ScanOpId(0), ScanOpId(1)],
            }
        }
    }

    impl CostModel for ManualModel {
        fn dim(&self) -> usize {
            2
        }
        fn metric_name(&self, _k: usize) -> &str {
            "m"
        }
        fn num_tables(&self) -> usize {
            2
        }
        fn scan_ops(&self, _table: TableId) -> &[ScanOpId] {
            &self.scan_ops
        }
        fn join_ops(&self, _outer: &Plan, _inner: &Plan, out: &mut Vec<JoinOpId>) {
            out.extend([JoinOpId(0), JoinOpId(1), JoinOpId(2)]);
        }
        fn scan_props(&self, _table: TableId, op: ScanOpId) -> PlanProps {
            let c = if op.0 == 0 { 1.0 } else { 2.0 };
            PlanProps {
                cost: CostVector::new(&[c, c]),
                rows: 100.0,
                pages: 1.0,
                format: OutputFormat(0),
            }
        }
        fn join_props(&self, outer: &Plan, inner: &Plan, op: JoinOpId) -> PlanProps {
            let extra = match op.0 {
                0 => [1.0, 2.0],
                1 => [2.0, 1.0],
                _ => [1.5, 1.5],
            };
            let cost = outer.cost().add(inner.cost()).add(&CostVector::new(&extra));
            PlanProps {
                cost,
                rows: 100.0,
                pages: 1.0,
                format: if op.0 == 2 {
                    OutputFormat(1)
                } else {
                    OutputFormat(0)
                },
            }
        }
        fn scan_op_name(&self, _op: ScanOpId) -> String {
            "scan".into()
        }
        fn join_op_name(&self, _op: JoinOpId) -> String {
            "join".into()
        }
        fn num_formats(&self) -> usize {
            2
        }
    }

    /// Builds join plans over the same two tables with each operator so we
    /// get plans with controlled formats and genuinely different costs:
    /// `plans[0]` (3,4), `plans[1]` (4,3) — incomparable, format 0;
    /// `plans[2]` (3.5,3.5), format 1; `plans[3]` (5,6), format 0,
    /// strictly dominated by `plans[0]`.
    fn sample_plans() -> (ManualModel, Vec<PlanRef>) {
        let m = ManualModel::new();
        let s0 = Plan::scan(&m, TableId::new(0), ScanOpId(0));
        let s1 = Plan::scan(&m, TableId::new(1), ScanOpId(0));
        let mut plans = Vec::new();
        for op in 0..3u16 {
            plans.push(Plan::join(&m, s0.clone(), s1.clone(), JoinOpId(op)));
        }
        // A strictly worse variant of plan 0 (same format, higher cost):
        // built from the strictly more expensive scans.
        let e0 = Plan::scan(&m, TableId::new(0), ScanOpId(1));
        let e1 = Plan::scan(&m, TableId::new(1), ScanOpId(1));
        plans.push(Plan::join(&m, e0, e1, JoinOpId(0)));
        (m, plans)
    }

    #[test]
    fn climb_prune_discards_strictly_dominated() {
        let (_, plans) = sample_plans();
        let good = plans[0].clone();
        let bad = plans[3].clone();
        assert!(better(&good, &bad), "fixture: plan 0 must dominate plan 3");

        let mut set = ParetoSet::new();
        assert!(set.insert_climb(good.clone(), PrunePolicy::OnePerFormat));
        assert!(!set.insert_climb(bad.clone(), PrunePolicy::OnePerFormat));
        assert_eq!(set.len(), 1);

        // Inserting in the reverse order replaces the dominated plan.
        let mut set = ParetoSet::new();
        assert!(set.insert_climb(bad, PrunePolicy::OnePerFormat));
        assert!(set.insert_climb(good.clone(), PrunePolicy::OnePerFormat));
        assert_eq!(set.len(), 1);
        assert!(std::sync::Arc::ptr_eq(&set.plans()[0], &good));
    }

    #[test]
    fn climb_prune_keeps_one_plan_per_format() {
        let (_, plans) = sample_plans();
        // plans[0] and plans[1] are format 0 and incomparable; plans[2] is format 1.
        let mut set = ParetoSet::new();
        assert!(set.insert_climb(plans[0].clone(), PrunePolicy::OnePerFormat));
        assert!(!set.insert_climb(plans[1].clone(), PrunePolicy::OnePerFormat));
        assert!(set.insert_climb(plans[2].clone(), PrunePolicy::OnePerFormat));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn literal_prune_keeps_incomparable_same_format_plans() {
        let (_, plans) = sample_plans();
        let mut set = ParetoSet::new();
        assert!(set.insert_climb(plans[0].clone(), PrunePolicy::KeepIncomparable));
        assert!(set.insert_climb(plans[1].clone(), PrunePolicy::KeepIncomparable));
        assert_eq!(set.len(), 2);
        // Exact duplicates are rejected.
        assert!(!set.insert_climb(plans[0].clone(), PrunePolicy::KeepIncomparable));
        assert!(set.check_invariant());
    }

    #[test]
    fn approx_prune_rejects_alpha_covered_plans() {
        let (_, plans) = sample_plans();
        let good = plans[0].clone();
        let bad = plans[3].clone();
        let alpha_needed = bad
            .cost()
            .as_slice()
            .iter()
            .zip(good.cost().as_slice())
            .map(|(b, g)| b / g)
            .fold(f64::INFINITY, f64::min);
        // With a huge alpha, the worse plan is "covered" and rejected.
        let mut set = ParetoSet::new();
        assert!(set.insert_approx(good.clone(), 1e9));
        assert!(!set.insert_approx(bad.clone(), 1e9));
        // With alpha = 1 it is still rejected (strictly dominated)...
        let mut set = ParetoSet::new();
        assert!(set.insert_approx(good.clone(), 1.0));
        assert!(!set.insert_approx(bad.clone(), 1.0));
        let _ = alpha_needed;
    }

    #[test]
    fn approx_prune_keeps_distinct_tradeoffs_at_low_alpha() {
        let (_, plans) = sample_plans();
        let mut set = ParetoSet::new();
        assert!(set.insert_approx(plans[0].clone(), 1.0));
        assert!(set.insert_approx(plans[1].clone(), 1.0));
        assert_eq!(set.len(), 2, "incomparable plans both kept at alpha=1");
    }

    #[test]
    fn approx_prune_insertion_removes_weakly_dominated() {
        let (_, plans) = sample_plans();
        let good = plans[0].clone();
        let bad = plans[3].clone();
        let mut set = ParetoSet::new();
        // Insert the worse plan first with alpha=1, then the better one:
        // the worse plan must be evicted.
        assert!(set.insert_approx(bad, 1.0));
        assert!(set.insert_approx(good.clone(), 1.0));
        assert_eq!(set.len(), 1);
        assert!(std::sync::Arc::ptr_eq(&set.plans()[0], &good));
    }

    #[test]
    fn cost_frontier_ignores_format() {
        let (_, plans) = sample_plans();
        let mut set = ParetoSet::new();
        for p in &plans {
            set.insert_cost_frontier(p.clone());
        }
        // plans[3] is dominated by plans[0]; the rest are incomparable.
        assert_eq!(set.len(), 3);
        // No member dominates another.
        for a in set.iter() {
            for b in set.iter() {
                if !std::sync::Arc::ptr_eq(a, b) {
                    assert!(!a.cost().strictly_dominates(b.cost()));
                }
            }
        }
    }

    #[test]
    fn from_iterator_builds_cost_frontier() {
        let (_, plans) = sample_plans();
        let set: ParetoSet = plans.into_iter().collect();
        assert_eq!(set.len(), 3);
        assert!(set.check_invariant());
    }

    #[test]
    fn helpers_cover_empty_and_clear() {
        let mut set = ParetoSet::new();
        assert!(set.is_empty());
        let (_, plans) = sample_plans();
        set.insert_cost_frontier(plans[0].clone());
        assert!(!set.is_empty());
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.into_plans().len(), 0);
    }
}
