//! Pareto-set maintenance: the two `Prune` functions of the paper.
//!
//! Algorithm 2 (hill climbing) and Algorithm 3 (frontier approximation) use
//! different pruning rules:
//!
//! * **Climb pruning** (Alg. 2): `Better(p1, p2) = SameOutput ∧ p1 ≺ p2`.
//!   A new plan is inserted unless an existing plan with the same output
//!   format strictly dominates it; inserting removes the same-format plans
//!   it strictly dominates. The comment in the paper says this "keeps one
//!   Pareto plan per output format" and Lemma 2 assumes "each instance of
//!   ParetoStep returns only one non-dominated plan" — with several metrics,
//!   however, the literal rule can retain *incomparable* same-format plans.
//!   We therefore support both readings via [`PrunePolicy`]: the default
//!   [`PrunePolicy::OnePerFormat`] keeps the incumbent when plans are
//!   incomparable (matching the complexity analysis); the literal
//!   [`PrunePolicy::KeepIncomparable`] follows the pseudo-code exactly.
//!
//! * **Approximate pruning** (Alg. 3): `SigBetter(p1, p2, α) = SameOutput ∧
//!   p1 ⪯_α p2`. A new plan is inserted only if no stored same-format plan
//!   α-approximately dominates it; insertion removes stored plans the new
//!   plan weakly dominates (α = 1). This keeps the per-table-set frontier
//!   size polynomially bounded (Lemma 6).
//!
//! # Hot-path representation
//!
//! `Prune`/`SigBetter` run inside every hill-climbing step and every
//! `ApproximateFrontiers` traversal, so the paper's per-iteration complexity
//! argument hinges on these checks being cheap. [`ParetoSet`] therefore
//!
//! * **buckets members by output format** — the `SameOutput` conjunct of
//!   both rules becomes a hash-map lookup followed by a scan of one format's
//!   members instead of a scan of the whole set;
//! * **caches cost vectors and an aggregate key inline** — dominance checks
//!   read a dense metadata array instead of chasing every member's
//!   `Arc<Plan>`, and a member whose key already rules dominance out is
//!   skipped without touching its components (see
//!   [`CostVector::agg_key`]);
//! * **defers plan materialization** — the `*_with` insertion variants take
//!   the candidate's cost and format plus a closure producing the plan, so
//!   *rejected candidates never allocate* (callers cost a candidate, probe
//!   the set, and only build the `Arc<Plan>` on admission).
//!
//! The pre-bucketing flat-`Vec` implementation is retained as
//! [`LinearParetoSet`] for differential tests and the `pruning`
//! micro-benchmark; both implementations make identical keep/evict
//! decisions and store survivors in the same order.

use crate::cost::CostVector;
use crate::fxhash::FxHashMap;
use crate::model::OutputFormat;
use crate::plan::{Plan, PlanRef};

/// `Better(p1, p2)` of Algorithm 2: same output format and strictly
/// dominating cost.
#[inline]
pub fn better(p1: &Plan, p2: &Plan) -> bool {
    p1.same_output(p2) && p1.cost().strictly_dominates(p2.cost())
}

/// `SigBetter(p1, p2, α)` of Algorithm 3: same output format and
/// α-approximately dominating cost.
#[inline]
pub fn sig_better(p1: &Plan, p2: &Plan, alpha: f64) -> bool {
    p1.same_output(p2) && p1.cost().approx_dominates(p2.cost(), alpha)
}

/// How climb pruning treats incomparable plans with the same output format.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PrunePolicy {
    /// Keep at most one plan per output format: a new incomparable plan is
    /// discarded in favour of the incumbent. Matches the assumption of the
    /// paper's Lemma 2 and is the production default.
    #[default]
    OnePerFormat,
    /// Keep all mutually non-dominated plans per output format — the literal
    /// reading of Algorithm 2's `Prune`.
    KeepIncomparable,
}

/// Screening tallies accumulated by a [`ParetoSet`]'s insertion paths:
/// how much work the two-stage screen (aggregate-key pre-filter, then
/// full component-wise dominance) did, and how candidates fared.
///
/// The fields are plain `u64`s bumped inline — no atomics, no
/// allocation — so counting is free relative to the dominance arithmetic
/// it measures. Callers on instrumented paths harvest them with
/// [`ParetoSet::take_screen_counters`] and flush the totals to the global
/// `moqo-obs` registry at iteration granularity; because the tallies are
/// pure observations (they never influence pruning, ordering, or RNG
/// state), they are bit-for-bit deterministic for a seeded run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScreenCounters {
    /// Candidates offered to the set (insertion probes).
    pub probes: u64,
    /// Member comparisons resolved by the aggregate-key pre-filter alone
    /// (no full dominance test ran).
    pub agg_key_skips: u64,
    /// Full component-wise dominance tests executed.
    pub dominance_tests: u64,
    /// Candidates rejected (dominated, α-covered, or duplicate).
    pub rejected: u64,
    /// Candidates admitted.
    pub admitted: u64,
    /// Incumbent members evicted by admitted candidates.
    pub evicted: u64,
}

impl ScreenCounters {
    /// Adds `other`'s tallies into `self`.
    pub fn absorb(&mut self, other: &ScreenCounters) {
        self.probes += other.probes;
        self.agg_key_skips += other.agg_key_skips;
        self.dominance_tests += other.dominance_tests;
        self.rejected += other.rejected;
        self.admitted += other.admitted;
        self.evicted += other.evicted;
    }
}

/// Inline per-member pruning metadata: the cost vector, its cached
/// aggregate key, and the output format. Dominance checks touch only this
/// dense array; the member's `Arc<Plan>` is never dereferenced.
#[derive(Clone, Copy, Debug)]
struct Meta {
    cost: CostVector,
    /// `cost.agg_key()`, cached at insertion.
    key: f64,
    format: OutputFormat,
}

impl Meta {
    #[inline]
    fn of(cost: &CostVector, format: OutputFormat) -> Self {
        Meta {
            cost: *cost,
            key: cost.agg_key(),
            format,
        }
    }
}

/// A pruned set of plans over the same table set.
///
/// Invariant: no member strictly dominates another member with the same
/// output format (both policies and the approximate rule preserve this).
///
/// Members are stored in insertion order (evictions compact in place), with
/// a per-output-format index on the side so same-format probes never scan
/// members of other formats. See the module docs for the full hot-path
/// rationale.
///
/// The member handle type `P` is generic: every pruning decision reads only
/// the inline `(cost, key, format)` metadata, so the same code stores
/// `Arc<Plan>` trees (`ParetoSet<PlanRef>`, the default) or hash-consed
/// [`crate::arena::PlanId`]s (`ParetoSet<PlanId>`, where members are `Copy`
/// integers and the set never touches an allocation).
#[derive(Clone, Debug)]
pub struct ParetoSet<P = PlanRef> {
    plans: Vec<P>,
    /// Parallel to `plans`: inline cost metadata.
    meta: Vec<Meta>,
    /// Output format → ascending indices into `plans`/`meta`.
    buckets: FxHashMap<OutputFormat, Vec<u32>>,
    /// Screening tallies (observational only; see [`ScreenCounters`]).
    screen: ScreenCounters,
}

impl<P> Default for ParetoSet<P> {
    fn default() -> Self {
        ParetoSet {
            plans: Vec::new(),
            meta: Vec::new(),
            buckets: FxHashMap::default(),
            screen: ScreenCounters::default(),
        }
    }
}

impl<P> ParetoSet<P> {
    /// Creates an empty set.
    pub fn new() -> Self {
        ParetoSet::default()
    }

    /// The current members.
    #[inline]
    pub fn plans(&self) -> &[P] {
        &self.plans
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.plans.clear();
        self.meta.clear();
        for bucket in self.buckets.values_mut() {
            bucket.clear();
        }
    }

    #[inline]
    fn push(&mut self, plan: P, meta: Meta) {
        let idx = self.plans.len() as u32;
        self.plans.push(plan);
        self.buckets.entry(meta.format).or_default().push(idx);
        self.meta.push(meta);
    }

    /// Removes the members at the given ascending indices, preserving the
    /// relative order of the survivors (mirrors `Vec::retain`, which the
    /// linear reference implementation uses), then rebuilds the format
    /// index. Eviction is the rare path — insertions evict only when the
    /// newcomer dominates stored members — so the O(len) compaction does
    /// not affect the rejection fast path.
    fn remove_sorted(&mut self, dead: &[u32]) {
        debug_assert!(dead.windows(2).all(|w| w[0] < w[1]));
        let mut di = 0usize;
        let mut idx = 0u32;
        self.plans.retain(|_| {
            let drop = di < dead.len() && dead[di] == idx;
            if drop {
                di += 1;
            }
            idx += 1;
            !drop
        });
        di = 0;
        idx = 0;
        self.meta.retain(|_| {
            let drop = di < dead.len() && dead[di] == idx;
            if drop {
                di += 1;
            }
            idx += 1;
            !drop
        });
        for bucket in self.buckets.values_mut() {
            bucket.clear();
        }
        for (i, m) in self.meta.iter().enumerate() {
            self.buckets.entry(m.format).or_default().push(i as u32);
        }
    }

    /// Climb pruning on a candidate described by its cost and output format
    /// alone: `make` is invoked — and the plan allocated — only if the
    /// candidate is admitted. The materialized plan must have exactly the
    /// given cost and format. Returns `true` iff the candidate was inserted.
    #[inline]
    pub fn insert_climb_with(
        &mut self,
        cost: &CostVector,
        format: OutputFormat,
        policy: PrunePolicy,
        make: impl FnOnce() -> P,
    ) -> bool {
        self.screen.probes += 1;
        match policy {
            PrunePolicy::KeepIncomparable => {
                let key = cost.agg_key();
                if let Some(bucket) = self.buckets.get(&format) {
                    for &i in bucket {
                        let m = &self.meta[i as usize];
                        // A strictly dominating member — or an exact
                        // duplicate, which the paper's strict rule would
                        // accumulate without bound — cannot have a larger
                        // aggregate key than the candidate.
                        if m.key > key {
                            self.screen.agg_key_skips += 1;
                            continue;
                        }
                        self.screen.dominance_tests += 1;
                        if m.cost.strictly_dominates(cost) || m.cost == *cost {
                            self.screen.rejected += 1;
                            return false;
                        }
                    }
                }
                // Evict the same-format members the candidate strictly
                // dominates; their keys are at least the candidate's.
                let mut dead: Vec<u32> = Vec::new();
                if let Some(bucket) = self.buckets.get(&format) {
                    for &i in bucket {
                        let m = &self.meta[i as usize];
                        if key > m.key {
                            self.screen.agg_key_skips += 1;
                            continue;
                        }
                        self.screen.dominance_tests += 1;
                        if cost.strictly_dominates(&m.cost) {
                            dead.push(i);
                        }
                    }
                }
                if !dead.is_empty() {
                    self.screen.evicted += dead.len() as u64;
                    self.remove_sorted(&dead);
                }
                self.screen.admitted += 1;
                self.push(make(), Meta::of(cost, format));
                true
            }
            PrunePolicy::OnePerFormat => {
                match self.buckets.get(&format).and_then(|b| b.first().copied()) {
                    Some(idx) => {
                        let incumbent = &self.meta[idx as usize];
                        self.screen.dominance_tests += 1;
                        if cost.strictly_dominates(&incumbent.cost) {
                            self.meta[idx as usize] = Meta::of(cost, format);
                            self.plans[idx as usize] = make();
                            self.screen.admitted += 1;
                            self.screen.evicted += 1;
                            true
                        } else {
                            self.screen.rejected += 1;
                            false
                        }
                    }
                    None => {
                        self.screen.admitted += 1;
                        self.push(make(), Meta::of(cost, format));
                        true
                    }
                }
            }
        }
    }

    /// Approximate pruning on a candidate described by its cost and output
    /// format alone; like [`insert_climb_with`](Self::insert_climb_with),
    /// `make` runs only on admission, so rejected candidates never
    /// allocate. Returns `true` iff the candidate was inserted.
    #[inline]
    pub fn insert_approx_with(
        &mut self,
        cost: &CostVector,
        format: OutputFormat,
        alpha: f64,
        make: impl FnOnce() -> P,
    ) -> bool {
        // A member α-dominating the candidate satisfies
        // `m.key <= cost.scaled_agg_key(alpha)` exactly (see CostVector).
        self.screen.probes += 1;
        let alpha_key = cost.scaled_agg_key(alpha);
        if let Some(bucket) = self.buckets.get(&format) {
            for &i in bucket {
                let m = &self.meta[i as usize];
                if m.key > alpha_key {
                    self.screen.agg_key_skips += 1;
                    continue;
                }
                self.screen.dominance_tests += 1;
                if m.cost.approx_dominates(cost, alpha) {
                    self.screen.rejected += 1;
                    return false;
                }
            }
        }
        // Insertion removes the same-format members the candidate weakly
        // dominates (`SigBetter` with α = 1).
        let key = cost.agg_key();
        let mut dead: Vec<u32> = Vec::new();
        if let Some(bucket) = self.buckets.get(&format) {
            for &i in bucket {
                let m = &self.meta[i as usize];
                if key > m.key {
                    self.screen.agg_key_skips += 1;
                    continue;
                }
                self.screen.dominance_tests += 1;
                if cost.dominates(&m.cost) {
                    dead.push(i);
                }
            }
        }
        if !dead.is_empty() {
            self.screen.evicted += dead.len() as u64;
            self.remove_sorted(&dead);
        }
        self.screen.admitted += 1;
        self.push(make(), Meta::of(cost, format));
        true
    }

    /// Exact cost-Pareto-frontier insertion (format-agnostic) on a
    /// candidate described by its cost and format alone; `make` runs only
    /// on admission. Returns `true` iff the candidate was inserted.
    #[inline]
    pub fn insert_cost_frontier_with(
        &mut self,
        cost: &CostVector,
        format: OutputFormat,
        make: impl FnOnce() -> P,
    ) -> bool {
        self.screen.probes += 1;
        let key = cost.agg_key();
        for i in 0..self.meta.len() {
            let m = &self.meta[i];
            if m.key > key {
                self.screen.agg_key_skips += 1;
                continue;
            }
            self.screen.dominance_tests += 1;
            if m.cost.strictly_dominates(cost) || m.cost == *cost {
                self.screen.rejected += 1;
                return false;
            }
        }
        let mut dead: Vec<u32> = Vec::new();
        for i in 0..self.meta.len() {
            let m = &self.meta[i];
            if key > m.key {
                self.screen.agg_key_skips += 1;
                continue;
            }
            self.screen.dominance_tests += 1;
            if cost.strictly_dominates(&m.cost) {
                dead.push(i as u32);
            }
        }
        if !dead.is_empty() {
            self.screen.evicted += dead.len() as u64;
            self.remove_sorted(&dead);
        }
        self.screen.admitted += 1;
        self.push(make(), Meta::of(cost, format));
        true
    }

    /// Merges every member of `other` into `self` under approximate pruning
    /// with factor `alpha`, in `other`'s storage order. The candidate's cost
    /// and format come from `other`'s inline metadata; `adopt` translates
    /// the foreign handle into `self`'s handle type and runs **only for
    /// admitted members** (rejected candidates cost one dominance probe and
    /// nothing else). Returns the number of members inserted.
    ///
    /// This is the frontier-merge entry point of the parallel optimizer:
    /// worker frontiers (`ParetoSet<PlanId>` over private arenas) batch-merge
    /// into a shared global frontier, with `adopt` re-interning each
    /// surviving plan into the shared arena
    /// ([`PlanArena::adopt`](crate::arena::PlanArena::adopt)).
    pub fn merge_approx_with<Q>(
        &mut self,
        other: &ParetoSet<Q>,
        alpha: f64,
        mut adopt: impl FnMut(&Q) -> P,
    ) -> usize {
        let mut inserted = 0;
        for (plan, meta) in other.plans.iter().zip(&other.meta) {
            if self.insert_approx_with(&meta.cost, meta.format, alpha, || adopt(plan)) {
                inserted += 1;
            }
        }
        inserted
    }

    /// Screening tallies accumulated by this set's insertions so far.
    pub fn screen_counters(&self) -> ScreenCounters {
        self.screen
    }

    /// Returns and resets the screening tallies — the harvest point for
    /// instrumented callers that aggregate per-step counters (the climb
    /// scratch) and flush them at iteration granularity.
    pub fn take_screen_counters(&mut self) -> ScreenCounters {
        std::mem::take(&mut self.screen)
    }

    /// Consumes the set, returning the plans.
    pub fn into_plans(self) -> Vec<P> {
        self.plans
    }

    /// Iterates over members.
    pub fn iter(&self) -> impl Iterator<Item = &P> {
        self.plans.iter()
    }

    /// Debug check of the handle-independent part of the set invariant: no
    /// member strictly dominates another member with the same output
    /// format, and the metadata/format index is internally consistent.
    /// (`ParetoSet<PlanRef>::check_invariant` additionally cross-checks the
    /// stored plans against the metadata.)
    pub fn check_invariant_meta(&self) -> bool {
        if self.plans.len() != self.meta.len() {
            return false;
        }
        for m in &self.meta {
            if m.key != m.cost.agg_key() {
                return false;
            }
        }
        let indexed: usize = self.buckets.values().map(Vec::len).sum();
        if indexed != self.meta.len() {
            return false;
        }
        for (format, bucket) in &self.buckets {
            for &i in bucket {
                match self.meta.get(i as usize) {
                    Some(m) if m.format == *format => {}
                    _ => return false,
                }
            }
        }
        for (i, a) in self.meta.iter().enumerate() {
            for (j, b) in self.meta.iter().enumerate() {
                if i != j && a.format == b.format && a.cost.strictly_dominates(&b.cost) {
                    return false;
                }
            }
        }
        true
    }
}

impl ParetoSet<PlanRef> {
    /// Climb pruning (Algorithm 2's `Prune`). Returns `true` iff the plan
    /// was inserted.
    #[inline]
    pub fn insert_climb(&mut self, new_plan: PlanRef, policy: PrunePolicy) -> bool {
        let cost = *new_plan.cost();
        let format = new_plan.format();
        self.insert_climb_with(&cost, format, policy, move || new_plan)
    }

    /// Approximate pruning (Algorithm 3's `Prune` with factor `alpha`).
    /// Returns `true` iff the plan was inserted.
    #[inline]
    pub fn insert_approx(&mut self, new_plan: PlanRef, alpha: f64) -> bool {
        let cost = *new_plan.cost();
        let format = new_plan.format();
        self.insert_approx_with(&cost, format, alpha, move || new_plan)
    }

    /// Inserts keeping the exact cost-Pareto frontier, ignoring output
    /// formats (used for result archives where only cost tradeoffs matter).
    /// Returns `true` iff the plan was inserted.
    #[inline]
    pub fn insert_cost_frontier(&mut self, new_plan: PlanRef) -> bool {
        let cost = *new_plan.cost();
        let format = new_plan.format();
        self.insert_cost_frontier_with(&cost, format, move || new_plan)
    }

    /// Debug check of the full set invariant: the handle-independent checks
    /// of [`check_invariant_meta`](Self::check_invariant_meta) plus
    /// agreement between every stored plan and its inline metadata.
    pub fn check_invariant(&self) -> bool {
        if !self.check_invariant_meta() {
            return false;
        }
        self.plans
            .iter()
            .zip(&self.meta)
            .all(|(p, m)| p.cost().as_slice() == m.cost.as_slice() && p.format() == m.format)
    }
}

impl FromIterator<PlanRef> for ParetoSet {
    /// Collects plans into an exact cost-Pareto frontier (format-agnostic).
    fn from_iter<I: IntoIterator<Item = PlanRef>>(iter: I) -> Self {
        let mut set = ParetoSet::new();
        for p in iter {
            set.insert_cost_frontier(p);
        }
        set
    }
}

/// The pre-bucketing reference implementation: a flat `Vec<PlanRef>` with
/// O(n·d) dominance scans per insert that dereference every member's
/// `Arc<Plan>`.
///
/// Kept (verbatim from the original `ParetoSet`) for two purposes only:
/// differential tests proving the bucketed set makes identical decisions,
/// and the `pruning` micro-benchmark quantifying the speedup. Not used on
/// any hot path, and only compiled under the `diff-testing` feature (on in
/// test and bench builds, off in plain release builds).
#[cfg(any(test, feature = "diff-testing"))]
#[derive(Clone, Default, Debug)]
pub struct LinearParetoSet {
    plans: Vec<PlanRef>,
}

#[cfg(any(test, feature = "diff-testing"))]
impl LinearParetoSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        LinearParetoSet { plans: Vec::new() }
    }

    /// The current members.
    #[inline]
    pub fn plans(&self) -> &[PlanRef] {
        &self.plans
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Climb pruning by linear scan (the original Algorithm 2 `Prune`).
    pub fn insert_climb(&mut self, new_plan: PlanRef, policy: PrunePolicy) -> bool {
        match policy {
            PrunePolicy::KeepIncomparable => {
                if self.plans.iter().any(|p| better(p, &new_plan)) {
                    return false;
                }
                if self
                    .plans
                    .iter()
                    .any(|p| p.same_output(&new_plan) && p.cost() == new_plan.cost())
                {
                    return false;
                }
                self.plans.retain(|p| !better(&new_plan, p));
                self.plans.push(new_plan);
                true
            }
            PrunePolicy::OnePerFormat => {
                if let Some(idx) = self.plans.iter().position(|p| p.same_output(&new_plan)) {
                    if new_plan.cost().strictly_dominates(self.plans[idx].cost()) {
                        self.plans[idx] = new_plan;
                        true
                    } else {
                        false
                    }
                } else {
                    self.plans.push(new_plan);
                    true
                }
            }
        }
    }

    /// Approximate pruning by linear scan (the original Algorithm 3
    /// `Prune`).
    pub fn insert_approx(&mut self, new_plan: PlanRef, alpha: f64) -> bool {
        if self.plans.iter().any(|p| sig_better(p, &new_plan, alpha)) {
            return false;
        }
        self.plans.retain(|p| !sig_better(&new_plan, p, 1.0));
        self.plans.push(new_plan);
        true
    }

    /// Format-agnostic exact cost-frontier insertion by linear scan.
    pub fn insert_cost_frontier(&mut self, new_plan: PlanRef) -> bool {
        if self
            .plans
            .iter()
            .any(|p| p.cost().strictly_dominates(new_plan.cost()) || p.cost() == new_plan.cost())
        {
            return false;
        }
        self.plans
            .retain(|p| !new_plan.cost().strictly_dominates(p.cost()));
        self.plans.push(new_plan);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostVector;
    use crate::model::{CostModel, JoinOpId, OutputFormat, PlanProps, PlanView, ScanOpId};
    use crate::plan::Plan;
    use crate::tables::TableId;

    /// A model with hand-picked costs so dominance relations are exact:
    /// join op 0 adds (1, 2), op 1 adds (2, 1) — incomparable, format 0;
    /// op 2 adds (1.5, 1.5) with format 1; scan op 0 costs (1, 1) and scan
    /// op 1 costs (2, 2) — strictly dominated.
    struct ManualModel {
        scan_ops: Vec<ScanOpId>,
    }

    impl ManualModel {
        fn new() -> Self {
            ManualModel {
                scan_ops: vec![ScanOpId(0), ScanOpId(1)],
            }
        }
    }

    impl CostModel for ManualModel {
        fn dim(&self) -> usize {
            2
        }
        fn metric_name(&self, _k: usize) -> &str {
            "m"
        }
        fn num_tables(&self) -> usize {
            2
        }
        fn scan_ops(&self, _table: TableId) -> &[ScanOpId] {
            &self.scan_ops
        }
        fn join_ops(&self, _outer: &PlanView, _inner: &PlanView, out: &mut Vec<JoinOpId>) {
            out.extend([JoinOpId(0), JoinOpId(1), JoinOpId(2)]);
        }
        fn scan_props(&self, _table: TableId, op: ScanOpId) -> PlanProps {
            let c = if op.0 == 0 { 1.0 } else { 2.0 };
            PlanProps {
                cost: CostVector::new(&[c, c]),
                rows: 100.0,
                pages: 1.0,
                format: OutputFormat(0),
            }
        }
        fn join_props(&self, outer: &PlanView, inner: &PlanView, op: JoinOpId) -> PlanProps {
            let extra = match op.0 {
                0 => [1.0, 2.0],
                1 => [2.0, 1.0],
                _ => [1.5, 1.5],
            };
            let cost = outer.cost.add(&inner.cost).add(&CostVector::new(&extra));
            PlanProps {
                cost,
                rows: 100.0,
                pages: 1.0,
                format: if op.0 == 2 {
                    OutputFormat(1)
                } else {
                    OutputFormat(0)
                },
            }
        }
        fn scan_op_name(&self, _op: ScanOpId) -> String {
            "scan".into()
        }
        fn join_op_name(&self, _op: JoinOpId) -> String {
            "join".into()
        }
        fn num_formats(&self) -> usize {
            2
        }
    }

    /// Builds join plans over the same two tables with each operator so we
    /// get plans with controlled formats and genuinely different costs:
    /// `plans[0]` (3,4), `plans[1]` (4,3) — incomparable, format 0;
    /// `plans[2]` (3.5,3.5), format 1; `plans[3]` (5,6), format 0,
    /// strictly dominated by `plans[0]`.
    fn sample_plans() -> (ManualModel, Vec<PlanRef>) {
        let m = ManualModel::new();
        let s0 = Plan::scan(&m, TableId::new(0), ScanOpId(0));
        let s1 = Plan::scan(&m, TableId::new(1), ScanOpId(0));
        let mut plans = Vec::new();
        for op in 0..3u16 {
            plans.push(Plan::join(&m, s0.clone(), s1.clone(), JoinOpId(op)));
        }
        // A strictly worse variant of plan 0 (same format, higher cost):
        // built from the strictly more expensive scans.
        let e0 = Plan::scan(&m, TableId::new(0), ScanOpId(1));
        let e1 = Plan::scan(&m, TableId::new(1), ScanOpId(1));
        plans.push(Plan::join(&m, e0, e1, JoinOpId(0)));
        (m, plans)
    }

    #[test]
    fn climb_prune_discards_strictly_dominated() {
        let (_, plans) = sample_plans();
        let good = plans[0].clone();
        let bad = plans[3].clone();
        assert!(better(&good, &bad), "fixture: plan 0 must dominate plan 3");

        let mut set = ParetoSet::new();
        assert!(set.insert_climb(good.clone(), PrunePolicy::OnePerFormat));
        assert!(!set.insert_climb(bad.clone(), PrunePolicy::OnePerFormat));
        assert_eq!(set.len(), 1);

        // Inserting in the reverse order replaces the dominated plan.
        let mut set = ParetoSet::new();
        assert!(set.insert_climb(bad, PrunePolicy::OnePerFormat));
        assert!(set.insert_climb(good.clone(), PrunePolicy::OnePerFormat));
        assert_eq!(set.len(), 1);
        assert!(std::sync::Arc::ptr_eq(&set.plans()[0], &good));
    }

    #[test]
    fn climb_prune_keeps_one_plan_per_format() {
        let (_, plans) = sample_plans();
        // plans[0] and plans[1] are format 0 and incomparable; plans[2] is format 1.
        let mut set = ParetoSet::new();
        assert!(set.insert_climb(plans[0].clone(), PrunePolicy::OnePerFormat));
        assert!(!set.insert_climb(plans[1].clone(), PrunePolicy::OnePerFormat));
        assert!(set.insert_climb(plans[2].clone(), PrunePolicy::OnePerFormat));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn literal_prune_keeps_incomparable_same_format_plans() {
        let (_, plans) = sample_plans();
        let mut set = ParetoSet::new();
        assert!(set.insert_climb(plans[0].clone(), PrunePolicy::KeepIncomparable));
        assert!(set.insert_climb(plans[1].clone(), PrunePolicy::KeepIncomparable));
        assert_eq!(set.len(), 2);
        // Exact duplicates are rejected.
        assert!(!set.insert_climb(plans[0].clone(), PrunePolicy::KeepIncomparable));
        assert!(set.check_invariant());
    }

    #[test]
    fn approx_prune_rejects_alpha_covered_plans() {
        let (_, plans) = sample_plans();
        let good = plans[0].clone();
        let bad = plans[3].clone();
        let alpha_needed = bad
            .cost()
            .as_slice()
            .iter()
            .zip(good.cost().as_slice())
            .map(|(b, g)| b / g)
            .fold(f64::INFINITY, f64::min);
        // With a huge alpha, the worse plan is "covered" and rejected.
        let mut set = ParetoSet::new();
        assert!(set.insert_approx(good.clone(), 1e9));
        assert!(!set.insert_approx(bad.clone(), 1e9));
        // With alpha = 1 it is still rejected (strictly dominated)...
        let mut set = ParetoSet::new();
        assert!(set.insert_approx(good.clone(), 1.0));
        assert!(!set.insert_approx(bad.clone(), 1.0));
        let _ = alpha_needed;
    }

    #[test]
    fn approx_prune_keeps_distinct_tradeoffs_at_low_alpha() {
        let (_, plans) = sample_plans();
        let mut set = ParetoSet::new();
        assert!(set.insert_approx(plans[0].clone(), 1.0));
        assert!(set.insert_approx(plans[1].clone(), 1.0));
        assert_eq!(set.len(), 2, "incomparable plans both kept at alpha=1");
    }

    #[test]
    fn approx_prune_insertion_removes_weakly_dominated() {
        let (_, plans) = sample_plans();
        let good = plans[0].clone();
        let bad = plans[3].clone();
        let mut set = ParetoSet::new();
        // Insert the worse plan first with alpha=1, then the better one:
        // the worse plan must be evicted.
        assert!(set.insert_approx(bad, 1.0));
        assert!(set.insert_approx(good.clone(), 1.0));
        assert_eq!(set.len(), 1);
        assert!(std::sync::Arc::ptr_eq(&set.plans()[0], &good));
    }

    #[test]
    fn cost_frontier_ignores_format() {
        let (_, plans) = sample_plans();
        let mut set = ParetoSet::new();
        for p in &plans {
            set.insert_cost_frontier(p.clone());
        }
        // plans[3] is dominated by plans[0]; the rest are incomparable.
        assert_eq!(set.len(), 3);
        // No member dominates another.
        for a in set.iter() {
            for b in set.iter() {
                if !std::sync::Arc::ptr_eq(a, b) {
                    assert!(!a.cost().strictly_dominates(b.cost()));
                }
            }
        }
    }

    #[test]
    fn from_iterator_builds_cost_frontier() {
        let (_, plans) = sample_plans();
        let set: ParetoSet = plans.into_iter().collect();
        assert_eq!(set.len(), 3);
        assert!(set.check_invariant());
    }

    #[test]
    fn merge_preserves_union_semantics_and_defers_adoption() {
        let (_, plans) = sample_plans();
        // Set A holds the two incomparable format-0 plans; set B holds the
        // dominated variant plus the format-1 plan.
        let mut a: ParetoSet = ParetoSet::new();
        assert!(a.insert_approx(plans[0].clone(), 1.0));
        assert!(a.insert_approx(plans[1].clone(), 1.0));
        let mut b: ParetoSet = ParetoSet::new();
        assert!(b.insert_approx(plans[3].clone(), 1.0));
        assert!(b.insert_approx(plans[2].clone(), 1.0));
        let mut adoptions = 0;
        let inserted = a.merge_approx_with(&b, 1.0, |p| {
            adoptions += 1;
            p.clone()
        });
        // plans[3] is dominated by plans[0] → rejected without adoption;
        // plans[2] (format 1) is admitted.
        assert_eq!(inserted, 1);
        assert_eq!(adoptions, 1, "rejected members must not be adopted");
        assert_eq!(a.len(), 3);
        assert!(a.check_invariant());
        // Merging the same set again changes nothing (idempotent union).
        assert_eq!(a.merge_approx_with(&b, 1.0, |p| p.clone()), 0);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn merge_order_matches_sequential_insertion() {
        // Merging B into A must make exactly the decisions of inserting B's
        // members one by one in storage order — the property the parallel
        // optimizer's deterministic reduction relies on.
        let streams: [&[(&[f64], u8)]; 2] = [
            &[(&[4.0, 4.0], 0), (&[2.0, 6.0], 0), (&[6.0, 2.0], 1)],
            &[(&[3.0, 3.0], 0), (&[2.0, 6.0], 1), (&[9.0, 1.0], 0)],
        ];
        let mut sets: Vec<ParetoSet> = Vec::new();
        for stream in streams {
            let mut s = ParetoSet::new();
            for (cost, format) in stream {
                s.insert_approx(synthetic_plan(cost, *format), 1.0);
            }
            sets.push(s);
        }
        let mut merged = ParetoSet::new();
        let mut sequential = ParetoSet::new();
        for s in &sets {
            merged.merge_approx_with(s, 1.0, |p| p.clone());
            for p in s.iter() {
                sequential.insert_approx(p.clone(), 1.0);
            }
        }
        let render = |s: &ParetoSet| -> Vec<(Vec<f64>, u8)> {
            s.iter()
                .map(|p| (p.cost().as_slice().to_vec(), p.format().0))
                .collect()
        };
        assert_eq!(render(&merged), render(&sequential));
    }

    #[test]
    fn helpers_cover_empty_and_clear() {
        let mut set = ParetoSet::new();
        assert!(set.is_empty());
        let (_, plans) = sample_plans();
        set.insert_cost_frontier(plans[0].clone());
        assert!(!set.is_empty());
        set.clear();
        assert!(set.is_empty());
        assert!(set.check_invariant());
        assert_eq!(set.into_plans().len(), 0);
    }

    #[test]
    fn deferred_materialization_skips_rejected_candidates() {
        let (_, plans) = sample_plans();
        let good = plans[0].clone();
        let bad = plans[3].clone();
        let mut set = ParetoSet::new();
        assert!(set.insert_climb(good, PrunePolicy::OnePerFormat));
        // The rejected candidate's closure must never run.
        let bad_cost = *bad.cost();
        let bad_format = bad.format();
        let mut made = false;
        assert!(
            !set.insert_climb_with(&bad_cost, bad_format, PrunePolicy::OnePerFormat, || {
                made = true;
                bad
            })
        );
        assert!(!made, "rejected candidate was materialized");

        let mut set = ParetoSet::new();
        assert!(set.insert_approx(plans[0].clone(), 1e9));
        let mut made = false;
        assert!(!set.insert_approx_with(&bad_cost, bad_format, 1e9, || {
            made = true;
            plans[3].clone()
        }));
        assert!(!made, "rejected approx candidate was materialized");
    }

    #[test]
    fn screen_counters_tally_probes_rejections_and_evictions() {
        let (_, plans) = sample_plans();
        let good = plans[0].clone();
        let bad = plans[3].clone();

        // OnePerFormat: admit, then reject a dominated candidate.
        let mut set = ParetoSet::new();
        assert!(set.insert_climb(good.clone(), PrunePolicy::OnePerFormat));
        assert!(!set.insert_climb(bad.clone(), PrunePolicy::OnePerFormat));
        let c = set.screen_counters();
        assert_eq!(c.probes, 2);
        assert_eq!(c.admitted, 1);
        assert_eq!(c.rejected, 1);
        assert_eq!(c.dominance_tests, 1);

        // Eviction: dominated incumbent replaced under the literal policy.
        let mut set = ParetoSet::new();
        assert!(set.insert_climb(bad, PrunePolicy::KeepIncomparable));
        assert!(set.insert_climb(good, PrunePolicy::KeepIncomparable));
        let c = set.screen_counters();
        assert_eq!(c.probes, 2);
        assert_eq!(c.admitted, 2);
        assert_eq!(c.evicted, 1);

        // take_screen_counters drains; absorb sums.
        let mut total = ScreenCounters::default();
        total.absorb(&set.take_screen_counters());
        assert_eq!(total.probes, 2);
        assert_eq!(set.screen_counters(), ScreenCounters::default());

        // The agg-key pre-filter screens members whose key already rules
        // dominance out: a cheap member cannot be dominated by an
        // expensive candidate, so the second probe skips it.
        let mut set = ParetoSet::new();
        assert!(set.insert_approx(synthetic_plan(&[1.0, 1.0, 1.0], 0), 1.0));
        assert!(set.insert_approx(synthetic_plan(&[0.5, 4.0, 1.0], 0), 1.0));
        let c = set.screen_counters();
        assert!(c.agg_key_skips >= 1, "{c:?}");
    }

    /// Fabricates a plan with arbitrary cost and format through the
    /// props-based constructor (the table/operator are irrelevant to
    /// `ParetoSet`, which only reads cost and format).
    fn synthetic_plan(cost: &[f64], format: u8) -> PlanRef {
        Plan::scan_from_props(
            TableId::new(0),
            ScanOpId(0),
            PlanProps {
                cost: CostVector::new(cost),
                rows: 1.0,
                pages: 1.0,
                format: OutputFormat(format),
            },
        )
    }

    #[cfg(any(test, feature = "diff-testing"))]
    #[test]
    fn bucketed_matches_linear_on_handpicked_eviction_chain() {
        // A chain designed to hit rejection, replacement, and multi-member
        // eviction in both implementations.
        let stream: Vec<(Vec<f64>, u8)> = vec![
            (vec![4.0, 4.0, 4.0], 0),
            (vec![5.0, 3.0, 5.0], 0),
            (vec![3.0, 5.0, 5.0], 0),
            (vec![6.0, 6.0, 6.0], 1),
            (vec![2.0, 2.0, 2.0], 0), // dominates all three format-0 members
            (vec![2.0, 2.0, 2.0], 0), // duplicate
            (vec![1.0, 9.0, 1.0], 1),
        ];
        for alpha in [1.0, 1.5, 10.0] {
            let mut bucketed = ParetoSet::new();
            let mut linear = LinearParetoSet::new();
            for (cost, format) in &stream {
                let p = synthetic_plan(cost, *format);
                assert_eq!(
                    bucketed.insert_approx(p.clone(), alpha),
                    linear.insert_approx(p, alpha),
                    "decision diverged at alpha={alpha}"
                );
            }
            assert_eq!(bucketed.len(), linear.len());
            assert!(bucketed.check_invariant());
        }
    }

    #[cfg(any(test, feature = "diff-testing"))]
    mod differential {
        //! Differential proptests (compiled under the `diff-testing`
        //! feature): (a) both prune policies preserve the Pareto-set
        //! invariant and (b) the bucketed implementation makes exactly the
        //! decisions — and stores exactly the survivors, in the same order —
        //! as the linear-scan reference.

        use super::*;
        use proptest::prelude::*;

        /// Candidate streams: small integer-ish costs maximize dominance /
        /// equality collisions, few formats maximize bucket contention.
        fn arb_stream() -> impl Strategy<Value = Vec<(Vec<f64>, u8)>> {
            proptest::collection::vec(
                (
                    proptest::collection::vec((0..8u8).prop_map(f64::from), 3),
                    0..3u8,
                ),
                1..40,
            )
        }

        fn survivors(plans: &[PlanRef]) -> Vec<(Vec<f64>, u8)> {
            plans
                .iter()
                .map(|p| (p.cost().as_slice().to_vec(), p.format().0))
                .collect()
        }

        proptest! {
            /// Both climb policies preserve the invariant (no member
            /// strictly dominates a same-format member), and bucketed
            /// pruning returns the same surviving set as the linear scan.
            #[test]
            fn climb_policies_match_linear_and_keep_invariant(stream in arb_stream()) {
                for policy in [PrunePolicy::OnePerFormat, PrunePolicy::KeepIncomparable] {
                    let mut bucketed = ParetoSet::new();
                    let mut linear = LinearParetoSet::new();
                    for (cost, format) in &stream {
                        let p = synthetic_plan(cost, *format);
                        let kept_b = bucketed.insert_climb(p.clone(), policy);
                        let kept_l = linear.insert_climb(p, policy);
                        prop_assert_eq!(kept_b, kept_l, "decision diverged under {:?}", policy);
                    }
                    prop_assert!(bucketed.check_invariant());
                    prop_assert_eq!(
                        survivors(bucketed.plans()),
                        survivors(linear.plans()),
                        "survivors diverged under {:?}", policy
                    );
                }
            }

            /// Approximate pruning: same decisions and survivors for a range
            /// of α, and the invariant holds.
            #[test]
            fn approx_prune_matches_linear_and_keeps_invariant(
                stream in arb_stream(),
                alpha in prop_oneof![Just(1.0f64), 1.0f64..4.0, Just(1e12f64)],
            ) {
                let mut bucketed = ParetoSet::new();
                let mut linear = LinearParetoSet::new();
                for (cost, format) in &stream {
                    let p = synthetic_plan(cost, *format);
                    let kept_b = bucketed.insert_approx(p.clone(), alpha);
                    let kept_l = linear.insert_approx(p, alpha);
                    prop_assert_eq!(kept_b, kept_l, "decision diverged at alpha={}", alpha);
                }
                prop_assert!(bucketed.check_invariant());
                prop_assert_eq!(survivors(bucketed.plans()), survivors(linear.plans()));
            }

            /// Format-agnostic cost-frontier insertion matches as well.
            #[test]
            fn cost_frontier_matches_linear(stream in arb_stream()) {
                let mut bucketed = ParetoSet::new();
                let mut linear = LinearParetoSet::new();
                for (cost, format) in &stream {
                    let p = synthetic_plan(cost, *format);
                    prop_assert_eq!(
                        bucketed.insert_cost_frontier(p.clone()),
                        linear.insert_cost_frontier(p)
                    );
                }
                prop_assert!(bucketed.check_invariant());
                prop_assert_eq!(survivors(bucketed.plans()), survivors(linear.plans()));
            }
        }
    }
}
