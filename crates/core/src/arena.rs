//! Hash-consed, append-only plan arena: the optimizer-internal plan
//! representation.
//!
//! The RMQ main loop spends its whole budget generating, mutating and
//! pruning plan trees, so plan representation is the hot allocation path
//! under every climbing step. [`PlanArena`] replaces per-node `Arc<Plan>`
//! allocation with **interning**: every structurally distinct node —
//! `Scan(table, op)` or `Join(outer, inner, op)` over already-interned
//! children — is stored exactly once in a contiguous `Vec<PlanNode>` and
//! addressed by a dense [`PlanId`] (`u32`). Consequences:
//!
//! * **clones are `Copy`** — passing a plan around is copying an integer;
//! * **structural equality is integer equality** — two plans built in the
//!   same arena are structurally identical iff their `PlanId`s are equal
//!   (hash-consing canonicalizes bottom-up), so cache keys and dedup checks
//!   never walk trees;
//! * **traversal is index-chasing** over one contiguous allocation instead
//!   of pointer-chasing individually allocated `Arc`s;
//! * **re-deriving a subplan is free** — climbing steps and the frontier
//!   approximation rediscover the same subplans constantly; an intern hit
//!   costs one hash probe and allocates nothing.
//!
//! # Interning rules
//!
//! A node's identity is its *structure*: `(table, op)` for scans,
//! `(outer_id, inner_id, op)` for joins. Derived properties (cost vector,
//! cardinality, pages, format) are **not** part of the key — they are a
//! function of the structure under the session's cost model, which is why
//! an arena must only ever be used with one model (debug builds assert that
//! an intern hit's cached properties match the candidate's).
//!
//! # Lifetime & eviction contract
//!
//! The arena is **append-only**: a `PlanId` stays valid for the lifetime of
//! its arena, and ids are meaningless across arenas. The intended usage is
//! *per-session* arenas (one per optimizer instance, `Send` but not shared),
//! dropped wholesale with their session — eviction is free because nothing
//! outlives the optimizer. State that must survive a session (result plans,
//! the service's cross-query cache) crosses the boundary through
//! [`PlanArena::export`]/[`PlanArena::import`] (the legacy `Arc<Plan>`
//! conversion path) or [`PlanArena::adopt`] (direct arena-to-arena
//! re-interning, used by the service cache's compaction).

use std::cell::RefCell;
use std::fmt::Write as _;

use crate::cost::CostVector;
use crate::fxhash::FxHashMap;
use crate::model::{CostModel, JoinOpId, OutputFormat, PlanProps, PlanView, ScanOpId};
use crate::plan::{Plan, PlanError, PlanKind, PlanRef};
use crate::tables::{TableId, TableSet};

/// Handle to an interned plan node: a dense index into its [`PlanArena`].
///
/// `PlanId`s are `Copy`, 4 bytes, and totally ordered by insertion time
/// (an id never references a larger id, so iterating `0..len` is a valid
/// bottom-up traversal of every plan in the arena). Ids are only meaningful
/// relative to the arena that issued them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PlanId(u32);

impl PlanId {
    /// The dense index of this node within its arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The structural variant of an interned node: leaf scan or inner join with
/// child [`PlanId`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanNodeKind {
    /// `ScanPlan(table, op)` — scans one base table.
    Scan {
        /// The scanned base table.
        table: TableId,
        /// The scan operator implementation.
        op: ScanOpId,
    },
    /// `JoinPlan(outer, inner, op)` — joins two interned sub-plans.
    Join {
        /// The outer (left) input plan.
        outer: PlanId,
        /// The inner (right) input plan.
        inner: PlanId,
        /// The join operator implementation.
        op: JoinOpId,
    },
}

/// An interned plan node: structure plus the derived properties cached at
/// interning time (the arena analogue of [`Plan`]).
#[derive(Clone, Copy, Debug)]
pub struct PlanNode {
    kind: PlanNodeKind,
    rel: TableSet,
    cost: CostVector,
    rows: f64,
    pages: f64,
    format: OutputFormat,
}

impl PlanNode {
    /// The structural variant.
    #[inline]
    pub fn kind(&self) -> PlanNodeKind {
        self.kind
    }

    /// The set of tables joined by the node (`p.rel`).
    #[inline]
    pub fn rel(&self) -> TableSet {
        self.rel
    }

    /// The node's cost vector (`p.cost`).
    #[inline]
    pub fn cost(&self) -> &CostVector {
        &self.cost
    }

    /// Estimated output cardinality in rows.
    #[inline]
    pub fn rows(&self) -> f64 {
        self.rows
    }

    /// Estimated output size in pages.
    #[inline]
    pub fn pages(&self) -> f64 {
        self.pages
    }

    /// The output data format.
    #[inline]
    pub fn format(&self) -> OutputFormat {
        self.format
    }

    /// `p.isJoin`: true iff this is a join node.
    #[inline]
    pub fn is_join(&self) -> bool {
        matches!(self.kind, PlanNodeKind::Join { .. })
    }
}

/// Interning statistics (reported by the perf-baseline harness).
#[derive(Clone, Copy, Debug, Default)]
pub struct ArenaStats {
    /// Interned (distinct) nodes currently stored — the arena occupancy.
    pub nodes: usize,
    /// Intern requests answered by an existing node (no allocation).
    pub dedup_hits: u64,
    /// Intern requests that appended a new node.
    pub misses: u64,
}

impl ArenaStats {
    /// Fraction of intern requests deduplicated against an existing node.
    pub fn dedup_rate(&self) -> f64 {
        let total = self.dedup_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / total as f64
        }
    }
}

/// The hash-consed plan arena (see the module docs for representation,
/// interning rules and the lifetime/eviction contract).
#[derive(Debug, Default)]
pub struct PlanArena {
    nodes: Vec<PlanNode>,
    intern: FxHashMap<PlanNodeKind, PlanId>,
    dedup_hits: u64,
    /// Lifetime count of interned nodes (monotone across [`Self::clear`]).
    interned_total: u64,
    /// Memoized `Arc<Plan>` exports: nodes are immutable, so an export stays
    /// valid forever and repeated frontier snapshots cost one hash probe per
    /// plan instead of rebuilding the tree. `RefCell` keeps [`Self::export`]
    /// callable through `&self` (anytime `frontier()` accessors); the arena
    /// stays `Send` for per-session ownership.
    export_memo: RefCell<FxHashMap<PlanId, PlanRef>>,
}

impl PlanArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PlanArena::default()
    }

    /// Number of interned (distinct) nodes — the arena occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interning statistics snapshot.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            nodes: self.nodes.len(),
            dedup_hits: self.dedup_hits,
            misses: self.interned_total,
        }
    }

    /// Drops every node and invalidates every [`PlanId`] issued so far,
    /// keeping the allocated capacity (and the lifetime dedup counters).
    ///
    /// This is the **transient arena** pattern: scratch plan spaces that are
    /// rebuilt from scratch at a natural boundary — e.g. the RMQ main loop
    /// clears its climb arena every iteration, so the intern map stays small
    /// and cache-resident while the steady state allocates nothing. Plans
    /// that must outlive the clear are moved out first via [`Self::adopt`]
    /// (or [`Self::export`]).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.intern.clear();
        self.export_memo.get_mut().clear();
    }

    /// The interned node behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was issued by a different arena (index out of range;
    /// a foreign id within range silently aliases — never mix arenas).
    #[inline]
    pub fn node(&self, id: PlanId) -> &PlanNode {
        &self.nodes[id.index()]
    }

    /// The node's properties as the representation-agnostic [`PlanView`]
    /// consumed by [`CostModel`] implementations.
    #[inline]
    pub fn view(&self, id: PlanId) -> PlanView {
        let n = &self.nodes[id.index()];
        PlanView {
            rel: n.rel,
            cost: n.cost,
            rows: n.rows,
            pages: n.pages,
            format: n.format,
        }
    }

    /// Interns `kind` with the given derived properties, returning the
    /// canonical id. On a hit the existing id is returned and nothing is
    /// allocated; debug builds assert the cached properties agree with the
    /// candidate's (they must, for a fixed cost model).
    fn intern(&mut self, kind: PlanNodeKind, rel: TableSet, props: PlanProps) -> PlanId {
        if let Some(&id) = self.intern.get(&kind) {
            self.dedup_hits += 1;
            debug_assert_eq!(
                self.nodes[id.index()].cost.as_slice(),
                props.cost.as_slice(),
                "intern hit disagrees on cost: one arena, one cost model"
            );
            return id;
        }
        let id = PlanId(u32::try_from(self.nodes.len()).expect("arena full: > u32::MAX nodes"));
        self.interned_total += 1;
        self.nodes.push(PlanNode {
            kind,
            rel,
            cost: props.cost,
            rows: props.rows,
            pages: props.pages,
            format: props.format,
        });
        self.intern.insert(kind, id);
        id
    }

    /// The canonical id of the scan `(table, op)`, if already interned.
    #[inline]
    pub fn find_scan(&self, table: TableId, op: ScanOpId) -> Option<PlanId> {
        self.intern.get(&PlanNodeKind::Scan { table, op }).copied()
    }

    /// The canonical id of the join `(outer, inner, op)`, if already
    /// interned. Because children are canonical, this single hash probe
    /// answers "has this exact plan been built before?" — the key to
    /// **memoized costing**: a hit's cached properties are exactly what the
    /// cost model would recompute, so hot paths probe here first and skip
    /// the model on revisited candidates.
    #[inline]
    pub fn find_join(&self, outer: PlanId, inner: PlanId, op: JoinOpId) -> Option<PlanId> {
        self.intern
            .get(&PlanNodeKind::Join { outer, inner, op })
            .copied()
    }

    /// The cached derived properties of `id` (cost, rows, pages, format).
    #[inline]
    pub fn props(&self, id: PlanId) -> PlanProps {
        let n = &self.nodes[id.index()];
        PlanProps {
            cost: n.cost,
            rows: n.rows,
            pages: n.pages,
            format: n.format,
        }
    }

    /// Interns a scan of `table` with operator `op`, with properties
    /// supplied by `model` (the arena analogue of [`Plan::scan`]). An
    /// already-interned scan skips the model entirely.
    pub fn scan<M: CostModel + ?Sized>(
        &mut self,
        model: &M,
        table: TableId,
        op: ScanOpId,
    ) -> PlanId {
        if let Some(id) = self.find_scan(table, op) {
            self.dedup_hits += 1;
            return id;
        }
        self.scan_from_props(table, op, model.scan_props(table, op))
    }

    /// Interns a scan from properties already computed by a cost model (the
    /// arena analogue of [`Plan::scan_from_props`]; used by the pruning hot
    /// paths, which cost candidates before materializing them).
    pub fn scan_from_props(&mut self, table: TableId, op: ScanOpId, props: PlanProps) -> PlanId {
        debug_assert!(props.cost.is_valid(), "scan produced invalid cost");
        self.intern(
            PlanNodeKind::Scan { table, op },
            TableSet::singleton(table),
            props,
        )
    }

    /// Interns a join of `outer` and `inner` with operator `op`, costing the
    /// node through `model` (the arena analogue of [`Plan::join`]). An
    /// already-interned join skips the model entirely — its cached
    /// properties are what the deterministic model would recompute.
    ///
    /// # Panics
    /// Panics in debug builds if the operand table sets overlap.
    pub fn join<M: CostModel + ?Sized>(
        &mut self,
        model: &M,
        outer: PlanId,
        inner: PlanId,
        op: JoinOpId,
    ) -> PlanId {
        if let Some(id) = self.find_join(outer, inner, op) {
            self.dedup_hits += 1;
            return id;
        }
        let props = model.join_props(&self.view(outer), &self.view(inner), op);
        self.join_from_props(outer, inner, op, props)
    }

    /// Interns a join from properties already computed by a cost model (the
    /// arena analogue of [`Plan::join_from_props`]).
    ///
    /// # Panics
    /// Panics in debug builds if the operand table sets overlap.
    pub fn join_from_props(
        &mut self,
        outer: PlanId,
        inner: PlanId,
        op: JoinOpId,
        props: PlanProps,
    ) -> PlanId {
        let (o_rel, i_rel) = (self.nodes[outer.index()].rel, self.nodes[inner.index()].rel);
        debug_assert!(
            o_rel.is_disjoint(i_rel),
            "join operands overlap: {o_rel} vs {i_rel}"
        );
        debug_assert!(props.cost.is_valid(), "join produced invalid cost");
        self.intern(
            PlanNodeKind::Join { outer, inner, op },
            o_rel.union(i_rel),
            props,
        )
    }

    /// Total number of nodes (scans + joins) in the *tree* rooted at `id`
    /// (shared subtrees are counted once per occurrence, matching
    /// [`Plan::node_count`]).
    pub fn node_count(&self, id: PlanId) -> usize {
        match self.nodes[id.index()].kind {
            PlanNodeKind::Scan { .. } => 1,
            PlanNodeKind::Join { outer, inner, .. } => {
                1 + self.node_count(outer) + self.node_count(inner)
            }
        }
    }

    /// Height of the plan tree rooted at `id` (a single scan has depth 1).
    pub fn depth(&self, id: PlanId) -> usize {
        match self.nodes[id.index()].kind {
            PlanNodeKind::Scan { .. } => 1,
            PlanNodeKind::Join { outer, inner, .. } => 1 + self.depth(outer).max(self.depth(inner)),
        }
    }

    /// Whether the plan rooted at `id` is left-deep (every join's inner
    /// operand is a scan).
    pub fn is_left_deep(&self, id: PlanId) -> bool {
        match self.nodes[id.index()].kind {
            PlanNodeKind::Scan { .. } => true,
            PlanNodeKind::Join { outer, inner, .. } => {
                !self.nodes[inner.index()].is_join() && self.is_left_deep(outer)
            }
        }
    }

    /// Checks structural validity of the plan rooted at `id` against
    /// `query`, mirroring [`Plan::validate`].
    pub fn validate(&self, id: PlanId, query: TableSet) -> Result<(), PlanError> {
        // The legacy validator implements the full rule set; export shares
        // structure, so validation cost matches an in-arena traversal.
        self.export(id).validate(query)
    }

    /// Renders the plan rooted at `id` as a compact algebra string (same
    /// format as [`Plan::display`]).
    pub fn display<M: CostModel + ?Sized>(&self, id: PlanId, model: &M) -> String {
        let mut out = String::new();
        self.display_rec(id, model, &mut out);
        out
    }

    fn display_rec<M: CostModel + ?Sized>(&self, id: PlanId, model: &M, out: &mut String) {
        match self.nodes[id.index()].kind {
            PlanNodeKind::Scan { table, op } => {
                let _ = write!(out, "{}[{}]", table, model.scan_op_name(op));
            }
            PlanNodeKind::Join { outer, inner, op } => {
                out.push('(');
                self.display_rec(outer, model, out);
                let _ = write!(out, " ⋈[{}] ", model.join_op_name(op));
                self.display_rec(inner, model, out);
                out.push(')');
            }
        }
    }

    /// Exports the plan rooted at `id` as a shared [`PlanRef`] tree — the
    /// legacy conversion path that keeps `exec`, the figure harness, and
    /// every other `Arc<Plan>` consumer working. Exports are memoized per
    /// node, so shared subtrees are built once and repeated anytime-frontier
    /// snapshots cost one hash probe per plan.
    pub fn export(&self, id: PlanId) -> PlanRef {
        if let Some(hit) = self.export_memo.borrow().get(&id) {
            return hit.clone();
        }
        let node = &self.nodes[id.index()];
        let props = PlanProps {
            cost: node.cost,
            rows: node.rows,
            pages: node.pages,
            format: node.format,
        };
        let plan = match node.kind {
            PlanNodeKind::Scan { table, op } => Plan::scan_from_props(table, op, props),
            PlanNodeKind::Join { outer, inner, op } => {
                Plan::join_from_props(self.export(outer), self.export(inner), op, props)
            }
        };
        self.export_memo.borrow_mut().insert(id, plan.clone());
        plan
    }

    /// Imports an `Arc<Plan>` tree, re-interning every node (the inverse of
    /// [`Self::export`]; warm starts and differential tests enter here).
    /// Shared or repeated subtrees collapse onto their canonical ids. The
    /// plan's cached properties are trusted — it must stem from the same
    /// cost model the arena is used with.
    pub fn import(&mut self, plan: &PlanRef) -> PlanId {
        let props = PlanProps {
            cost: *plan.cost(),
            rows: plan.rows(),
            pages: plan.pages(),
            format: plan.format(),
        };
        match plan.kind() {
            PlanKind::Scan { table, op } => self.scan_from_props(*table, *op, props),
            PlanKind::Join { outer, inner, op } => {
                let o = self.import(outer);
                let i = self.import(inner);
                self.join_from_props(o, i, *op, props)
            }
        }
    }

    /// Re-interns the plan rooted at `root` of `src` into `self`, returning
    /// the id in `self`. `memo` maps already-adopted `src` ids to their new
    /// ids and may be reused across roots of the same `src` (the service
    /// cache's compaction sweeps all live roots through one memo).
    pub fn adopt(
        &mut self,
        src: &PlanArena,
        root: PlanId,
        memo: &mut FxHashMap<PlanId, PlanId>,
    ) -> PlanId {
        if let Some(&hit) = memo.get(&root) {
            return hit;
        }
        let node = src.nodes[root.index()];
        let props = PlanProps {
            cost: node.cost,
            rows: node.rows,
            pages: node.pages,
            format: node.format,
        };
        let id = match node.kind {
            PlanNodeKind::Scan { table, op } => self.scan_from_props(table, op, props),
            PlanNodeKind::Join { outer, inner, op } => {
                let o = self.adopt(src, outer, memo);
                let i = self.adopt(src, inner, memo);
                self.join_from_props(o, i, op, props)
            }
        };
        memo.insert(root, id);
        id
    }

    /// [`Self::adopt`] over a batch of roots sharing one memo: appends the
    /// adopted id of every root to `out`, in order. Shared subtrees across
    /// the batch are re-interned once — the bulk entry point for merging a
    /// whole frontier from another arena (e.g. a parallel worker publishing
    /// its survivors into the shared session arena).
    pub fn adopt_many(
        &mut self,
        src: &PlanArena,
        roots: impl IntoIterator<Item = PlanId>,
        memo: &mut FxHashMap<PlanId, PlanId>,
        out: &mut Vec<PlanId>,
    ) {
        for root in roots {
            out.push(self.adopt(src, root, memo));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testing::StubModel;
    use crate::random_plan::{random_plan, random_plan_in};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interning_dedups_structurally_identical_nodes() {
        let m = StubModel::line(3, 2, 1);
        let mut arena = PlanArena::new();
        let t = TableId::new(0);
        let a = arena.scan(&m, t, ScanOpId(0));
        let b = arena.scan(&m, t, ScanOpId(0));
        assert_eq!(a, b, "identical scans must intern to one id");
        let c = arena.scan(&m, t, ScanOpId(1));
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.stats().dedup_hits, 1);
        assert!(arena.stats().dedup_rate() > 0.0);
    }

    #[test]
    fn join_interning_is_structural_and_bottom_up() {
        let m = StubModel::line(3, 2, 1);
        let mut arena = PlanArena::new();
        let s0 = arena.scan(&m, TableId::new(0), ScanOpId(0));
        let s1 = arena.scan(&m, TableId::new(1), ScanOpId(0));
        let j1 = arena.join(&m, s0, s1, JoinOpId(0));
        let j2 = arena.join(&m, s0, s1, JoinOpId(0));
        assert_eq!(j1, j2);
        // Different operator → different node.
        let j3 = arena.join(&m, s0, s1, JoinOpId(1));
        assert_ne!(j1, j3);
        // Commuted operands → different structure.
        let j4 = arena.join(&m, s1, s0, JoinOpId(0));
        assert_ne!(j1, j4);
        // Children precede parents: a valid bottom-up order is 0..len.
        let node = arena.node(j1);
        if let PlanNodeKind::Join { outer, inner, .. } = node.kind() {
            assert!(outer < j1 && inner < j1);
        } else {
            panic!("expected join");
        }
    }

    #[test]
    fn node_properties_match_arc_plans() {
        let m = StubModel::line(5, 2, 9);
        let q = TableSet::prefix(5);
        let mut arena = PlanArena::new();
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let id = random_plan_in(&mut arena, &m, q, &mut rng_a);
            let arc = random_plan(&m, q, &mut rng_b);
            assert_eq!(arena.node(id).cost().as_slice(), arc.cost().as_slice());
            assert_eq!(arena.node(id).rel(), arc.rel());
            assert_eq!(arena.node(id).format(), arc.format());
            assert_eq!(arena.node_count(id), arc.node_count());
            assert_eq!(arena.depth(id), arc.depth());
            assert_eq!(arena.display(id, &m), arc.display(&m));
        }
    }

    #[test]
    fn export_import_roundtrip_preserves_structure() {
        let m = StubModel::line(6, 2, 5);
        let q = TableSet::prefix(6);
        let mut arena = PlanArena::new();
        let mut rng = StdRng::seed_from_u64(7);
        let id = random_plan_in(&mut arena, &m, q, &mut rng);
        let exported = arena.export(id);
        assert!(exported.validate(q).is_ok());
        assert_eq!(exported.cost().as_slice(), arena.node(id).cost().as_slice());
        assert_eq!(arena.display(id, &m), exported.display(&m));
        // Re-importing lands on the same canonical id (hash-consing).
        let back = arena.import(&exported);
        assert_eq!(back, id);
        // Export is memoized: same Arc both times.
        assert!(std::sync::Arc::ptr_eq(&exported, &arena.export(id)));
    }

    #[test]
    fn adopt_reinterns_across_arenas() {
        let m = StubModel::line(4, 2, 3);
        let q = TableSet::prefix(4);
        let mut src = PlanArena::new();
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_plan_in(&mut src, &m, q, &mut rng);
        let b = random_plan_in(&mut src, &m, q, &mut rng);
        let mut dst = PlanArena::new();
        let mut memo = FxHashMap::default();
        let a2 = dst.adopt(&src, a, &mut memo);
        let b2 = dst.adopt(&src, b, &mut memo);
        assert_eq!(dst.display(a2, &m), src.display(a, &m));
        assert_eq!(dst.display(b2, &m), src.display(b, &m));
        // The destination holds only nodes reachable from the adopted roots.
        assert!(dst.len() <= src.len());
        assert!(dst.validate(a2, q).is_ok());
    }

    #[test]
    fn adopt_many_shares_the_memo_across_roots() {
        let m = StubModel::line(5, 2, 13);
        let q = TableSet::prefix(5);
        let mut src = PlanArena::new();
        let mut rng = StdRng::seed_from_u64(17);
        let roots: Vec<PlanId> = (0..8)
            .map(|_| random_plan_in(&mut src, &m, q, &mut rng))
            .collect();
        let mut dst = PlanArena::new();
        let mut memo = FxHashMap::default();
        let mut out = Vec::new();
        dst.adopt_many(&src, roots.iter().copied(), &mut memo, &mut out);
        assert_eq!(out.len(), roots.len());
        for (&orig, &adopted) in roots.iter().zip(&out) {
            assert_eq!(dst.display(adopted, &m), src.display(orig, &m));
        }
        // Shared subplans (scans at minimum) intern once in the target.
        assert!(dst.len() <= src.len());
        // A second batch through the same memo is pure hits for repeats.
        let before = dst.len();
        let mut out2 = Vec::new();
        dst.adopt_many(&src, roots.iter().copied(), &mut memo, &mut out2);
        assert_eq!(out, out2);
        assert_eq!(dst.len(), before, "memoized roots must not re-intern");
    }

    #[test]
    fn random_plans_dedup_shared_subplans() {
        // Many random plans over few tables share scans (and often low
        // joins): the arena must stay far smaller than the total node count.
        let m = StubModel::line(6, 2, 1);
        let q = TableSet::prefix(6);
        let mut arena = PlanArena::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut total_nodes = 0usize;
        for _ in 0..100 {
            let id = random_plan_in(&mut arena, &m, q, &mut rng);
            total_nodes += arena.node_count(id);
        }
        assert!(
            arena.len() < total_nodes / 2,
            "interning barely dedups: {} arena nodes vs {} tree nodes",
            arena.len(),
            total_nodes
        );
        assert!(arena.stats().dedup_rate() > 0.3);
    }

    #[test]
    fn left_deep_detection_matches_arc() {
        use crate::random_plan::{random_left_deep_plan, random_left_deep_plan_in};
        let m = StubModel::line(6, 2, 1);
        let q = TableSet::prefix(6);
        let mut arena = PlanArena::new();
        let id = random_left_deep_plan_in(&mut arena, &m, q, &mut StdRng::seed_from_u64(4));
        assert!(arena.is_left_deep(id));
        let arc = random_left_deep_plan(&m, q, &mut StdRng::seed_from_u64(4));
        assert_eq!(arena.display(id, &m), arc.display(&m));
    }
}
