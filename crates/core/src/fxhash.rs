//! A minimal FxHash-style hasher for hot hash maps.
//!
//! The partial-plan cache is keyed by [`crate::tables::TableSet`] (`u128`)
//! and is probed on every plan construction during frontier approximation.
//! The standard library's SipHash is collision-resistant but slow for short
//! integer keys; following common practice in database engines (and the Rust
//! performance guide), we use the Firefox `FxHasher` multiplication-based
//! mix. The implementation is ~40 lines, so we inline it rather than adding
//! a dependency outside the allowed crate set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash mixing function: rotate, xor, multiply.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{TableId, TableSet};

    #[test]
    fn deterministic_for_equal_keys() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u128(0xdead_beef_cafe);
        b.write_u128(0xdead_beef_cafe);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u128 {
            let mut h = FxHasher::default();
            h.write_u128(i);
            seen.insert(h.finish());
        }
        // No collisions among small consecutive keys.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn works_as_map_hasher_for_table_sets() {
        let mut m: FxHashMap<TableSet, usize> = FxHashMap::default();
        for i in 0..100 {
            m.insert(TableSet::prefix(i + 1), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&TableSet::singleton(TableId::new(0))], 0);
        assert_eq!(m[&TableSet::prefix(100)], 99);
    }

    #[test]
    fn byte_stream_handles_remainders() {
        // Writes that are not multiples of 8 bytes must still hash all data.
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello, moqo");
        b.write(b"hello, moqp");
        assert_ne!(a.finish(), b.finish());
    }
}
