//! The statistical model behind the paper's complexity analysis (§5).
//!
//! The analysis models the cost of a random plan per metric as independent
//! random variables and derives:
//!
//! * **Lemma 3** — a random plan dominates another with probability `(1/2)^l`;
//! * **Lemma 4** — `u(n, i) = (1 − (1/2)^{l·i})^n` is the probability that
//!   none of `n` neighbor plans dominates all `i` plans on the climbing path;
//! * **Theorem 1** — the expected number of plans visited until a local
//!   Pareto optimum is `Σ_i i · u(n,i) · Π_{j<i} (1 − u(n,j))`;
//! * **Theorem 2** — that expectation is `O(n)`;
//! * **Lemma 5** — a random plan is a local Pareto optimum with probability
//!   `O((1 − (1/2)^l)^n)`.
//!
//! This module evaluates the closed-form expressions and provides
//! Monte-Carlo simulators of the abstract model — both the independence
//! approximation used in the proofs and a "real vectors" variant that draws
//! actual cost vectors (no pairwise-independence assumption) — so the
//! analysis itself is reproducible and testable, and Figure 3 (left) can be
//! compared against the model's prediction.

use rand::Rng;

/// `u(n, i)` of Lemma 4: the probability that none of `n` random plans
/// dominates all of `i` plans, with `l` cost metrics.
pub fn u(n: usize, i: usize, l: usize) -> f64 {
    let p_dominate_all = 0.5f64.powi((l * i) as i32);
    (1.0 - p_dominate_all).powi(n as i32)
}

/// Lemma 3: probability that one random plan dominates another.
pub fn dominate_probability(l: usize) -> f64 {
    0.5f64.powi(l as i32)
}

/// Lemma 5: probability that a random plan with `n` neighbors is a local
/// Pareto optimum.
pub fn local_optimum_probability(n: usize, l: usize) -> f64 {
    (1.0 - dominate_probability(l)).powi(n as i32)
}

/// Theorem 1: expected number of plans visited by hill climbing until a
/// local Pareto optimum, `Σ_i i · u(n,i) · Π_{j<i}(1 − u(n,j))`.
///
/// The series is evaluated until the survival probability
/// `Π_{j≤i}(1 − u(n,j))` drops below `1e-12` (it decays geometrically once
/// `u` approaches 1).
pub fn expected_path_length(n: usize, l: usize) -> f64 {
    let mut expectation = 0.0;
    let mut survival = 1.0; // Π_{j<i} (1 - u(n, j))
    for i in 1..100_000usize {
        let stop_here = u(n, i, l);
        expectation += i as f64 * stop_here * survival;
        survival *= 1.0 - stop_here;
        if survival < 1e-12 {
            break;
        }
    }
    expectation
}

/// Samples a climbing path length from the abstract model's distribution:
/// starting from one visited plan, each additional step occurs with
/// probability `1 − u(n, i)` (some neighbor dominates all `i` plans so far).
pub fn sample_path_length<R: Rng + ?Sized>(n: usize, l: usize, rng: &mut R) -> usize {
    let mut i = 1usize;
    while rng.random::<f64>() < 1.0 - u(n, i, l) {
        i += 1;
        if i > 1_000_000 {
            break; // unreachable in practice; guards pathological inputs
        }
    }
    i
}

/// Simulates climbing over *actual* random cost vectors in `[0,1)^l`
/// without the pairwise-independence assumption of Lemma 4: at every step,
/// `n` neighbor vectors are drawn and the walk moves to the first neighbor
/// that strictly dominates the current vector. Returns the number of
/// vectors visited (including the start).
pub fn simulate_vector_path<R: Rng + ?Sized>(n: usize, l: usize, rng: &mut R) -> usize {
    assert!((1..=16).contains(&l));
    let mut current: Vec<f64> = (0..l).map(|_| rng.random()).collect();
    let mut visited = 1usize;
    'outer: loop {
        for _ in 0..n {
            let candidate: Vec<f64> = (0..l).map(|_| rng.random()).collect();
            let dominates =
                candidate.iter().zip(&current).all(|(c, x)| c <= x) && candidate != current;
            if dominates {
                current = candidate;
                visited += 1;
                if visited > 1_000_000 {
                    break 'outer;
                }
                continue 'outer;
            }
        }
        break;
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn u_matches_closed_form() {
        // u(1, 1) with l = 1: (1 - 1/2)^1 = 0.5.
        assert!((u(1, 1, 1) - 0.5).abs() < 1e-12);
        // u(2, 1) with l = 2: (1 - 1/4)^2 = 0.5625.
        assert!((u(2, 1, 2) - 0.5625).abs() < 1e-12);
        // u grows towards 1 in i (domination gets harder).
        assert!(u(10, 5, 2) > u(10, 1, 2));
    }

    #[test]
    fn dominance_probability_lemma3() {
        assert_eq!(dominate_probability(1), 0.5);
        assert_eq!(dominate_probability(2), 0.25);
        assert_eq!(dominate_probability(3), 0.125);
    }

    #[test]
    fn local_optimum_probability_decays_exponentially_in_n() {
        let l = 2;
        let p10 = local_optimum_probability(10, l);
        let p20 = local_optimum_probability(20, l);
        // Exponential decay: p20 ≈ p10².
        assert!((p20 - p10 * p10).abs() < 1e-12);
        assert!(p10 < 1.0 && p10 > 0.0);
    }

    #[test]
    fn expected_path_length_is_finite_and_reasonable() {
        for l in 1..=3usize {
            for n in [10usize, 25, 50, 100] {
                let e = expected_path_length(n, l);
                assert!(e.is_finite() && e >= 1.0, "E[path] = {e} for n={n}, l={l}");
                // Theorem 2: expected length is O(n); generously check <= 3n.
                assert!(
                    e <= 3.0 * n as f64,
                    "E[path]={e} exceeds bound for n={n}, l={l}"
                );
            }
        }
    }

    #[test]
    fn expected_path_length_grows_slowly() {
        // Fig. 3 (left) shows path lengths of ~4-6 for 10..100 tables with
        // l = 3; the model should be in the same small range.
        let e10 = expected_path_length(10, 3);
        let e100 = expected_path_length(100, 3);
        assert!((1.0..=12.0).contains(&e10), "e10 = {e10}");
        assert!(e100 >= e10, "path length must grow with n");
        assert!(e100 <= 20.0, "e100 = {e100} unreasonably large");
    }

    #[test]
    fn sampled_lengths_match_expectation() {
        let (n, l) = (25usize, 2usize);
        let analytic = expected_path_length(n, l);
        let mut rng = StdRng::seed_from_u64(99);
        let samples = 20_000;
        let mean: f64 = (0..samples)
            .map(|_| sample_path_length(n, l, &mut rng) as f64)
            .sum::<f64>()
            / samples as f64;
        let rel_err = (mean - analytic).abs() / analytic;
        assert!(
            rel_err < 0.05,
            "MC mean {mean} vs analytic {analytic} (rel err {rel_err:.3})"
        );
    }

    #[test]
    fn vector_simulation_is_in_the_same_ballpark() {
        // The independence assumption is only an approximation; the vector
        // walk should still land within a small constant factor.
        let (n, l) = (20usize, 2usize);
        let analytic = expected_path_length(n, l);
        let mut rng = StdRng::seed_from_u64(7);
        let samples = 3_000;
        let mean: f64 = (0..samples)
            .map(|_| simulate_vector_path(n, l, &mut rng) as f64)
            .sum::<f64>()
            / samples as f64;
        assert!(
            mean > analytic / 4.0 && mean < analytic * 4.0,
            "vector walk mean {mean} too far from analytic {analytic}"
        );
    }

    #[test]
    fn more_metrics_shorten_paths() {
        // Dominating neighbors get sparser as l grows (§4.2), so expected
        // paths shrink with more metrics.
        let e1 = expected_path_length(50, 1);
        let e3 = expected_path_length(50, 3);
        assert!(e3 < e1, "e3={e3} should be below e1={e1}");
    }
}
