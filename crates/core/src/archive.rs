//! The redesigned archive / admission API: per-metric approximation
//! factors, the pluggable [`Dominance`] relation, ε-Pareto box archives,
//! and the per-iteration [`EpsSchedule`] that generalizes the old scalar
//! `AlphaSchedule`.
//!
//! Historically [`crate::pareto::ParetoSet`] grew three insertion entry
//! points (`insert_climb_with` / `insert_approx_with` /
//! `insert_cost_frontier_with`), each hard-coding one pruning rule. This
//! module replaces the trio with a single data-driven admission contract:
//!
//! * [`EpsFactors`] — one approximation factor per cost metric
//!   (`α_k ≥ 1`; a scalar α is the uniform special case). The factors
//!   define both the α-dominance *bound* (`bound_of`) and the ε-Pareto
//!   *box* of a cost vector (`box_key`).
//! * [`Dominance`] — the relation seam: anything that can turn a
//!   candidate cost into a rejection bound. Exact dominance, scalar α,
//!   and per-metric ε are instances; restricted F-dominance (flexible
//!   skylines) slots in here without touching the archive kernels.
//! * [`AdmissionRule`] / [`Admission`] — the complete admission decision
//!   (rule + optional capacity), passed to
//!   [`ParetoSet::admit`](crate::pareto::ParetoSet::admit).
//! * [`EpsSchedule`] / [`ArchiveConfig`] — the per-iteration schedule of
//!   factors (folding in the old `AlphaSchedule` semantics, including the
//!   `≥ 1` clamp) plus the archive policy and capacity.
//!
//! # ε-Pareto archives
//!
//! With [`ArchivePolicy::EpsBox`], admission follows the ε-Pareto archive
//! of *Approximation Schemes for Many-Objective Query Optimization*
//! (Trummer & Koch 2014): each metric axis is partitioned into
//! multiplicative boxes of factor `α_k` (box index `⌊ln c_k / ln α_k⌋`),
//! and the archive keeps at most one occupant per non-dominated box. The
//! archive size is therefore bounded by the number of non-dominated boxes
//! — a function of the precision target, **not** of the true frontier
//! cardinality, which explodes at 6–10 metrics.
//!
//! With all factors at 1, boxes degenerate to exact cost values and the
//! ε-archive makes *exactly* the decisions of exact approximate pruning
//! (`α = 1`) — the differential property pinned by the proptests in
//! [`crate::pareto`].

use crate::cost::{CostVector, MAX_COST_DIM};

/// How climb pruning treats incomparable plans with the same output format.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PrunePolicy {
    /// Keep at most one plan per output format: a new incomparable plan is
    /// discarded in favour of the incumbent. Matches the assumption of the
    /// paper's Lemma 2 and is the production default.
    #[default]
    OnePerFormat,
    /// Keep all mutually non-dominated plans per output format — the literal
    /// reading of Algorithm 2's `Prune`.
    KeepIncomparable,
}

/// Per-metric approximation factors: `α_k ≥ 1` for each cost metric.
///
/// A scalar approximation factor is the uniform special case
/// ([`EpsFactors::uniform`]); per-metric factors let precision-critical
/// metrics (latency) stay tight while archive-exploding metrics (energy,
/// IO) are boxed coarsely.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpsFactors {
    values: [f64; MAX_COST_DIM],
}

impl EpsFactors {
    /// The same literal factor in every metric slot, **without** the `≥ 1`
    /// clamp — `const`-constructible for schedule literals. Use
    /// [`uniform`](Self::uniform) unless you need a `const` context;
    /// [`EpsSchedule::factors`] clamps every emitted component anyway.
    pub const fn splat(value: f64) -> Self {
        EpsFactors {
            values: [value; MAX_COST_DIM],
        }
    }

    /// The same factor in every metric slot, clamped to `≥ 1`.
    pub fn uniform(factor: f64) -> Self {
        EpsFactors::splat(factor).clamped()
    }

    /// Exact dominance: factor 1 in every metric.
    pub fn exact() -> Self {
        EpsFactors::splat(1.0)
    }

    /// Per-metric factors (clamped to `≥ 1`); metrics beyond the slice get
    /// factor 1 (exact).
    ///
    /// # Panics
    /// Panics if more than [`MAX_COST_DIM`] factors are supplied.
    pub fn per_metric(factors: &[f64]) -> Self {
        assert!(
            factors.len() <= MAX_COST_DIM,
            "{} factors exceed MAX_COST_DIM {}",
            factors.len(),
            MAX_COST_DIM
        );
        let mut values = [1.0; MAX_COST_DIM];
        for (slot, &f) in values.iter_mut().zip(factors) {
            *slot = f;
        }
        EpsFactors { values }.clamped()
    }

    /// Every component clamped to `≥ 1` (NaN becomes 1).
    #[inline]
    pub fn clamped(mut self) -> Self {
        for v in &mut self.values {
            // NaN compares false against everything, so it falls through
            // to the clamp as well.
            if (*v).partial_cmp(&1.0) != Some(std::cmp::Ordering::Greater) && *v != 1.0 {
                *v = 1.0;
            }
        }
        self
    }

    /// The factor of metric `k`.
    #[inline]
    pub fn get(&self, k: usize) -> f64 {
        self.values[k]
    }

    /// Whether every factor is exactly 1 (exact dominance).
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.values.iter().all(|&v| v == 1.0)
    }

    /// The largest per-metric factor — the scalar α this factor vector is
    /// at most as coarse as.
    #[inline]
    pub fn max(&self) -> f64 {
        self.values.iter().fold(1.0f64, |a, &b| a.max(b))
    }

    /// The α-scaled rejection bound of `cost`: component `k` is
    /// `α_k · c_k`, computed with exactly the floating-point operations of
    /// [`CostVector::approx_dominates`] — so `m ⪯ bound_of(c)` **is**
    /// per-metric α-dominance `m ⪯_ᾱ c`, and `bound_of(c).agg_key()`
    /// equals [`CostVector::scaled_agg_key`] for uniform factors (same
    /// products, same summation order).
    #[inline]
    pub fn bound_of(&self, cost: &CostVector) -> CostVector {
        let d = cost.dim();
        let mut v = [0.0; MAX_COST_DIM];
        for (k, slot) in v[..d].iter_mut().enumerate() {
            // Saturate at MAX so an infinite factor (legal: "everything is
            // covered on this metric") still yields a valid cost vector.
            *slot = (self.values[k] * cost[k]).min(f64::MAX);
        }
        CostVector::new(&v[..d])
    }

    /// The ε-Pareto box of `cost`: per metric, the index of the
    /// multiplicative box of factor `α_k` the component falls in
    /// (`⌊ln c_k / ln α_k⌋`). Metrics with factor 1 degenerate to exact
    /// boxing — the component's own bit pattern, which orders exactly like
    /// the value for non-negative floats — so an all-ones factor vector
    /// reproduces exact admission decisions.
    #[inline]
    pub fn box_key(&self, cost: &CostVector) -> BoxKey {
        let mut key = [0i64; MAX_COST_DIM];
        for (k, slot) in key[..cost.dim()].iter_mut().enumerate() {
            let f = self.values[k];
            // `+ 0.0` folds -0.0 into +0.0 so equal values share a box.
            let c = cost[k] + 0.0;
            *slot = if f <= 1.0 {
                // Non-negative IEEE floats order by their bit pattern.
                c.to_bits() as i64
            } else {
                // ln(0) = -∞ floors to -∞; the saturating cast pins it to
                // i64::MIN, a deterministic "leftmost box".
                (c.ln() / f.ln()).floor() as i64
            };
        }
        BoxKey(key)
    }
}

/// The ε-Pareto box of a cost vector: one box index per metric (unused
/// metric slots are 0, so whole-array comparisons are valid for any
/// dimension).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BoxKey([i64; MAX_COST_DIM]);

impl BoxKey {
    /// Weak box dominance: no box index exceeds the other's.
    #[inline]
    pub fn dominates(&self, other: &BoxKey) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

/// The dominance-relation seam: anything that can turn a candidate's cost
/// into a **rejection bound** — a member rejects the candidate iff the
/// member's cost weakly dominates the bound.
///
/// Exact dominance ([`Exact`]) and per-metric α-dominance ([`EpsFactors`])
/// are the built-in instances; restricted F-dominance over a constrained
/// family of scoring functions (flexible skylines, ROADMAP item on
/// preference-constrained frontiers) is the intended future instance —
/// it only needs a `bound_of`, not new archive kernels.
pub trait Dominance {
    /// The rejection bound of `candidate`: a member `m` covers (rejects)
    /// the candidate iff `m ⪯ bound_of(candidate)` component-wise.
    fn bound_of(&self, candidate: &CostVector) -> CostVector;

    /// Whether `member` covers `candidate` under this relation.
    #[inline]
    fn covers(&self, member: &CostVector, candidate: &CostVector) -> bool {
        member.dominates(&self.bound_of(candidate))
    }

    /// Sound aggregate-key screen: `covers(m, c)` implies
    /// `m.agg_key() <= key_bound(c)` (see [`CostVector::agg_key`]).
    #[inline]
    fn key_bound(&self, candidate: &CostVector) -> f64 {
        self.bound_of(candidate).agg_key()
    }
}

/// Exact weak Pareto dominance as a [`Dominance`] relation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Exact;

impl Dominance for Exact {
    #[inline]
    fn bound_of(&self, candidate: &CostVector) -> CostVector {
        *candidate
    }
}

impl Dominance for EpsFactors {
    #[inline]
    fn bound_of(&self, candidate: &CostVector) -> CostVector {
        EpsFactors::bound_of(self, candidate)
    }
}

/// One archive admission rule — the pruning semantics previously spread
/// over the `insert_climb_with` / `insert_approx_with` /
/// `insert_cost_frontier_with` trio, plus the new ε-Pareto box rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdmissionRule {
    /// Hill-climb pruning (Algorithm 2's `Prune`) under a [`PrunePolicy`]:
    /// same-format members reject via weak dominance (strict dominance or
    /// exact duplicate), admission evicts strictly dominated same-format
    /// members.
    Climb(PrunePolicy),
    /// Approximate pruning (Algorithm 3's `Prune`): a same-format member
    /// rejects the candidate if it per-metric α-dominates it; admission
    /// evicts weakly dominated same-format members. All-ones factors give
    /// exact pruning.
    Approx(EpsFactors),
    /// ε-Pareto box archive: at most one occupant per non-dominated
    /// per-format box; a member rejects the candidate if its box weakly
    /// dominates the candidate's (same box: the incumbent stays unless the
    /// candidate strictly dominates it). Archive size is bounded by the
    /// precision target, not the frontier.
    EpsBox(EpsFactors),
    /// Exact cost-Pareto frontier, ignoring output formats (result
    /// archives, where only cost tradeoffs matter).
    CostFrontier,
}

impl AdmissionRule {
    /// Reference predicate: whether a member (of the rule's comparison
    /// scope — same format, or any member for [`CostFrontier`
    /// ](AdmissionRule::CostFrontier)) rejects the candidate. This is the
    /// scalar one-pair form the block kernels of
    /// [`crate::pareto::ParetoSet`] are differentially tested against; the
    /// service's cross-query cache uses it directly.
    #[inline]
    pub fn rejects(&self, member: &CostVector, candidate: &CostVector) -> bool {
        match self {
            AdmissionRule::Climb(_) | AdmissionRule::CostFrontier => member.dominates(candidate),
            AdmissionRule::Approx(eps) => eps.covers(member, candidate),
            AdmissionRule::EpsBox(eps) => {
                let mb = eps.box_key(member);
                let cb = eps.box_key(candidate);
                mb.dominates(&cb) && (mb != cb || !candidate.strictly_dominates(member))
            }
        }
    }

    /// Reference predicate: whether an admitted candidate evicts a member
    /// of its comparison scope.
    #[inline]
    pub fn evicts(&self, candidate: &CostVector, member: &CostVector) -> bool {
        match self {
            AdmissionRule::Climb(_) | AdmissionRule::CostFrontier => {
                candidate.strictly_dominates(member)
            }
            // Equal-cost members reject first, so weak dominance never
            // evicts an equal member in a reachable state.
            AdmissionRule::Approx(_) => candidate.dominates(member),
            AdmissionRule::EpsBox(eps) => {
                let cb = eps.box_key(candidate);
                let mb = eps.box_key(member);
                cb.dominates(&mb) && (cb != mb || candidate.strictly_dominates(member))
            }
        }
    }

    /// Whether the rule compares only same-format members (`false` for the
    /// format-blind cost frontier).
    #[inline]
    pub fn format_scoped(&self) -> bool {
        !matches!(self, AdmissionRule::CostFrontier)
    }
}

/// A complete admission decision: the pruning rule plus an optional hard
/// capacity. At capacity, a candidate that evicts nobody is rejected (the
/// established archive wins — deterministic and order-stable).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Admission {
    /// The pruning rule.
    pub rule: AdmissionRule,
    /// Hard archive-size bound (`None` = unbounded).
    pub capacity: Option<usize>,
}

impl Admission {
    /// Hill-climb pruning under `policy`, unbounded.
    pub fn climb(policy: PrunePolicy) -> Self {
        Admission {
            rule: AdmissionRule::Climb(policy),
            capacity: None,
        }
    }

    /// Uniform scalar-α approximate pruning, unbounded.
    pub fn approx(alpha: f64) -> Self {
        Admission {
            rule: AdmissionRule::Approx(EpsFactors::uniform(alpha)),
            capacity: None,
        }
    }

    /// Per-metric approximate pruning, unbounded.
    pub fn approx_per_metric(factors: EpsFactors) -> Self {
        Admission {
            rule: AdmissionRule::Approx(factors),
            capacity: None,
        }
    }

    /// Exact approximate pruning (`α = 1` everywhere), unbounded.
    pub fn exact() -> Self {
        Admission::approx(1.0)
    }

    /// ε-Pareto box archive with the given per-metric factors, unbounded.
    pub fn eps_box(factors: EpsFactors) -> Self {
        Admission {
            rule: AdmissionRule::EpsBox(factors),
            capacity: None,
        }
    }

    /// Exact format-blind cost-frontier admission, unbounded.
    pub fn cost_frontier() -> Self {
        Admission {
            rule: AdmissionRule::CostFrontier,
            capacity: None,
        }
    }

    /// The same admission with a hard capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// The largest scalar α this admission is at most as coarse as
    /// (1 for exact rules) — the number reported as `last_alpha` in
    /// optimizer stats.
    pub fn max_factor(&self) -> f64 {
        match self.rule {
            AdmissionRule::Climb(_) | AdmissionRule::CostFrontier => 1.0,
            AdmissionRule::Approx(eps) | AdmissionRule::EpsBox(eps) => eps.max(),
        }
    }
}

/// A schedule of per-metric approximation factors over RMQ iterations —
/// the generalization of the old scalar `AlphaSchedule`. Every emitted
/// component is clamped to `≥ 1`, whatever the parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EpsSchedule {
    /// `start · decayᵖ` per metric, where `p = ⌊iteration / period⌋`.
    Geometric {
        /// Factors at iteration 0.
        start: EpsFactors,
        /// Multiplicative decay applied once per period.
        decay: f64,
        /// Iterations per decay period (0 is treated as 1).
        period: u64,
    },
    /// The same factors at every iteration.
    Fixed(EpsFactors),
}

impl EpsSchedule {
    /// The paper's schedule (§6.2): uniform α starting at 25, multiplied by
    /// 0.99 every 25 iterations.
    pub const fn paper() -> Self {
        EpsSchedule::Geometric {
            start: EpsFactors::splat(25.0),
            decay: 0.99,
            period: 25,
        }
    }

    /// The factors for the given iteration, each clamped to `≥ 1`.
    pub fn factors(&self, iteration: u64) -> EpsFactors {
        match *self {
            EpsSchedule::Geometric {
                start,
                decay,
                period,
            } => {
                let steps = (iteration / period.max(1)) as f64;
                let scale = decay.powf(steps);
                let mut values = [1.0; MAX_COST_DIM];
                for (slot, &s) in values.iter_mut().zip(&start.values) {
                    *slot = s * scale;
                }
                EpsFactors { values }.clamped()
            }
            EpsSchedule::Fixed(factors) => factors.clamped(),
        }
    }
}

/// Which admission rule the archive applies to scheduled factors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ArchivePolicy {
    /// Per-metric approximate pruning (the paper's Algorithm 3 rule).
    #[default]
    Approx,
    /// ε-Pareto box archive (Trummer & Koch 2014): size bounded by the
    /// precision target.
    EpsBox,
}

/// Archive configuration: policy, per-metric ε schedule, and capacity —
/// everything the optimizer needs to derive the [`Admission`] of an
/// iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArchiveConfig {
    /// The admission rule family.
    pub policy: ArchivePolicy,
    /// The per-iteration factor schedule.
    pub eps: EpsSchedule,
    /// Hard archive-size bound (`None` = unbounded).
    pub capacity: Option<usize>,
}

impl Default for ArchiveConfig {
    /// The paper's configuration: approximate pruning under the geometric
    /// α schedule.
    fn default() -> Self {
        ArchiveConfig::paper()
    }
}

impl ArchiveConfig {
    /// The paper's configuration (approximate pruning, geometric schedule).
    pub const fn paper() -> Self {
        ArchiveConfig {
            policy: ArchivePolicy::Approx,
            eps: EpsSchedule::paper(),
            capacity: None,
        }
    }

    /// Exact pruning at every iteration (`α = 1`).
    pub fn exact() -> Self {
        ArchiveConfig {
            policy: ArchivePolicy::Approx,
            eps: EpsSchedule::Fixed(EpsFactors::exact()),
            capacity: None,
        }
    }

    /// Fixed uniform scalar α at every iteration.
    pub fn fixed(alpha: f64) -> Self {
        ArchiveConfig {
            policy: ArchivePolicy::Approx,
            eps: EpsSchedule::Fixed(EpsFactors::uniform(alpha)),
            capacity: None,
        }
    }

    /// An ε-Pareto box archive with fixed per-metric factors.
    pub fn eps_box(factors: EpsFactors) -> Self {
        ArchiveConfig {
            policy: ArchivePolicy::EpsBox,
            eps: EpsSchedule::Fixed(factors),
            capacity: None,
        }
    }

    /// The same configuration with a hard capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// The [`Admission`] of the given iteration.
    pub fn admission(&self, iteration: u64) -> Admission {
        let factors = self.eps.factors(iteration);
        let rule = match self.policy {
            ArchivePolicy::Approx => AdmissionRule::Approx(factors),
            ArchivePolicy::EpsBox => AdmissionRule::EpsBox(factors),
        };
        Admission {
            rule,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cv(values: &[f64]) -> CostVector {
        CostVector::new(values)
    }

    #[test]
    fn factors_clamp_and_accessors() {
        let f = EpsFactors::uniform(0.25);
        assert!(f.is_exact(), "sub-1 factors clamp to exact");
        let f = EpsFactors::per_metric(&[2.0, 0.5, 4.0]);
        assert_eq!(f.get(0), 2.0);
        assert_eq!(f.get(1), 1.0, "clamped");
        assert_eq!(f.get(2), 4.0);
        assert_eq!(f.get(3), 1.0, "unspecified metrics are exact");
        assert_eq!(f.max(), 4.0);
        assert!(!f.is_exact());
        assert!(EpsFactors::exact().is_exact());
        assert_eq!(EpsFactors::splat(f64::NAN).clamped().max(), 1.0);
    }

    #[test]
    fn bound_of_reproduces_scalar_alpha_dominance() {
        let a = cv(&[2.0, 1.0]);
        let b = cv(&[1.0, 1.0]);
        let eps = EpsFactors::uniform(2.0);
        assert_eq!(a.dominates(&eps.bound_of(&b)), a.approx_dominates(&b, 2.0));
        assert_eq!(eps.bound_of(&b).agg_key(), b.scaled_agg_key(2.0));
    }

    #[test]
    fn per_metric_bound_scales_each_axis_independently() {
        let eps = EpsFactors::per_metric(&[4.0, 1.0]);
        // 3x worse in metric 0 is covered; 1.1x worse in metric 1 is not.
        assert!(eps.covers(&cv(&[3.0, 1.0]), &cv(&[1.0, 1.0])));
        assert!(!eps.covers(&cv(&[1.0, 1.1]), &cv(&[1.0, 1.0])));
    }

    #[test]
    fn exact_box_keys_order_like_values() {
        let eps = EpsFactors::exact();
        let a = eps.box_key(&cv(&[1.0, 2.0]));
        let b = eps.box_key(&cv(&[1.0, 3.0]));
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert_eq!(a, eps.box_key(&cv(&[1.0, 2.0])));
        // -0.0 and +0.0 share a box.
        assert_eq!(eps.box_key(&cv(&[0.0])), eps.box_key(&cv(&[-0.0 + 0.0])));
    }

    #[test]
    fn log_boxes_group_values_within_one_factor() {
        let eps = EpsFactors::uniform(2.0);
        // [2, 4) is one box at factor 2.
        assert_eq!(eps.box_key(&cv(&[2.0])), eps.box_key(&cv(&[3.9])));
        assert_ne!(eps.box_key(&cv(&[2.0])), eps.box_key(&cv(&[4.0])));
        // Zero cost saturates to the leftmost box deterministically.
        assert_eq!(eps.box_key(&cv(&[0.0])), eps.box_key(&cv(&[0.0])));
        assert!(eps
            .box_key(&cv(&[0.0]))
            .dominates(&eps.box_key(&cv(&[1.0]))));
    }

    #[test]
    fn admission_constructors_and_max_factor() {
        assert_eq!(Admission::exact().max_factor(), 1.0);
        assert_eq!(Admission::approx(3.0).max_factor(), 3.0);
        assert_eq!(
            Admission::eps_box(EpsFactors::per_metric(&[2.0, 5.0])).max_factor(),
            5.0
        );
        assert_eq!(
            Admission::climb(PrunePolicy::OnePerFormat).max_factor(),
            1.0
        );
        assert_eq!(Admission::cost_frontier().max_factor(), 1.0);
        assert_eq!(Admission::exact().with_capacity(8).capacity, Some(8));
    }

    #[test]
    fn eps_box_rule_with_exact_factors_matches_exact_approx_rule() {
        // The degenerate ε-archive: all-ones factors box each exact value,
        // so reject/evict decisions coincide with exact pruning wherever
        // the pair of states is reachable (equal costs reject first).
        let exact = AdmissionRule::Approx(EpsFactors::exact());
        let boxed = AdmissionRule::EpsBox(EpsFactors::exact());
        let pts = [
            cv(&[1.0, 2.0]),
            cv(&[2.0, 1.0]),
            cv(&[1.0, 1.0]),
            cv(&[2.0, 2.0]),
        ];
        for m in &pts {
            for c in &pts {
                assert_eq!(boxed.rejects(m, c), exact.rejects(m, c), "{m:?} vs {c:?}");
                if m.as_slice() != c.as_slice() {
                    assert_eq!(boxed.evicts(c, m), exact.evicts(c, m), "{c:?} vs {m:?}");
                }
            }
        }
    }

    #[test]
    fn schedule_decays_and_fixed_holds() {
        let s = EpsSchedule::paper();
        assert_eq!(s.factors(0).max(), 25.0);
        assert_eq!(s.factors(24).max(), 25.0);
        assert!((s.factors(25).max() - 24.75).abs() < 1e-9);
        let f = EpsSchedule::Fixed(EpsFactors::uniform(1.5));
        assert_eq!(f.factors(0).max(), 1.5);
        assert_eq!(f.factors(u64::MAX).max(), 1.5);
    }

    #[test]
    fn geometric_schedule_never_yields_factors_below_one() {
        // The adversarial clamp invariant carried over from the old scalar
        // `AlphaSchedule`: whatever the parameters (sub-1 starts, zero
        // decay, zero period, astronomical iteration counts), every emitted
        // factor component is >= 1, keeping `approx_dominates` sound.
        let schedules = [
            EpsSchedule::paper(),
            EpsSchedule::Geometric {
                start: EpsFactors::splat(0.25),
                decay: 0.5,
                period: 1,
            },
            EpsSchedule::Geometric {
                start: EpsFactors::splat(1e9),
                decay: 0.0,
                period: 3,
            },
            EpsSchedule::Geometric {
                start: EpsFactors::splat(25.0),
                decay: 0.99,
                period: 0,
            },
            EpsSchedule::Fixed(EpsFactors::splat(0.1)),
        ];
        let far: [u64; 5] = [100_000, 10_000_000, u64::MAX - 1, u64::MAX, 12345];
        for schedule in &schedules {
            for iteration in (0..10_000).chain(far) {
                let f = schedule.factors(iteration);
                for k in 0..MAX_COST_DIM {
                    assert!(
                        f.get(k) >= 1.0,
                        "{schedule:?} produced factor {} < 1 at iteration {iteration}",
                        f.get(k)
                    );
                }
            }
        }
    }

    #[test]
    fn archive_config_builds_admissions() {
        let cfg = ArchiveConfig::paper();
        let adm = cfg.admission(0);
        assert_eq!(adm.max_factor(), 25.0);
        assert!(matches!(adm.rule, AdmissionRule::Approx(_)));

        let cfg = ArchiveConfig::eps_box(EpsFactors::uniform(1.5)).with_capacity(100);
        let adm = cfg.admission(17);
        assert!(matches!(adm.rule, AdmissionRule::EpsBox(_)));
        assert_eq!(adm.capacity, Some(100));

        assert_eq!(ArchiveConfig::exact().admission(9).max_factor(), 1.0);
        assert_eq!(ArchiveConfig::fixed(2.5).admission(9).max_factor(), 2.5);
        assert_eq!(ArchiveConfig::default(), ArchiveConfig::paper());
    }

    fn arb_cost(dim: usize) -> impl Strategy<Value = CostVector> {
        proptest::collection::vec(0.0f64..1e6, dim).prop_map(|v| CostVector::new(&v))
    }

    proptest! {
        /// Per-metric bounds with uniform factors reproduce scalar
        /// α-dominance bit for bit (same multiplications, same order).
        #[test]
        fn uniform_bound_equals_scalar_alpha(a in arb_cost(4), b in arb_cost(4),
                                             alpha in 1.0f64..100.0) {
            let eps = EpsFactors::uniform(alpha);
            prop_assert_eq!(eps.covers(&a, &b), a.approx_dominates(&b, alpha));
            prop_assert_eq!(eps.key_bound(&b), b.scaled_agg_key(alpha));
        }

        /// Box keys are monotone: weak dominance implies box dominance for
        /// any factor vector (the soundness of box-level rejection).
        #[test]
        fn box_keys_monotone_under_dominance(a in arb_cost(3), b in arb_cost(3),
                                             f in proptest::collection::vec(1.0f64..8.0, 3)) {
            let eps = EpsFactors::per_metric(&f);
            if a.dominates(&b) {
                prop_assert!(eps.box_key(&a).dominates(&eps.box_key(&b)));
            }
        }

        /// Exact factors give bitwise boxing: box equality iff value
        /// equality, box dominance iff weak dominance.
        #[test]
        fn exact_boxes_are_values(a in arb_cost(3), b in arb_cost(3)) {
            let eps = EpsFactors::exact();
            prop_assert_eq!(eps.box_key(&a) == eps.box_key(&b),
                            a.as_slice() == b.as_slice());
            prop_assert_eq!(eps.box_key(&a).dominates(&eps.box_key(&b)), a.dominates(&b));
        }
    }
}
