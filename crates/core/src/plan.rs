//! Immutable, reference-counted bushy query plan trees.
//!
//! A plan (§3) describes the join order and the operator implementation of
//! every scan and join: `ScanPlan(q, op)` scans a single table,
//! `JoinPlan(outer, inner, op)` joins the results of two sub-plans. Plans
//! are immutable and shared via [`PlanRef`] (`Arc<Plan>`): plan mutations
//! build a new root re-using untouched sub-trees, which makes the paper's
//! "apply many transformations simultaneously" step (§4.2) and the
//! sub-plan-sharing plan cache (§4.3, Theorem 5) cheap.
//!
//! Every node caches derived properties — table set, cost vector, estimated
//! output cardinality and pages, and output format — computed once at
//! construction through a [`CostModel`].

use std::fmt::Write as _;
use std::sync::Arc;

use crate::cost::CostVector;
use crate::model::{CostModel, JoinOpId, OutputFormat, PlanProps, PlanView, ScanOpId};
use crate::tables::{TableId, TableSet};

/// Shared handle to an immutable plan node.
pub type PlanRef = Arc<Plan>;

/// The node variant: leaf scan or inner join.
#[derive(Clone, Debug)]
pub enum PlanKind {
    /// `ScanPlan(table, op)` — scans one base table.
    Scan {
        /// The scanned base table.
        table: TableId,
        /// The scan operator implementation.
        op: ScanOpId,
    },
    /// `JoinPlan(outer, inner, op)` — joins two sub-plan results.
    Join {
        /// The outer (left) input plan.
        outer: PlanRef,
        /// The inner (right) input plan.
        inner: PlanRef,
        /// The join operator implementation.
        op: JoinOpId,
    },
}

/// An immutable query plan node with cached derived properties.
///
/// The derived properties live in an inline [`PlanView`], so handing an
/// operand to a [`CostModel`] ([`Plan::view`]) is a reference, not a copy.
#[derive(Clone, Debug)]
pub struct Plan {
    kind: PlanKind,
    view: PlanView,
}

impl Plan {
    /// Builds a scan plan for `table` using scan operator `op`, with cost and
    /// output properties supplied by `model`.
    pub fn scan<M: CostModel + ?Sized>(model: &M, table: TableId, op: ScanOpId) -> PlanRef {
        Plan::scan_from_props(table, op, model.scan_props(table, op))
    }

    /// Builds a scan plan from properties already computed by a cost model.
    ///
    /// The pruning hot paths cost candidates *before* materializing them
    /// (see `ParetoSet::insert_climb_with`); this constructor turns an
    /// admitted candidate into a plan node without re-invoking the model.
    /// `props` must come from `scan_props(table, op)` of the model the
    /// surrounding optimization runs against.
    pub fn scan_from_props(table: TableId, op: ScanOpId, props: PlanProps) -> PlanRef {
        debug_assert!(props.cost.is_valid(), "scan produced invalid cost");
        Arc::new(Plan {
            kind: PlanKind::Scan { table, op },
            view: PlanView::new(TableSet::singleton(table), &props),
        })
    }

    /// Builds a join plan over `outer` and `inner` using join operator `op`.
    ///
    /// # Panics
    /// Panics in debug builds if the operand table sets overlap.
    pub fn join<M: CostModel + ?Sized>(
        model: &M,
        outer: PlanRef,
        inner: PlanRef,
        op: JoinOpId,
    ) -> PlanRef {
        let props = model.join_props(outer.view(), inner.view(), op);
        Plan::join_from_props(outer, inner, op, props)
    }

    /// Builds a join plan from properties already computed by a cost model
    /// (the join analogue of [`Plan::scan_from_props`]). `props` must come
    /// from `join_props(&outer, &inner, op)` of the surrounding model.
    ///
    /// # Panics
    /// Panics in debug builds if the operand table sets overlap.
    pub fn join_from_props(
        outer: PlanRef,
        inner: PlanRef,
        op: JoinOpId,
        props: PlanProps,
    ) -> PlanRef {
        debug_assert!(
            outer.rel().is_disjoint(inner.rel()),
            "join operands overlap: {} vs {}",
            outer.rel(),
            inner.rel()
        );
        debug_assert!(props.cost.is_valid(), "join produced invalid cost");
        let rel = outer.rel().union(inner.rel());
        Arc::new(Plan {
            kind: PlanKind::Join { outer, inner, op },
            view: PlanView::new(rel, &props),
        })
    }

    /// The node variant.
    #[inline]
    pub fn kind(&self) -> &PlanKind {
        &self.kind
    }

    /// The set of tables joined by this plan (`p.rel`).
    #[inline]
    pub fn rel(&self) -> TableSet {
        self.view.rel
    }

    /// The plan's cost vector (`p.cost`).
    #[inline]
    pub fn cost(&self) -> &CostVector {
        &self.view.cost
    }

    /// Estimated output cardinality in rows.
    #[inline]
    pub fn rows(&self) -> f64 {
        self.view.rows
    }

    /// Estimated output size in pages.
    #[inline]
    pub fn pages(&self) -> f64 {
        self.view.pages
    }

    /// The output data format (used by `SameOutput` comparisons).
    #[inline]
    pub fn format(&self) -> OutputFormat {
        self.view.format
    }

    /// The node's cached properties as a representation-agnostic
    /// [`PlanView`] — the operand interface cost models consume (the
    /// hash-consed [`crate::arena::PlanArena`] produces the same views for
    /// its interned nodes). Borrowed, not copied: the view is stored
    /// inline.
    #[inline]
    pub fn view(&self) -> &PlanView {
        &self.view
    }

    /// `p.isJoin` of the paper: true iff this is an inner (join) node.
    #[inline]
    pub fn is_join(&self) -> bool {
        matches!(self.kind, PlanKind::Join { .. })
    }

    /// The outer sub-plan (`p.outer`), if this is a join.
    #[inline]
    pub fn outer(&self) -> Option<&PlanRef> {
        match &self.kind {
            PlanKind::Join { outer, .. } => Some(outer),
            PlanKind::Scan { .. } => None,
        }
    }

    /// The inner sub-plan (`p.inner`), if this is a join.
    #[inline]
    pub fn inner(&self) -> Option<&PlanRef> {
        match &self.kind {
            PlanKind::Join { inner, .. } => Some(inner),
            PlanKind::Scan { .. } => None,
        }
    }

    /// The scanned table, if this is a scan node.
    #[inline]
    pub fn table(&self) -> Option<TableId> {
        match &self.kind {
            PlanKind::Scan { table, .. } => Some(*table),
            PlanKind::Join { .. } => None,
        }
    }

    /// `SameOutput` of Algorithms 2/3: two plans are interchangeable as
    /// sub-plans only if they produce the same output data format.
    #[inline]
    pub fn same_output(&self, other: &Plan) -> bool {
        self.view.format == other.view.format
    }

    /// Total number of nodes (scans + joins) in the plan tree.
    pub fn node_count(&self) -> usize {
        match &self.kind {
            PlanKind::Scan { .. } => 1,
            PlanKind::Join { outer, inner, .. } => 1 + outer.node_count() + inner.node_count(),
        }
    }

    /// Height of the plan tree (a single scan has depth 1).
    pub fn depth(&self) -> usize {
        match &self.kind {
            PlanKind::Scan { .. } => 1,
            PlanKind::Join { outer, inner, .. } => 1 + outer.depth().max(inner.depth()),
        }
    }

    /// Whether the plan is left-deep: every join's inner operand is a scan.
    pub fn is_left_deep(&self) -> bool {
        match &self.kind {
            PlanKind::Scan { .. } => true,
            PlanKind::Join { outer, inner, .. } => !inner.is_join() && outer.is_left_deep(),
        }
    }

    /// Checks structural validity: the plan joins exactly the tables of
    /// `query`, each table appearing in exactly one leaf.
    pub fn validate(&self, query: TableSet) -> Result<(), PlanError> {
        let counted = self.validate_rec()?;
        if counted != query {
            return Err(PlanError::WrongTables {
                expected: query,
                actual: counted,
            });
        }
        Ok(())
    }

    fn validate_rec(&self) -> Result<TableSet, PlanError> {
        match &self.kind {
            PlanKind::Scan { table, .. } => {
                let s = TableSet::singleton(*table);
                if s != self.view.rel {
                    return Err(PlanError::CorruptRel);
                }
                Ok(s)
            }
            PlanKind::Join { outer, inner, .. } => {
                let o = outer.validate_rec()?;
                let i = inner.validate_rec()?;
                if !o.is_disjoint(i) {
                    return Err(PlanError::DuplicateTable(o.intersect(i)));
                }
                let u = o.union(i);
                if u != self.view.rel {
                    return Err(PlanError::CorruptRel);
                }
                Ok(u)
            }
        }
    }

    /// Renders the plan as a compact algebra string, e.g.
    /// `((T0 SeqScan ⋈HJ T1 SeqScan) ⋈BNL T2 IdxScan)`.
    pub fn display<M: CostModel + ?Sized>(&self, model: &M) -> String {
        let mut out = String::new();
        self.display_rec(model, &mut out);
        out
    }

    fn display_rec<M: CostModel + ?Sized>(&self, model: &M, out: &mut String) {
        match &self.kind {
            PlanKind::Scan { table, op } => {
                let _ = write!(out, "{}[{}]", table, model.scan_op_name(*op));
            }
            PlanKind::Join { outer, inner, op } => {
                out.push('(');
                outer.display_rec(model, out);
                let _ = write!(out, " ⋈[{}] ", model.join_op_name(*op));
                inner.display_rec(model, out);
                out.push(')');
            }
        }
    }

    /// Iterates over all nodes of the tree in post-order (children first),
    /// invoking `f` on each node.
    pub fn visit_post_order(self: &PlanRef, f: &mut impl FnMut(&PlanRef)) {
        if let PlanKind::Join { outer, inner, .. } = &self.kind {
            outer.visit_post_order(f);
            inner.visit_post_order(f);
        }
        f(self);
    }
}

/// Structural validation errors for query plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The plan's leaves do not cover exactly the query's table set.
    WrongTables {
        /// Tables the query requires.
        expected: TableSet,
        /// Tables the plan actually joins.
        actual: TableSet,
    },
    /// A table appears in more than one leaf.
    DuplicateTable(TableSet),
    /// A cached `rel` set disagrees with the tree structure.
    CorruptRel,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::WrongTables { expected, actual } => {
                write!(f, "plan joins tables {actual}, query requires {expected}")
            }
            PlanError::DuplicateTable(t) => write!(f, "tables {t} appear in multiple leaves"),
            PlanError::CorruptRel => write!(f, "cached rel set disagrees with tree structure"),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testing::StubModel;
    use crate::model::PlanProps;

    fn two_table_join(model: &StubModel) -> PlanRef {
        let s0 = Plan::scan(model, TableId::new(0), model.scan_ops(TableId::new(0))[0]);
        let s1 = Plan::scan(model, TableId::new(1), model.scan_ops(TableId::new(1))[0]);
        let mut ops = Vec::new();
        model.join_ops(s0.view(), s1.view(), &mut ops);
        Plan::join(model, s0, s1, ops[0])
    }

    #[test]
    fn scan_properties() {
        let model = StubModel::line(3, 2, 1);
        let t = TableId::new(2);
        let p = Plan::scan(&model, t, model.scan_ops(t)[0]);
        assert!(!p.is_join());
        assert_eq!(p.table(), Some(t));
        assert_eq!(p.rel(), TableSet::singleton(t));
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.depth(), 1);
        assert!(p.outer().is_none() && p.inner().is_none());
        assert!(p.cost().is_valid());
        assert!(p.rows() > 0.0);
    }

    #[test]
    fn join_properties_and_cost_accumulation() {
        let model = StubModel::line(2, 2, 1);
        let j = two_table_join(&model);
        assert!(j.is_join());
        assert_eq!(j.rel(), TableSet::prefix(2));
        assert_eq!(j.node_count(), 3);
        assert_eq!(j.depth(), 2);
        // StubModel costs are additive: join cost weakly exceeds each input cost.
        let o = j.outer().unwrap();
        assert!(o.cost().dominates(j.cost()));
    }

    #[test]
    fn validation_accepts_well_formed_plans() {
        let model = StubModel::line(2, 2, 1);
        let j = two_table_join(&model);
        assert!(j.validate(TableSet::prefix(2)).is_ok());
        assert_eq!(
            j.validate(TableSet::prefix(3)),
            Err(PlanError::WrongTables {
                expected: TableSet::prefix(3),
                actual: TableSet::prefix(2),
            })
        );
    }

    #[test]
    fn same_output_compares_formats() {
        let p1 = PlanProps {
            cost: CostVector::new(&[1.0]),
            rows: 1.0,
            pages: 1.0,
            format: OutputFormat(0),
        };
        let _ = p1; // format semantics are covered via StubModel below
        let model = StubModel::line(2, 2, 1);
        let t = TableId::new(0);
        let a = Plan::scan(&model, t, model.scan_ops(t)[0]);
        let b = Plan::scan(&model, t, model.scan_ops(t)[0]);
        assert!(a.same_output(&b));
    }

    #[test]
    fn display_renders_tree() {
        let model = StubModel::line(2, 2, 1);
        let j = two_table_join(&model);
        let s = j.display(&model);
        assert!(s.contains("T0"), "display missing table: {s}");
        assert!(s.contains('⋈'), "display missing join: {s}");
    }

    #[test]
    fn post_order_visits_children_first() {
        let model = StubModel::line(2, 2, 1);
        let j = two_table_join(&model);
        let mut sizes = Vec::new();
        j.visit_post_order(&mut |p| sizes.push(p.rel().len()));
        assert_eq!(sizes, vec![1, 1, 2]);
    }
}
