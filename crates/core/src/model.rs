//! The cost-model abstraction through which the optimizer sees the world.
//!
//! The paper (§3) assumes "cost models for all considered cost metrics are
//! available" and keeps the algorithms generic over metrics and operators;
//! §5 parameterizes the analysis by `r`, the number of implementations per
//! operator. [`CostModel`] captures exactly that interface: it enumerates
//! the applicable scan/join operator implementations (applicability may
//! depend on the operands' output formats, e.g. a block-nested-loop join
//! needs a re-scannable inner), and computes the derived properties of a new
//! plan node — cost vector, output cardinality, pages, and output format.
//!
//! Concrete production models (the time/buffer/disk resource model and the
//! time/money cloud model) live in the `moqo-cost` crate; [`testing`]
//! provides a small deterministic stub used throughout the test suites.

use crate::cost::CostVector;
use crate::tables::{TableId, TableSet};

/// Identifier of an output data format (e.g. pipelined vs. materialized).
///
/// `SameOutput` in Algorithms 2 and 3 compares these ids: sub-plans with
/// different output formats are incomparable because the format can change
/// the cost or applicability of operators higher up in the plan.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OutputFormat(pub u8);

/// Identifier of a scan operator implementation within a model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ScanOpId(pub u16);

/// Identifier of a join operator implementation within a model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct JoinOpId(pub u16);

/// Derived properties of a plan node, computed by a [`CostModel`].
#[derive(Clone, Copy, Debug)]
pub struct PlanProps {
    /// Cost vector of the (sub-)plan rooted at the node.
    pub cost: CostVector,
    /// Estimated output cardinality in rows.
    pub rows: f64,
    /// Estimated output size in pages.
    pub pages: f64,
    /// Output data format produced by the node's operator.
    pub format: OutputFormat,
}

/// A borrowed, representation-agnostic view of a plan operand: the table
/// set plus the cached derived properties a [`CostModel`] reads when costing
/// a join over the operand.
///
/// Cost models never inspect a plan's *tree* — only its cached properties —
/// so the optimizer can hand them operands stored as `Arc<Plan>` trees
/// ([`Plan::view`](crate::plan::Plan::view)) or as hash-consed arena nodes
/// ([`PlanArena::view`](crate::arena::PlanArena::view)) through one
/// interface. The struct is `Copy` (a few dozen bytes), so call sites pass
/// it by value or reference without lifetime entanglement.
#[derive(Clone, Copy, Debug)]
pub struct PlanView {
    /// The set of tables joined by the operand (`p.rel`).
    pub rel: TableSet,
    /// The operand's cost vector (`p.cost`).
    pub cost: CostVector,
    /// Estimated output cardinality in rows.
    pub rows: f64,
    /// Estimated output size in pages.
    pub pages: f64,
    /// The output data format (drives operator applicability).
    pub format: OutputFormat,
}

impl PlanView {
    /// Assembles a view from a table set and node properties.
    #[inline]
    pub fn new(rel: TableSet, props: &PlanProps) -> Self {
        PlanView {
            rel,
            cost: props.cost,
            rows: props.rows,
            pages: props.pages,
            format: props.format,
        }
    }
}

/// A multi-metric cost model: operator library + cost/cardinality estimation.
///
/// # Contract
///
/// * `dim()` is constant over the model's lifetime and `1 ..= MAX_COST_DIM`.
/// * `scan_ops(t)` is non-empty for every table of the database.
/// * `join_ops(o, i, out)` must yield **at least one** operator for every
///   pair of operand formats — random plan generation and hill climbing rely
///   on always being able to join two partial plans.
/// * Costs are finite, non-negative, and **additive**: the cost of a join
///   node weakly dominates the cost of each input (the paper's footnote 1
///   restricts the guarantees of the principle of optimality to such
///   accumulative metrics).
pub trait CostModel: Sync {
    /// Number of cost metrics `l`.
    fn dim(&self) -> usize;

    /// Human-readable name of metric `k < dim()`.
    fn metric_name(&self, k: usize) -> &str;

    /// Number of tables in the underlying database.
    fn num_tables(&self) -> usize;

    /// The scan operator implementations applicable to `table`.
    fn scan_ops(&self, table: TableId) -> &[ScanOpId];

    /// Appends to `out` the join operator implementations applicable to the
    /// given operand plans (applicability may depend on operand formats).
    fn join_ops(&self, outer: &PlanView, inner: &PlanView, out: &mut Vec<JoinOpId>);

    /// Properties of a scan of `table` with operator `op`.
    fn scan_props(&self, table: TableId, op: ScanOpId) -> PlanProps;

    /// Properties of a join of `outer` and `inner` with operator `op`.
    fn join_props(&self, outer: &PlanView, inner: &PlanView, op: JoinOpId) -> PlanProps;

    /// Human-readable name of a scan operator.
    fn scan_op_name(&self, op: ScanOpId) -> String;

    /// Human-readable name of a join operator.
    fn join_op_name(&self, op: JoinOpId) -> String;

    /// Human-readable name of an output format.
    fn format_name(&self, format: OutputFormat) -> String {
        format!("fmt{}", format.0)
    }

    /// Number of distinct output formats the model can produce. Used to
    /// bound per-format pruning structures.
    fn num_formats(&self) -> usize;
}

/// Delegates every [`CostModel`] method through a smart-pointer-like type,
/// so optimizers can be generic over *how* they hold their model: borrowed
/// (`&M`, the classic one-shot usage) or shared-owned (`Arc<M>`, required
/// for `'static` + `Send` optimizer sessions in the optimization service).
macro_rules! delegate_cost_model {
    () => {
        fn dim(&self) -> usize {
            (**self).dim()
        }
        fn metric_name(&self, k: usize) -> &str {
            (**self).metric_name(k)
        }
        fn num_tables(&self) -> usize {
            (**self).num_tables()
        }
        fn scan_ops(&self, table: TableId) -> &[ScanOpId] {
            (**self).scan_ops(table)
        }
        fn join_ops(&self, outer: &PlanView, inner: &PlanView, out: &mut Vec<JoinOpId>) {
            (**self).join_ops(outer, inner, out)
        }
        fn scan_props(&self, table: TableId, op: ScanOpId) -> PlanProps {
            (**self).scan_props(table, op)
        }
        fn join_props(&self, outer: &PlanView, inner: &PlanView, op: JoinOpId) -> PlanProps {
            (**self).join_props(outer, inner, op)
        }
        fn scan_op_name(&self, op: ScanOpId) -> String {
            (**self).scan_op_name(op)
        }
        fn join_op_name(&self, op: JoinOpId) -> String {
            (**self).join_op_name(op)
        }
        fn format_name(&self, format: OutputFormat) -> String {
            (**self).format_name(format)
        }
        fn num_formats(&self) -> usize {
            (**self).num_formats()
        }
    };
}

impl<M: CostModel + ?Sized> CostModel for &M {
    delegate_cost_model!();
}

impl<M: CostModel + Send + ?Sized> CostModel for std::sync::Arc<M> {
    delegate_cost_model!();
}

/// Deterministic test model used across the workspace's test suites.
pub mod testing {
    use super::*;
    use crate::cost::MIN_COST;
    use crate::tables::TableSet;

    /// SplitMix64 — a tiny deterministic mixer for reproducible stub data.
    pub(crate) fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1) derived from a hash.
    pub(crate) fn unit_f64(h: u64) -> f64 {
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A small, fully deterministic cost model over a chain join graph.
    ///
    /// * two scan operators per table (different cost profiles, format 0);
    /// * four join operators: two "extreme" profiles trading metric 0
    ///   against the remaining metrics, one balanced operator that outputs
    ///   format 1 (materialized-like, extra metric-0 cost), and one cheap
    ///   operator **only applicable when the inner operand has format 1** —
    ///   exercising format-dependent applicability;
    /// * chain selectivities `1 / max(rows_a, rows_b)` between adjacent
    ///   tables, `1` otherwise (cross products allowed).
    ///
    /// All costs are additive, so the model satisfies the [`CostModel`]
    /// contract including the principle of optimality. `Clone` so the
    /// parallel optimizer's per-worker instances can each own a copy.
    #[derive(Clone)]
    pub struct StubModel {
        n: usize,
        dim: usize,
        seed: u64,
        rows: Vec<f64>,
        scan_ops: Vec<ScanOpId>,
        metric_names: Vec<String>,
    }

    /// Join operator id that is only applicable to format-1 inners.
    pub const STUB_RESTRICTED_JOIN: JoinOpId = JoinOpId(3);

    impl StubModel {
        /// Creates a stub model over `n` tables on a chain join graph with
        /// `dim` cost metrics, seeded deterministically.
        pub fn line(n: usize, dim: usize, seed: u64) -> Self {
            assert!(n >= 1 && dim >= 1);
            let rows = (0..n)
                .map(|t| {
                    let h = splitmix64(seed ^ (t as u64).wrapping_mul(0x9e37));
                    // Rows between 10 and ~10_000, log-uniform-ish.
                    10.0 * 1000f64.powf(unit_f64(h))
                })
                .collect();
            StubModel {
                n,
                dim,
                seed,
                rows,
                scan_ops: vec![ScanOpId(0), ScanOpId(1)],
                metric_names: (0..dim).map(|k| format!("m{k}")).collect(),
            }
        }

        /// Estimated join selectivity between two table sets: product of the
        /// chain-edge selectivities crossing the cut.
        pub fn selectivity(&self, a: TableSet, b: TableSet) -> f64 {
            let mut sel = 1.0;
            for i in 0..self.n.saturating_sub(1) {
                let t1 = TableId::new(i);
                let t2 = TableId::new(i + 1);
                let crossing =
                    (a.contains(t1) && b.contains(t2)) || (a.contains(t2) && b.contains(t1));
                if crossing {
                    sel *= 1.0 / self.rows[i].max(self.rows[i + 1]);
                }
            }
            sel
        }

        /// Base rows of a table.
        pub fn table_rows(&self, t: TableId) -> f64 {
            self.rows[t.index()]
        }

        fn op_weight(&self, op: u16, k: usize) -> f64 {
            // Extreme profiles: op 0 cheap in metric 0, expensive elsewhere;
            // op 1 the reverse; op 2 balanced; op 3 cheap overall.
            const W: [[f64; 3]; 4] = [
                [0.2, 3.0, 2.0],
                [3.0, 0.2, 2.0],
                [1.0, 1.0, 0.3],
                [0.4, 0.4, 0.4],
            ];
            let base = W[op as usize % 4][k % 3];
            // Mild deterministic jitter so different queries/seeds differ.
            let h = splitmix64(self.seed ^ ((op as u64) << 32) ^ k as u64);
            base * (0.8 + 0.4 * unit_f64(h))
        }
    }

    impl CostModel for StubModel {
        fn dim(&self) -> usize {
            self.dim
        }

        fn metric_name(&self, k: usize) -> &str {
            &self.metric_names[k]
        }

        fn num_tables(&self) -> usize {
            self.n
        }

        fn scan_ops(&self, _table: TableId) -> &[ScanOpId] {
            &self.scan_ops
        }

        fn join_ops(&self, _outer: &PlanView, inner: &PlanView, out: &mut Vec<JoinOpId>) {
            out.extend([JoinOpId(0), JoinOpId(1), JoinOpId(2)]);
            if inner.format == OutputFormat(1) {
                out.push(STUB_RESTRICTED_JOIN);
            }
        }

        fn scan_props(&self, table: TableId, op: ScanOpId) -> PlanProps {
            let rows = self.rows[table.index()];
            let pages = (rows / 100.0).max(0.01);
            let mut cost = CostVector::zeros(self.dim);
            for k in 0..self.dim {
                let w = match (op.0, k % 2) {
                    (0, 0) => 1.0,
                    (0, _) => 2.0,
                    (_, 0) => 2.0,
                    (_, _) => 1.0,
                };
                cost = cost.add_component(k, (w * pages).max(MIN_COST));
            }
            PlanProps {
                cost,
                rows,
                pages,
                format: OutputFormat(0),
            }
        }

        fn join_props(&self, outer: &PlanView, inner: &PlanView, op: JoinOpId) -> PlanProps {
            let sel = self.selectivity(outer.rel, inner.rel);
            let rows = (outer.rows * inner.rows * sel).max(1.0);
            let pages = (rows / 100.0).max(0.01);
            let work = outer.pages + inner.pages + pages;
            let mut cost = outer.cost.add(&inner.cost);
            for k in 0..self.dim {
                cost = cost.add_component(k, (self.op_weight(op.0, k) * work).max(MIN_COST));
            }
            let format = if op.0 == 2 {
                OutputFormat(1)
            } else {
                OutputFormat(0)
            };
            PlanProps {
                cost,
                rows,
                pages,
                format,
            }
        }

        fn scan_op_name(&self, op: ScanOpId) -> String {
            match op.0 {
                0 => "scanA".into(),
                _ => "scanB".into(),
            }
        }

        fn join_op_name(&self, op: JoinOpId) -> String {
            match op.0 {
                0 => "fast0".into(),
                1 => "fast1".into(),
                2 => "mat".into(),
                _ => "cheap".into(),
            }
        }

        fn num_formats(&self) -> usize {
            2
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::plan::Plan;

        #[test]
        fn stub_model_is_deterministic() {
            let a = StubModel::line(5, 2, 9);
            let b = StubModel::line(5, 2, 9);
            for t in 0..5 {
                assert_eq!(a.table_rows(TableId::new(t)), b.table_rows(TableId::new(t)));
            }
        }

        #[test]
        fn chain_selectivity_only_on_adjacent_pairs() {
            let m = StubModel::line(4, 2, 1);
            let s01 = m.selectivity(
                TableSet::singleton(TableId::new(0)),
                TableSet::singleton(TableId::new(1)),
            );
            assert!(s01 < 1.0);
            let s02 = m.selectivity(
                TableSet::singleton(TableId::new(0)),
                TableSet::singleton(TableId::new(2)),
            );
            assert_eq!(s02, 1.0, "non-adjacent pair must be a cross product");
        }

        #[test]
        fn selectivity_is_symmetric() {
            let m = StubModel::line(6, 2, 3);
            let a = TableSet::from_bits(0b000111);
            let b = TableSet::from_bits(0b111000);
            assert!((m.selectivity(a, b) - m.selectivity(b, a)).abs() < 1e-15);
        }

        #[test]
        fn restricted_join_requires_format_one() {
            let m = StubModel::line(3, 2, 1);
            let s0 = Plan::scan(&m, TableId::new(0), ScanOpId(0));
            let s1 = Plan::scan(&m, TableId::new(1), ScanOpId(0));
            let mut ops = Vec::new();
            m.join_ops(s0.view(), s1.view(), &mut ops);
            assert!(!ops.contains(&STUB_RESTRICTED_JOIN));

            // A format-1 inner (built by the materializing join op 2)
            // unlocks the restricted operator.
            let j = Plan::join(&m, s0.clone(), s1, JoinOpId(2));
            assert_eq!(j.format(), OutputFormat(1));
            let s2 = Plan::scan(&m, TableId::new(2), ScanOpId(0));
            ops.clear();
            m.join_ops(s2.view(), j.view(), &mut ops);
            assert!(ops.contains(&STUB_RESTRICTED_JOIN));
        }

        #[test]
        fn join_costs_accumulate() {
            let m = StubModel::line(2, 3, 5);
            let s0 = Plan::scan(&m, TableId::new(0), ScanOpId(0));
            let s1 = Plan::scan(&m, TableId::new(1), ScanOpId(1));
            let j = Plan::join(&m, s0.clone(), s1.clone(), JoinOpId(0));
            let summed = s0.cost().add(s1.cost());
            assert!(summed.dominates(j.cost()));
            assert!(summed.strictly_dominates(j.cost()));
        }

        #[test]
        fn operator_profiles_create_tradeoffs() {
            let m = StubModel::line(2, 2, 5);
            let s0 = Plan::scan(&m, TableId::new(0), ScanOpId(0));
            let s1 = Plan::scan(&m, TableId::new(1), ScanOpId(0));
            let j0 = Plan::join(&m, s0.clone(), s1.clone(), JoinOpId(0));
            let j1 = Plan::join(&m, s0, s1, JoinOpId(1));
            // Neither operator dominates the other: a genuine tradeoff.
            assert!(!j0.cost().dominates(j1.cost()));
            assert!(!j1.cost().dominates(j0.cost()));
        }
    }
}
