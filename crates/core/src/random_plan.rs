//! Uniform random bushy plan generation in `O(n)` (Lemma 1).
//!
//! `RandomPlan` in Algorithm 1 samples a random bushy query plan: a uniform
//! random binary tree whose leaves are a random permutation of the query
//! tables, with operators drawn uniformly among the applicable
//! implementations. The paper cites Quiroz's linear-time random tree
//! generation; we use Rémy's classic algorithm, which grows a uniform
//! leaf-labelled binary tree by repeatedly splitting a uniformly chosen node
//! — also `O(n)` and uniform over leaf-labelled tree shapes.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::arena::{PlanArena, PlanId};
use crate::model::CostModel;
use crate::plan::{Plan, PlanRef};
use crate::tables::{TableId, TableSet};

#[derive(Clone, Copy)]
enum RNode {
    Leaf,
    Internal { left: usize, right: usize },
}

/// Draws the shared randomness of one uniform bushy plan: the shuffled
/// table order and the Rémy tree shape. Both plan representations (the
/// `Arc<Plan>` builder and the arena builder) consume the RNG through this
/// one function, so a given seed yields the *same* plan on either path —
/// the property the arena-vs-legacy differential tests pin down.
fn random_shape<R>(query: TableSet, rng: &mut R) -> (Vec<TableId>, Vec<RNode>, usize)
where
    R: Rng + ?Sized,
{
    let mut tables: Vec<TableId> = query.iter().collect();
    assert!(!tables.is_empty(), "cannot plan an empty query");
    tables.shuffle(rng);
    let n = tables.len();

    if n == 1 {
        return (tables, Vec::new(), 0);
    }

    // Rémy's algorithm: grow a uniform binary tree with n leaves.
    let mut nodes: Vec<RNode> = Vec::with_capacity(2 * n - 1);
    let mut parent: Vec<usize> = Vec::with_capacity(2 * n - 1);
    const NO_PARENT: usize = usize::MAX;
    nodes.push(RNode::Leaf);
    parent.push(NO_PARENT);
    let mut root = 0usize;

    for _ in 1..n {
        // Choose a uniform existing node to split.
        let v = rng.random_range(0..nodes.len());
        let leaf = nodes.len();
        nodes.push(RNode::Leaf);
        parent.push(NO_PARENT);
        let internal = nodes.len();
        let (left, right) = if rng.random_bool(0.5) {
            (v, leaf)
        } else {
            (leaf, v)
        };
        nodes.push(RNode::Internal { left, right });
        parent.push(parent[v]);

        let p = parent[v];
        if p == NO_PARENT {
            root = internal;
        } else if let RNode::Internal {
            ref mut left,
            ref mut right,
        } = nodes[p]
        {
            if *left == v {
                *left = internal;
            } else {
                debug_assert_eq!(*right, v);
                *right = internal;
            }
        }
        parent[v] = internal;
        parent[leaf] = internal;
    }
    (tables, nodes, root)
}

/// Generates a uniform random bushy plan for `query` under `model`.
///
/// # Panics
/// Panics if `query` is empty.
pub fn random_plan<M, R>(model: &M, query: TableSet, rng: &mut R) -> PlanRef
where
    M: CostModel + ?Sized,
    R: Rng + ?Sized,
{
    let (tables, nodes, root) = random_shape(query, rng);
    if tables.len() == 1 {
        return random_scan(model, tables[0], rng);
    }
    // Assign the shuffled tables to leaves and build the plan bottom-up.
    let mut next_table = 0usize;
    build(model, &nodes, root, &tables, &mut next_table, rng)
}

/// [`random_plan`] building into a hash-consed arena: same distribution,
/// same RNG consumption, but already-seen subplans are interned instead of
/// reallocated.
///
/// # Panics
/// Panics if `query` is empty.
pub fn random_plan_in<M, R>(
    arena: &mut PlanArena,
    model: &M,
    query: TableSet,
    rng: &mut R,
) -> PlanId
where
    M: CostModel + ?Sized,
    R: Rng + ?Sized,
{
    let (tables, nodes, root) = random_shape(query, rng);
    if tables.len() == 1 {
        return random_scan_in(arena, model, tables[0], rng);
    }
    let mut next_table = 0usize;
    build_in(arena, model, &nodes, root, &tables, &mut next_table, rng)
}

fn build<M, R>(
    model: &M,
    nodes: &[RNode],
    idx: usize,
    tables: &[TableId],
    next_table: &mut usize,
    rng: &mut R,
) -> PlanRef
where
    M: CostModel + ?Sized,
    R: Rng + ?Sized,
{
    match nodes[idx] {
        RNode::Leaf => {
            let t = tables[*next_table];
            *next_table += 1;
            random_scan(model, t, rng)
        }
        RNode::Internal { left, right } => {
            let outer = build(model, nodes, left, tables, next_table, rng);
            let inner = build(model, nodes, right, tables, next_table, rng);
            random_join(model, outer, inner, rng)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn build_in<M, R>(
    arena: &mut PlanArena,
    model: &M,
    nodes: &[RNode],
    idx: usize,
    tables: &[TableId],
    next_table: &mut usize,
    rng: &mut R,
) -> PlanId
where
    M: CostModel + ?Sized,
    R: Rng + ?Sized,
{
    match nodes[idx] {
        RNode::Leaf => {
            let t = tables[*next_table];
            *next_table += 1;
            random_scan_in(arena, model, t, rng)
        }
        RNode::Internal { left, right } => {
            let outer = build_in(arena, model, nodes, left, tables, next_table, rng);
            let inner = build_in(arena, model, nodes, right, tables, next_table, rng);
            random_join_in(arena, model, outer, inner, rng)
        }
    }
}

/// Builds a scan of `table` with a uniformly chosen scan operator.
pub fn random_scan<M, R>(model: &M, table: TableId, rng: &mut R) -> PlanRef
where
    M: CostModel + ?Sized,
    R: Rng + ?Sized,
{
    let ops = model.scan_ops(table);
    assert!(!ops.is_empty(), "model must offer a scan operator");
    let op = ops[rng.random_range(0..ops.len())];
    Plan::scan(model, table, op)
}

/// Joins two plans with a uniformly chosen applicable join operator.
///
/// # Panics
/// Panics if the model offers no applicable join operator (a violation of
/// the [`CostModel`] contract).
pub fn random_join<M, R>(model: &M, outer: PlanRef, inner: PlanRef, rng: &mut R) -> PlanRef
where
    M: CostModel + ?Sized,
    R: Rng + ?Sized,
{
    let mut ops = Vec::new();
    model.join_ops(outer.view(), inner.view(), &mut ops);
    assert!(
        !ops.is_empty(),
        "model must offer a join operator for every operand format pair"
    );
    let op = ops[rng.random_range(0..ops.len())];
    Plan::join(model, outer, inner, op)
}

/// Arena analogue of [`random_scan`].
pub fn random_scan_in<M, R>(arena: &mut PlanArena, model: &M, table: TableId, rng: &mut R) -> PlanId
where
    M: CostModel + ?Sized,
    R: Rng + ?Sized,
{
    let ops = model.scan_ops(table);
    assert!(!ops.is_empty(), "model must offer a scan operator");
    let op = ops[rng.random_range(0..ops.len())];
    arena.scan(model, table, op)
}

/// Arena analogue of [`random_join`].
///
/// # Panics
/// Panics if the model offers no applicable join operator (a violation of
/// the [`CostModel`] contract).
pub fn random_join_in<M, R>(
    arena: &mut PlanArena,
    model: &M,
    outer: PlanId,
    inner: PlanId,
    rng: &mut R,
) -> PlanId
where
    M: CostModel + ?Sized,
    R: Rng + ?Sized,
{
    let mut ops = Vec::new();
    model.join_ops(&arena.view(outer), &arena.view(inner), &mut ops);
    assert!(
        !ops.is_empty(),
        "model must offer a join operator for every operand format pair"
    );
    let op = ops[rng.random_range(0..ops.len())];
    arena.join(model, outer, inner, op)
}

/// Generates a random **left-deep** plan: the paper notes (§4.1) that the
/// algorithm adapts to restricted join-order spaces by exchanging the random
/// plan generator; this is the standard alternative space.
pub fn random_left_deep_plan<M, R>(model: &M, query: TableSet, rng: &mut R) -> PlanRef
where
    M: CostModel + ?Sized,
    R: Rng + ?Sized,
{
    let mut tables: Vec<TableId> = query.iter().collect();
    assert!(!tables.is_empty(), "cannot plan an empty query");
    tables.shuffle(rng);
    let mut plan = random_scan(model, tables[0], rng);
    for &t in &tables[1..] {
        let scan = random_scan(model, t, rng);
        plan = random_join(model, plan, scan, rng);
    }
    plan
}

/// Arena analogue of [`random_left_deep_plan`] (same distribution and RNG
/// consumption).
pub fn random_left_deep_plan_in<M, R>(
    arena: &mut PlanArena,
    model: &M,
    query: TableSet,
    rng: &mut R,
) -> PlanId
where
    M: CostModel + ?Sized,
    R: Rng + ?Sized,
{
    let mut tables: Vec<TableId> = query.iter().collect();
    assert!(!tables.is_empty(), "cannot plan an empty query");
    tables.shuffle(rng);
    let mut plan = random_scan_in(arena, model, tables[0], rng);
    for &t in &tables[1..] {
        let scan = random_scan_in(arena, model, t, rng);
        plan = random_join_in(arena, model, plan, scan, rng);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testing::StubModel;
    use crate::plan::PlanKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_table_yields_scan() {
        let m = StubModel::line(1, 2, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let p = random_plan(&m, TableSet::prefix(1), &mut rng);
        assert!(!p.is_join());
        assert!(p.validate(TableSet::prefix(1)).is_ok());
    }

    #[test]
    fn plans_are_structurally_valid() {
        let m = StubModel::line(12, 2, 1);
        let q = TableSet::prefix(12);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let p = random_plan(&m, q, &mut rng);
            assert!(p.validate(q).is_ok());
            assert_eq!(p.node_count(), 2 * 12 - 1);
        }
    }

    #[test]
    fn subsets_of_tables_are_respected() {
        let m = StubModel::line(8, 2, 1);
        let q = TableSet::from_bits(0b1010_1010);
        let mut rng = StdRng::seed_from_u64(3);
        let p = random_plan(&m, q, &mut rng);
        assert!(p.validate(q).is_ok());
        assert_eq!(p.rel(), q);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let m = StubModel::line(10, 2, 1);
        let q = TableSet::prefix(10);
        let a = random_plan(&m, q, &mut StdRng::seed_from_u64(42));
        let b = random_plan(&m, q, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.display(&m), b.display(&m));
        assert_eq!(a.cost().as_slice(), b.cost().as_slice());
    }

    #[test]
    fn tree_shapes_are_spread_out() {
        // For 4 leaves there are 5 binary tree shapes; a uniform sampler
        // must produce several distinct shapes (and left-deep trees must not
        // absorb all the mass).
        let m = StubModel::line(4, 1, 1);
        let q = TableSet::prefix(4);
        let mut rng = StdRng::seed_from_u64(7);
        let mut shapes = std::collections::HashSet::new();
        let mut bushy = 0usize;
        for _ in 0..200 {
            let p = random_plan(&m, q, &mut rng);
            shapes.insert(shape_string(&p));
            if p.depth() == 3 {
                bushy += 1; // balanced shape: depth 3 instead of 4
            }
        }
        assert!(shapes.len() >= 4, "only {} shapes observed", shapes.len());
        assert!(bushy > 10, "balanced shapes too rare: {bushy}/200");
    }

    fn shape_string(p: &PlanRef) -> String {
        match p.kind() {
            PlanKind::Scan { .. } => "L".into(),
            PlanKind::Join { outer, inner, .. } => {
                format!("({}{})", shape_string(outer), shape_string(inner))
            }
        }
    }

    #[test]
    fn left_deep_plans_have_scan_inners() {
        let m = StubModel::line(9, 2, 1);
        let q = TableSet::prefix(9);
        let mut rng = StdRng::seed_from_u64(5);
        let p = random_left_deep_plan(&m, q, &mut rng);
        assert!(p.validate(q).is_ok());
        let mut node = p;
        while let PlanKind::Join { outer, inner, .. } = node.kind() {
            assert!(!inner.is_join(), "left-deep plan has a join inner");
            node = outer.clone();
        }
    }

    #[test]
    fn leaf_labels_are_shuffled() {
        // Two different seeds should (almost surely) produce different
        // table orders for a 10-table query.
        let m = StubModel::line(10, 2, 1);
        let q = TableSet::prefix(10);
        let a = random_plan(&m, q, &mut StdRng::seed_from_u64(1));
        let b = random_plan(&m, q, &mut StdRng::seed_from_u64(2));
        assert_ne!(a.display(&m), b.display(&m));
    }
}
