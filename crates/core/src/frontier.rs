//! `ApproximateFrontiers` (Algorithm 3): Pareto frontier approximation for
//! every intermediate result of a locally optimal plan.
//!
//! Given the plan produced by hill climbing, the function traverses its join
//! tree in post-order and approximates, for each intermediate result,
//! the Pareto frontier over (a) every operator combination for that join
//! order and (b) every non-dominated partial plan already cached for the
//! same intermediate result — cached plans may use *different join orders*
//! discovered in earlier iterations, which is how information is shared
//! across iterations of the main loop (§4.3).
//!
//! The per-table-set frontiers are pruned under a caller-supplied
//! [`Admission`] — typically per-metric approximate pruning whose factors
//! start coarse and are refined as iterations progress
//! (`α(i) = 25 · 0.99^⌊i/25⌋`, clamped below at 1; see
//! [`EpsSchedule`](crate::archive::EpsSchedule) and
//! [`ArchiveConfig`](crate::archive::ArchiveConfig), which derive the
//! admission per iteration). Coarse early precision keeps the dominant-cost
//! frontier approximation cheap while many join orders are still being
//! explored; late fine precision converges the cached frontiers towards the
//! true Pareto sets.

use crate::archive::Admission;
use crate::arena::{PlanArena, PlanId, PlanNodeKind};
use crate::cache::PlanCache;
use crate::model::{CostModel, JoinOpId};
use crate::plan::{Plan, PlanKind, PlanRef};
use crate::tables::TableSet;

/// Reusable buffers for [`approximate_frontiers_with`]: the operand
/// frontier snapshots (copied out because the cache is mutated while the
/// pairs are combined) and the per-pair operator list. One scratch serves a
/// whole traversal — the recursion uses the buffers transiently between
/// recursive calls — and the RMQ main loop reuses one across iterations so
/// the traversal runs allocation-free in steady state.
///
/// Generic over the plan handle like [`PlanCache`]: the arena traversal
/// ([`approximate_frontiers_in`]) snapshots `Copy` [`PlanId`]s instead of
/// bumping `Arc` refcounts.
#[derive(Debug)]
pub struct FrontierScratch<P = PlanRef> {
    outer_plans: Vec<P>,
    inner_plans: Vec<P>,
    ops: Vec<JoinOpId>,
}

impl<P> Default for FrontierScratch<P> {
    fn default() -> Self {
        FrontierScratch {
            outer_plans: Vec::new(),
            inner_plans: Vec::new(),
            ops: Vec::new(),
        }
    }
}

/// Approximates the Pareto frontiers of all intermediate results occurring
/// in `p`, inserting the non-dominated partial plans into `cache` under the
/// given admission (Algorithm 3, with the precision choice hoisted to the
/// caller so the same code serves the ablation schedules and the ε-box
/// archive policy).
pub fn approximate_frontiers<M>(
    p: &PlanRef,
    model: &M,
    cache: &mut PlanCache,
    admission: &Admission,
) where
    M: CostModel + ?Sized,
{
    approximate_frontiers_with(p, model, cache, admission, &mut FrontierScratch::default())
}

/// [`approximate_frontiers`] with caller-provided scratch buffers.
///
/// Candidate partial plans are costed first and admission-tested against
/// the cached frontier ([`PlanCache::insert_with`]); the `Arc<Plan>` is
/// only allocated for the candidates that survive pruning, which under a
/// coarse α is a small fraction of the operator combinations enumerated.
pub fn approximate_frontiers_with<M>(
    p: &PlanRef,
    model: &M,
    cache: &mut PlanCache,
    admission: &Admission,
    scratch: &mut FrontierScratch,
) where
    M: CostModel + ?Sized,
{
    match p.kind() {
        PlanKind::Scan { table, .. } => {
            let rel = TableSet::singleton(*table);
            for &op in model.scan_ops(*table) {
                let props = model.scan_props(*table, op);
                cache.insert_with(rel, &props.cost, props.format, admission, || {
                    Plan::scan_from_props(*table, op, props)
                });
            }
        }
        PlanKind::Join { outer, inner, .. } => {
            // Approximate the operand frontiers first (post-order; both
            // recursive calls finish before this level uses the scratch).
            approximate_frontiers_with(outer, model, cache, admission, scratch);
            approximate_frontiers_with(inner, model, cache, admission, scratch);
            // Combine every cached outer/inner Pareto plan pair with every
            // applicable join operator. The cached plans may stem from
            // other join orders found in earlier iterations.
            let FrontierScratch {
                outer_plans,
                inner_plans,
                ops,
            } = scratch;
            outer_plans.clear();
            outer_plans.extend_from_slice(cache.frontier(outer.rel()));
            inner_plans.clear();
            inner_plans.extend_from_slice(cache.frontier(inner.rel()));
            for o in outer_plans.iter() {
                // Views are hoisted out of the candidate loops: one copy
                // per operand pair, reused across every operator.
                let vo = o.view();
                for i in inner_plans.iter() {
                    let vi = i.view();
                    ops.clear();
                    model.join_ops(vo, vi, ops);
                    let rel = o.rel().union(i.rel());
                    for &op in ops.iter() {
                        let props = model.join_props(vo, vi, op);
                        cache.insert_with(rel, &props.cost, props.format, admission, || {
                            Plan::join_from_props(o.clone(), i.clone(), op, props)
                        });
                    }
                }
            }
        }
    }
}

/// Arena analogue of [`approximate_frontiers_with`]: identical traversal
/// order and pruning decisions over a `PlanCache<PlanId>` keyed into
/// `arena`. Admitted candidates intern their root; rejected ones allocate
/// nothing (and on an intern hit even admission is allocation-free).
pub fn approximate_frontiers_in<M>(
    arena: &mut PlanArena,
    p: PlanId,
    model: &M,
    cache: &mut PlanCache<PlanId>,
    admission: &Admission,
    scratch: &mut FrontierScratch<PlanId>,
) where
    M: CostModel + ?Sized,
{
    match arena.node(p).kind() {
        PlanNodeKind::Scan { table, .. } => {
            let rel = TableSet::singleton(table);
            for &op in model.scan_ops(table) {
                let props = model.scan_props(table, op);
                cache.insert_with(rel, &props.cost, props.format, admission, || {
                    arena.scan_from_props(table, op, props)
                });
            }
        }
        PlanNodeKind::Join { outer, inner, .. } => {
            // Post-order: operand frontiers first.
            approximate_frontiers_in(arena, outer, model, cache, admission, scratch);
            approximate_frontiers_in(arena, inner, model, cache, admission, scratch);
            let FrontierScratch {
                outer_plans,
                inner_plans,
                ops,
            } = scratch;
            let (outer_rel, inner_rel) = (arena.node(outer).rel(), arena.node(inner).rel());
            outer_plans.clear();
            outer_plans.extend_from_slice(cache.frontier(outer_rel));
            inner_plans.clear();
            inner_plans.extend_from_slice(cache.frontier(inner_rel));
            let rel = outer_rel.union(inner_rel);
            for &o in outer_plans.iter() {
                // One view copy per operand pair, reused across operators.
                let vo = arena.view(o);
                for &i in inner_plans.iter() {
                    let vi = arena.view(i);
                    ops.clear();
                    model.join_ops(&vo, &vi, ops);
                    for &op in ops.iter() {
                        // Candidates are costed through the model, not via
                        // an intern-map probe: in a session-sized arena the
                        // probe is a cache-missing hash lookup, measurably
                        // slower than recomputing L1-resident model math.
                        // Interning happens only on admission (the rare
                        // path), where it replaces the old Arc allocation.
                        let props = model.join_props(&vo, &vi, op);
                        cache.insert_with(rel, &props.cost, props.format, admission, || {
                            arena.join_from_props(o, i, op, props)
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climb::{pareto_climb, ClimbConfig};
    use crate::model::testing::StubModel;
    use crate::random_plan::random_plan;
    use crate::tables::TableSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frontiers_cover_every_intermediate_result() {
        let m = StubModel::line(6, 2, 3);
        let q = TableSet::prefix(6);
        let p = random_plan(&m, q, &mut StdRng::seed_from_u64(1));
        let mut cache = PlanCache::new();
        approximate_frontiers(&p, &m, &mut cache, &Admission::exact());
        // Every node of p has a non-empty cached frontier.
        p.visit_post_order(&mut |node| {
            assert!(
                !cache.frontier(node.rel()).is_empty(),
                "no frontier for {}",
                node.rel()
            );
        });
        assert!(cache.check_invariant());
        // A plan with n tables has 2n-1 nodes but n leaf rels may repeat
        // only if tables repeat (they don't): distinct rel count = 2n-1.
        assert_eq!(cache.num_table_sets(), 11);
    }

    #[test]
    fn cached_root_plans_are_valid_and_include_tradeoffs() {
        let m = StubModel::line(5, 2, 7);
        let q = TableSet::prefix(5);
        let p = random_plan(&m, q, &mut StdRng::seed_from_u64(2));
        let mut cache = PlanCache::new();
        approximate_frontiers(&p, &m, &mut cache, &Admission::exact());
        let frontier = cache.frontier(q);
        assert!(!frontier.is_empty());
        for plan in frontier {
            assert!(plan.validate(q).is_ok());
        }
        // With exact pruning and StubModel's antagonistic operators, the
        // root frontier should retain more than one tradeoff.
        assert!(
            frontier.len() >= 2,
            "expected multiple tradeoffs, got {}",
            frontier.len()
        );
    }

    #[test]
    fn coarser_alpha_yields_no_larger_frontiers() {
        let m = StubModel::line(6, 3, 9);
        let q = TableSet::prefix(6);
        let p = random_plan(&m, q, &mut StdRng::seed_from_u64(3));
        let mut fine = PlanCache::new();
        approximate_frontiers(&p, &m, &mut fine, &Admission::exact());
        let mut coarse = PlanCache::new();
        approximate_frontiers(&p, &m, &mut coarse, &Admission::approx(10.0));
        assert!(
            coarse.frontier(q).len() <= fine.frontier(q).len(),
            "coarse {} > fine {}",
            coarse.frontier(q).len(),
            fine.frontier(q).len()
        );
        assert!(coarse.total_plans() <= fine.total_plans());
    }

    #[test]
    fn repeated_invocations_reuse_cached_partial_plans() {
        // Running the approximation for a *different* plan over the same
        // tables must consider (and possibly keep) plans cached earlier:
        // the root frontier never regresses across iterations.
        let m = StubModel::line(6, 2, 11);
        let q = TableSet::prefix(6);
        let mut rng = StdRng::seed_from_u64(4);
        let mut cache = PlanCache::new();
        let cfg = ClimbConfig::default();
        let mut prev_len = 0usize;
        for _ in 0..5 {
            let p = random_plan(&m, q, &mut rng);
            let (opt, _) = pareto_climb(p, &m, &cfg);
            approximate_frontiers(&opt, &m, &mut cache, &Admission::exact());
            let len = cache.frontier(q).len();
            assert!(len >= prev_len.min(len)); // never empty once filled
            prev_len = len;
            assert!(!cache.frontier(q).is_empty());
        }
        assert!(cache.check_invariant());
    }
}
