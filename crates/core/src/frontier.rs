//! `ApproximateFrontiers` (Algorithm 3): Pareto frontier approximation for
//! every intermediate result of a locally optimal plan.
//!
//! Given the plan produced by hill climbing, the function traverses its join
//! tree in post-order and approximates, for each intermediate result,
//! the Pareto frontier over (a) every operator combination for that join
//! order and (b) every non-dominated partial plan already cached for the
//! same intermediate result — cached plans may use *different join orders*
//! discovered in earlier iterations, which is how information is shared
//! across iterations of the main loop (§4.3).
//!
//! The per-table-set frontiers are pruned with an approximation factor that
//! starts coarse and is refined as iterations progress:
//! `α(i) = 25 · 0.99^⌊i/25⌋` (clamped below at 1; the paper's formula
//! eventually drops below 1 where α-dominance is undefined). Coarse early
//! precision keeps the dominant-cost frontier approximation cheap while many
//! join orders are still being explored; late fine precision converges the
//! cached frontiers towards the true Pareto sets.

use crate::arena::{PlanArena, PlanId, PlanNodeKind};
use crate::cache::PlanCache;
use crate::model::{CostModel, JoinOpId};
use crate::plan::{Plan, PlanKind, PlanRef};
use crate::tables::TableSet;

/// Precision schedule for the approximation factor `α` as a function of the
/// main-loop iteration counter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AlphaSchedule {
    /// Geometric refinement `α(i) = max(1, start · decay^⌊i/period⌋)`.
    Geometric {
        /// Initial approximation factor.
        start: f64,
        /// Multiplicative decay applied every `period` iterations.
        decay: f64,
        /// Number of iterations between decay steps.
        period: u64,
    },
    /// Constant approximation factor (used by the α-schedule ablation).
    Fixed(f64),
}

impl AlphaSchedule {
    /// The paper's schedule: `α(i) = 25 · 0.99^⌊i/25⌋`.
    pub const fn paper() -> Self {
        AlphaSchedule::Geometric {
            start: 25.0,
            decay: 0.99,
            period: 25,
        }
    }

    /// The approximation factor for iteration `i` (1-based), clamped at 1.
    pub fn alpha(&self, iteration: u64) -> f64 {
        match *self {
            AlphaSchedule::Geometric {
                start,
                decay,
                period,
            } => {
                let exponent = (iteration / period.max(1)) as f64;
                (start * decay.powf(exponent)).max(1.0)
            }
            AlphaSchedule::Fixed(alpha) => alpha.max(1.0),
        }
    }
}

impl Default for AlphaSchedule {
    fn default() -> Self {
        AlphaSchedule::paper()
    }
}

/// Reusable buffers for [`approximate_frontiers_with`]: the operand
/// frontier snapshots (copied out because the cache is mutated while the
/// pairs are combined) and the per-pair operator list. One scratch serves a
/// whole traversal — the recursion uses the buffers transiently between
/// recursive calls — and the RMQ main loop reuses one across iterations so
/// the traversal runs allocation-free in steady state.
///
/// Generic over the plan handle like [`PlanCache`]: the arena traversal
/// ([`approximate_frontiers_in`]) snapshots `Copy` [`PlanId`]s instead of
/// bumping `Arc` refcounts.
#[derive(Debug)]
pub struct FrontierScratch<P = PlanRef> {
    outer_plans: Vec<P>,
    inner_plans: Vec<P>,
    ops: Vec<JoinOpId>,
}

impl<P> Default for FrontierScratch<P> {
    fn default() -> Self {
        FrontierScratch {
            outer_plans: Vec::new(),
            inner_plans: Vec::new(),
            ops: Vec::new(),
        }
    }
}

/// Approximates the Pareto frontiers of all intermediate results occurring
/// in `p`, inserting the non-dominated partial plans into `cache` with
/// approximation factor `alpha` (Algorithm 3, with the α choice hoisted to
/// the caller so the same code serves the ablation schedules).
pub fn approximate_frontiers<M>(p: &PlanRef, model: &M, cache: &mut PlanCache, alpha: f64)
where
    M: CostModel + ?Sized,
{
    approximate_frontiers_with(p, model, cache, alpha, &mut FrontierScratch::default())
}

/// [`approximate_frontiers`] with caller-provided scratch buffers.
///
/// Candidate partial plans are costed first and admission-tested against
/// the cached frontier ([`PlanCache::insert_with`]); the `Arc<Plan>` is
/// only allocated for the candidates that survive pruning, which under a
/// coarse α is a small fraction of the operator combinations enumerated.
pub fn approximate_frontiers_with<M>(
    p: &PlanRef,
    model: &M,
    cache: &mut PlanCache,
    alpha: f64,
    scratch: &mut FrontierScratch,
) where
    M: CostModel + ?Sized,
{
    match p.kind() {
        PlanKind::Scan { table, .. } => {
            let rel = TableSet::singleton(*table);
            for &op in model.scan_ops(*table) {
                let props = model.scan_props(*table, op);
                cache.insert_with(rel, &props.cost, props.format, alpha, || {
                    Plan::scan_from_props(*table, op, props)
                });
            }
        }
        PlanKind::Join { outer, inner, .. } => {
            // Approximate the operand frontiers first (post-order; both
            // recursive calls finish before this level uses the scratch).
            approximate_frontiers_with(outer, model, cache, alpha, scratch);
            approximate_frontiers_with(inner, model, cache, alpha, scratch);
            // Combine every cached outer/inner Pareto plan pair with every
            // applicable join operator. The cached plans may stem from
            // other join orders found in earlier iterations.
            let FrontierScratch {
                outer_plans,
                inner_plans,
                ops,
            } = scratch;
            outer_plans.clear();
            outer_plans.extend_from_slice(cache.frontier(outer.rel()));
            inner_plans.clear();
            inner_plans.extend_from_slice(cache.frontier(inner.rel()));
            for o in outer_plans.iter() {
                // Views are hoisted out of the candidate loops: one copy
                // per operand pair, reused across every operator.
                let vo = o.view();
                for i in inner_plans.iter() {
                    let vi = i.view();
                    ops.clear();
                    model.join_ops(vo, vi, ops);
                    let rel = o.rel().union(i.rel());
                    for &op in ops.iter() {
                        let props = model.join_props(vo, vi, op);
                        cache.insert_with(rel, &props.cost, props.format, alpha, || {
                            Plan::join_from_props(o.clone(), i.clone(), op, props)
                        });
                    }
                }
            }
        }
    }
}

/// Arena analogue of [`approximate_frontiers_with`]: identical traversal
/// order and pruning decisions over a `PlanCache<PlanId>` keyed into
/// `arena`. Admitted candidates intern their root; rejected ones allocate
/// nothing (and on an intern hit even admission is allocation-free).
pub fn approximate_frontiers_in<M>(
    arena: &mut PlanArena,
    p: PlanId,
    model: &M,
    cache: &mut PlanCache<PlanId>,
    alpha: f64,
    scratch: &mut FrontierScratch<PlanId>,
) where
    M: CostModel + ?Sized,
{
    match arena.node(p).kind() {
        PlanNodeKind::Scan { table, .. } => {
            let rel = TableSet::singleton(table);
            for &op in model.scan_ops(table) {
                let props = model.scan_props(table, op);
                cache.insert_with(rel, &props.cost, props.format, alpha, || {
                    arena.scan_from_props(table, op, props)
                });
            }
        }
        PlanNodeKind::Join { outer, inner, .. } => {
            // Post-order: operand frontiers first.
            approximate_frontiers_in(arena, outer, model, cache, alpha, scratch);
            approximate_frontiers_in(arena, inner, model, cache, alpha, scratch);
            let FrontierScratch {
                outer_plans,
                inner_plans,
                ops,
            } = scratch;
            let (outer_rel, inner_rel) = (arena.node(outer).rel(), arena.node(inner).rel());
            outer_plans.clear();
            outer_plans.extend_from_slice(cache.frontier(outer_rel));
            inner_plans.clear();
            inner_plans.extend_from_slice(cache.frontier(inner_rel));
            let rel = outer_rel.union(inner_rel);
            for &o in outer_plans.iter() {
                // One view copy per operand pair, reused across operators.
                let vo = arena.view(o);
                for &i in inner_plans.iter() {
                    let vi = arena.view(i);
                    ops.clear();
                    model.join_ops(&vo, &vi, ops);
                    for &op in ops.iter() {
                        // Candidates are costed through the model, not via
                        // an intern-map probe: in a session-sized arena the
                        // probe is a cache-missing hash lookup, measurably
                        // slower than recomputing L1-resident model math.
                        // Interning happens only on admission (the rare
                        // path), where it replaces the old Arc allocation.
                        let props = model.join_props(&vo, &vi, op);
                        cache.insert_with(rel, &props.cost, props.format, alpha, || {
                            arena.join_from_props(o, i, op, props)
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climb::{pareto_climb, ClimbConfig};
    use crate::model::testing::StubModel;
    use crate::random_plan::random_plan;
    use crate::tables::TableSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_schedule_values() {
        let s = AlphaSchedule::paper();
        assert_eq!(s.alpha(1), 25.0);
        assert_eq!(s.alpha(24), 25.0);
        assert!((s.alpha(25) - 25.0 * 0.99).abs() < 1e-12);
        assert!((s.alpha(250) - 25.0 * 0.99f64.powi(10)).abs() < 1e-12);
        // Eventually clamped at 1 instead of dropping below.
        assert_eq!(s.alpha(1_000_000), 1.0);
    }

    #[test]
    fn fixed_schedule_is_constant_and_clamped() {
        assert_eq!(AlphaSchedule::Fixed(2.5).alpha(1), 2.5);
        assert_eq!(AlphaSchedule::Fixed(2.5).alpha(999), 2.5);
        assert_eq!(AlphaSchedule::Fixed(0.5).alpha(1), 1.0);
    }

    #[test]
    fn geometric_schedule_never_yields_alpha_below_one() {
        // The doc contract says α is "clamped below at 1": α-dominance is
        // undefined for α < 1 (`approx_dominates` debug-asserts α ≥ 1), so
        // a sub-1 α would panic deep inside frontier pruning. Sweep the
        // paper schedule far past its clamp point plus adversarial
        // parameterizations (sub-1 start, zero decay, degenerate period,
        // iteration extremes) and require α ≥ 1 everywhere.
        let schedules = [
            AlphaSchedule::paper(),
            AlphaSchedule::Geometric {
                start: 0.25, // starts below the clamp already
                decay: 0.5,
                period: 1,
            },
            AlphaSchedule::Geometric {
                start: 1e9,
                decay: 0.0, // collapses to 0 after one period
                period: 3,
            },
            AlphaSchedule::Geometric {
                start: 25.0,
                decay: 0.99,
                period: 0, // degenerate period must not divide by zero
            },
        ];
        for schedule in schedules {
            for i in (0..10_000).chain([100_000, 10_000_000, u64::MAX - 1, u64::MAX]) {
                let alpha = schedule.alpha(i);
                assert!(
                    alpha >= 1.0,
                    "{schedule:?} yielded alpha {alpha} < 1 at iteration {i}"
                );
            }
        }
    }

    #[test]
    fn frontiers_cover_every_intermediate_result() {
        let m = StubModel::line(6, 2, 3);
        let q = TableSet::prefix(6);
        let p = random_plan(&m, q, &mut StdRng::seed_from_u64(1));
        let mut cache = PlanCache::new();
        approximate_frontiers(&p, &m, &mut cache, 1.0);
        // Every node of p has a non-empty cached frontier.
        p.visit_post_order(&mut |node| {
            assert!(
                !cache.frontier(node.rel()).is_empty(),
                "no frontier for {}",
                node.rel()
            );
        });
        assert!(cache.check_invariant());
        // A plan with n tables has 2n-1 nodes but n leaf rels may repeat
        // only if tables repeat (they don't): distinct rel count = 2n-1.
        assert_eq!(cache.num_table_sets(), 11);
    }

    #[test]
    fn cached_root_plans_are_valid_and_include_tradeoffs() {
        let m = StubModel::line(5, 2, 7);
        let q = TableSet::prefix(5);
        let p = random_plan(&m, q, &mut StdRng::seed_from_u64(2));
        let mut cache = PlanCache::new();
        approximate_frontiers(&p, &m, &mut cache, 1.0);
        let frontier = cache.frontier(q);
        assert!(!frontier.is_empty());
        for plan in frontier {
            assert!(plan.validate(q).is_ok());
        }
        // With exact pruning and StubModel's antagonistic operators, the
        // root frontier should retain more than one tradeoff.
        assert!(
            frontier.len() >= 2,
            "expected multiple tradeoffs, got {}",
            frontier.len()
        );
    }

    #[test]
    fn coarser_alpha_yields_no_larger_frontiers() {
        let m = StubModel::line(6, 3, 9);
        let q = TableSet::prefix(6);
        let p = random_plan(&m, q, &mut StdRng::seed_from_u64(3));
        let mut fine = PlanCache::new();
        approximate_frontiers(&p, &m, &mut fine, 1.0);
        let mut coarse = PlanCache::new();
        approximate_frontiers(&p, &m, &mut coarse, 10.0);
        assert!(
            coarse.frontier(q).len() <= fine.frontier(q).len(),
            "coarse {} > fine {}",
            coarse.frontier(q).len(),
            fine.frontier(q).len()
        );
        assert!(coarse.total_plans() <= fine.total_plans());
    }

    #[test]
    fn repeated_invocations_reuse_cached_partial_plans() {
        // Running the approximation for a *different* plan over the same
        // tables must consider (and possibly keep) plans cached earlier:
        // the root frontier never regresses across iterations.
        let m = StubModel::line(6, 2, 11);
        let q = TableSet::prefix(6);
        let mut rng = StdRng::seed_from_u64(4);
        let mut cache = PlanCache::new();
        let cfg = ClimbConfig::default();
        let mut prev_len = 0usize;
        for _ in 0..5 {
            let p = random_plan(&m, q, &mut rng);
            let (opt, _) = pareto_climb(p, &m, &cfg);
            approximate_frontiers(&opt, &m, &mut cache, 1.0);
            let len = cache.frontier(q).len();
            assert!(len >= prev_len.min(len)); // never empty once filled
            prev_len = len;
            assert!(!cache.frontier(q).is_empty());
        }
        assert!(cache.check_invariant());
    }
}
