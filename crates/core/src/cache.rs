//! The partial-plan cache `P` of Algorithm 1.
//!
//! The cache maps every intermediate result (a table set `s ⊆ q`)
//! encountered so far to a set of non-dominated partial plans generating it.
//! It is the paper's mechanism for sharing information across iterations of
//! the main loop (§4.3): newly generated plans are decomposed and dominated
//! sub-plans are replaced by cached partial plans, so over time the cache
//! approaches the partial-plan tables of the dynamic-programming
//! approximation schemes — but only for table sets that actually occur in
//! locally Pareto-optimal plans.

use crate::archive::Admission;
use crate::cost::CostVector;
use crate::fxhash::FxHashMap;
use crate::model::OutputFormat;
use crate::pareto::{ParetoSet, ScreenCounters};
use crate::plan::PlanRef;
use crate::tables::TableSet;

/// Plan cache: intermediate result (table set) → pruned partial plans.
///
/// Generic over the stored plan handle `P`, like [`ParetoSet`]: the RMQ
/// main loop keys a `PlanCache<PlanId>` over its session arena (cache hits
/// and insertions move `Copy` integers), while `PlanCache<PlanRef>` (the
/// default) serves `Arc<Plan>` consumers and tests.
#[derive(Debug)]
pub struct PlanCache<P = PlanRef> {
    map: FxHashMap<TableSet, ParetoSet<P>>,
    insertions: u64,
    rejections: u64,
    /// Screening tallies drained from the per-table-set frontiers after
    /// every insertion (see [`PlanCache::take_screen_counters`]).
    screen: ScreenCounters,
}

impl<P> Default for PlanCache<P> {
    fn default() -> Self {
        PlanCache {
            map: FxHashMap::default(),
            insertions: 0,
            rejections: 0,
            screen: ScreenCounters::default(),
        }
    }
}

impl<P> PlanCache<P> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The cached frontier for table set `rel` (`P[rel]` in the paper);
    /// empty if the table set was never seen.
    #[inline]
    pub fn frontier(&self, rel: TableSet) -> &[P] {
        self.map.get(&rel).map_or(&[], |s| s.plans())
    }

    /// The cached frontier for `rel` as the underlying [`ParetoSet`]
    /// (members plus inline cost metadata), `None` if the table set was
    /// never seen. The batch-merge entry point of the parallel optimizer:
    /// [`ParetoSet::merge_with`] reads candidate costs from here without
    /// re-deriving them from plan handles.
    #[inline]
    pub fn frontier_set(&self, rel: TableSet) -> Option<&ParetoSet<P>> {
        self.map.get(&rel)
    }

    /// Inserts a candidate described by its table set, cost vector and
    /// output format, materializing it via `make` only on admission
    /// ([`ParetoSet::admit`]) — the hot-path entry point of the frontier
    /// approximation, where most operator combinations are pruned and must
    /// not allocate. The materialized plan must match `rel`, `cost` and
    /// `format`. Returns `true` iff the candidate was kept.
    pub fn insert_with(
        &mut self,
        rel: TableSet,
        cost: &CostVector,
        format: OutputFormat,
        admission: &Admission,
        make: impl FnOnce() -> P,
    ) -> bool {
        let set = self.map.entry(rel).or_default();
        let kept = set.admit(cost, format, admission, make);
        self.screen.absorb(&set.take_screen_counters());
        if kept {
            self.insertions += 1;
        } else {
            self.rejections += 1;
        }
        kept
    }

    /// Number of distinct table sets with a cached frontier.
    pub fn num_table_sets(&self) -> usize {
        self.map.len()
    }

    /// Total number of cached plans over all table sets.
    pub fn total_plans(&self) -> usize {
        self.map.values().map(|s| s.len()).sum()
    }

    /// Size of the largest per-table-set frontier (for Lemma 6 checks).
    pub fn max_frontier_size(&self) -> usize {
        self.map.values().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Lifetime counters: `(kept, rejected)` insertion attempts.
    pub fn counters(&self) -> (u64, u64) {
        (self.insertions, self.rejections)
    }

    /// Returns and resets the screening tallies accumulated across all
    /// per-table-set frontiers — the cache-side analogue of
    /// [`ParetoSet::take_screen_counters`], flushed to the `moqo-obs`
    /// registry at iteration granularity by the RMQ loop.
    pub fn take_screen_counters(&mut self) -> ScreenCounters {
        std::mem::take(&mut self.screen)
    }

    /// Iterates over `(table set, frontier)` entries in unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = (TableSet, &[P])> {
        self.map.iter().map(|(k, v)| (*k, v.plans()))
    }

    /// Iterates over `(table set, frontier set)` entries in unspecified
    /// order — the batch-merge view: unlike [`entries`](PlanCache::entries)
    /// it exposes the [`ParetoSet`]s themselves (inline cost metadata
    /// included), so a consumer can [`ParetoSet::merge_with`] a whole
    /// sub-query frontier without re-deriving candidate costs. Used by the
    /// parallel optimizer to exchange partial-plan frontiers.
    pub fn entry_sets(&self) -> impl Iterator<Item = (TableSet, &ParetoSet<P>)> {
        self.map.iter().map(|(k, v)| (*k, v))
    }

    /// Removes every cached entry (used by cache-ablation experiments).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

impl PlanCache<PlanRef> {
    /// Inserts `plan` into the frontier of its own table set under the
    /// given admission (Algorithm 3's `Prune` for approximate rules).
    /// Returns `true` iff the plan was kept.
    pub fn insert(&mut self, plan: PlanRef, admission: &Admission) -> bool {
        let rel = plan.rel();
        let cost = *plan.cost();
        let format = plan.format();
        self.insert_with(rel, &cost, format, admission, move || plan)
    }

    /// Debug check: every stored plan is filed under its own table set and
    /// every per-set frontier satisfies the Pareto-set invariant.
    pub fn check_invariant(&self) -> bool {
        self.map
            .iter()
            .all(|(rel, set)| set.check_invariant() && set.iter().all(|p| p.rel() == *rel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testing::StubModel;
    use crate::model::{JoinOpId, ScanOpId};
    use crate::plan::Plan;
    use crate::tables::TableId;

    fn model() -> StubModel {
        StubModel::line(3, 2, 7)
    }

    #[test]
    fn empty_cache_has_empty_frontiers() {
        let cache: PlanCache = PlanCache::new();
        assert!(cache.frontier(TableSet::prefix(2)).is_empty());
        assert_eq!(cache.num_table_sets(), 0);
        assert_eq!(cache.total_plans(), 0);
        assert_eq!(cache.max_frontier_size(), 0);
    }

    #[test]
    fn insert_files_plans_under_their_rel() {
        let m = model();
        let mut cache = PlanCache::new();
        let s0 = Plan::scan(&m, TableId::new(0), ScanOpId(0));
        let s1 = Plan::scan(&m, TableId::new(1), ScanOpId(0));
        let j = Plan::join(&m, s0.clone(), s1.clone(), JoinOpId(0));
        let exact = Admission::exact();
        assert!(cache.insert(s0.clone(), &exact));
        assert!(cache.insert(s1, &exact));
        assert!(cache.insert(j.clone(), &exact));
        assert_eq!(cache.num_table_sets(), 3);
        assert_eq!(cache.frontier(j.rel()).len(), 1);
        assert_eq!(cache.frontier(s0.rel()).len(), 1);
        assert!(cache.check_invariant());
    }

    #[test]
    fn coarse_alpha_caps_frontier_growth() {
        let m = model();
        let mut cache = PlanCache::new();
        let s0 = Plan::scan(&m, TableId::new(0), ScanOpId(0));
        let s1 = Plan::scan(&m, TableId::new(1), ScanOpId(0));
        // With a huge alpha, at most one plan per output format survives
        // per table set, regardless of how many tradeoffs we insert.
        for op in 0..3u16 {
            cache.insert(
                Plan::join(&m, s0.clone(), s1.clone(), JoinOpId(op)),
                &Admission::approx(1e12),
            );
        }
        // Ops 0 and 1 share format 0, op 2 has format 1.
        assert!(cache.frontier(TableSet::prefix(2)).len() <= 2);

        // With alpha = 1, the two incomparable format-0 plans both survive.
        let mut fine = PlanCache::new();
        for op in 0..3u16 {
            fine.insert(
                Plan::join(&m, s0.clone(), s1.clone(), JoinOpId(op)),
                &Admission::exact(),
            );
        }
        assert_eq!(fine.frontier(TableSet::prefix(2)).len(), 3);
    }

    #[test]
    fn counters_track_keeps_and_rejections() {
        let m = model();
        let mut cache = PlanCache::new();
        let s0 = Plan::scan(&m, TableId::new(0), ScanOpId(0));
        assert!(cache.insert(s0.clone(), &Admission::exact()));
        // The original weakly dominates the duplicate (equal cost), so
        // SigBetter rejects the re-insertion.
        assert!(!cache.insert(s0, &Admission::exact()));
        let (kept, rejected) = cache.counters();
        assert_eq!((kept, rejected), (1, 1));
        assert_eq!(cache.total_plans(), 1);
    }

    #[test]
    fn clear_empties_cache() {
        let m = model();
        let mut cache = PlanCache::new();
        cache.insert(
            Plan::scan(&m, TableId::new(0), ScanOpId(0)),
            &Admission::exact(),
        );
        cache.clear();
        assert_eq!(cache.num_table_sets(), 0);
    }
}
