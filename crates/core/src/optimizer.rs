//! Anytime optimizer interface shared by RMQ and all baselines.
//!
//! The paper compares algorithms "in terms of the α values that they produce
//! after certain amounts of optimization time" (§3): every algorithm is
//! *anytime* — it can be interrupted and asked for its current frontier.
//! [`Optimizer`] abstracts that: [`Optimizer::step`] performs one bounded
//! unit of work (one RMQ/II iteration, one NSGA-II generation, one batch of
//! DP subsets, ...) and [`Optimizer::frontier`] returns the current result
//! plan set. [`drive`] runs an optimizer under a [`Budget`], notifying an
//! [`Observer`] after every step so harnesses can record trajectories.
//!
//! Two extensions serve the concurrent layers built on top of the core:
//!
//! * [`StopFlag`] / [`AbortCheck`] — cooperative cancellation for optimizer
//!   work running on several threads at once. A deadline is enforced *inside*
//!   the hill-climbing loop (one check per climbing step), so concurrent
//!   climbers overshoot a deadline by at most one climb step instead of one
//!   full iteration.
//! * [`PlanExchange`] — the partial-plan exchange seam: optimizers that can
//!   absorb previously optimized plans and export their own survivors. Both
//!   the intra-query shared frontier of `moqo-parallel` and the cross-query
//!   cache of `moqo-service` speak this trait.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cost::CostVector;
use crate::plan::PlanRef;

/// A stopping criterion for [`drive`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Budget {
    /// Stop after the given wall-clock time (checked between steps).
    Time(Duration),
    /// Stop after the given number of steps (deterministic; used in tests).
    Iterations(u64),
    /// Stop at an absolute point in time (checked between steps). Unlike
    /// [`Budget::Time`], the clock starts at budget creation rather than at
    /// [`drive`] entry, so one deadline can span several `drive` calls —
    /// the contract service schedulers need when an optimizer is stepped in
    /// slices interleaved with other sessions.
    Deadline(Instant),
}

impl Budget {
    /// A deadline the given duration from now (convenience for
    /// [`Budget::Deadline`]).
    pub fn deadline_in(timeout: Duration) -> Budget {
        Budget::Deadline(Instant::now() + timeout)
    }

    /// Whether the budget is exhausted after `steps` completed steps given
    /// the drive started at `start`.
    pub fn exhausted(&self, start: Instant, steps: u64) -> bool {
        match *self {
            Budget::Iterations(n) => steps >= n,
            Budget::Time(limit) => start.elapsed() >= limit,
            Budget::Deadline(at) => Instant::now() >= at,
        }
    }
}

/// Statistics returned by [`drive`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DriveStats {
    /// Number of optimizer steps executed.
    pub steps: u64,
    /// Total elapsed wall-clock time.
    pub elapsed: Duration,
    /// Whether the optimizer exhausted its work (e.g. DP completed) before
    /// the budget ran out.
    pub exhausted: bool,
}

/// A shared cooperative stop signal. Cloning yields another handle to the
/// same flag; once [`StopFlag::stop`] is called every holder observes it.
///
/// The flag is the cross-thread cancellation primitive of the parallel
/// optimizer: worker threads check it between iterations *and* between
/// hill-climbing steps (through [`AbortCheck`]), so all concurrent climbers
/// wind down within one climb step of the first `stop()`.
#[derive(Clone, Debug, Default)]
pub struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    /// Creates an unset flag.
    pub fn new() -> Self {
        StopFlag::default()
    }

    /// Raises the flag. Idempotent.
    #[inline]
    pub fn stop(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    #[inline]
    pub fn is_stopped(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Lowers the flag again (between rounds of a reused worker pool).
    #[inline]
    pub fn clear(&self) {
        self.0.store(false, Ordering::Relaxed);
    }
}

/// A [`StopFlag`] armed with an optional wall-clock deadline: the abort
/// condition threaded through budgeted hill climbs.
///
/// [`AbortCheck::should_abort`] is designed for *inner loops*: the common
/// case is one relaxed atomic load. The clock is only consulted while the
/// flag is still down, and the first checker to observe the deadline raises
/// the shared flag — so sibling workers mid-climb abort on their next
/// (atomic-load-only) check without ever reading the clock themselves.
#[derive(Clone, Debug)]
pub struct AbortCheck {
    flag: StopFlag,
    deadline: Option<Instant>,
}

impl AbortCheck {
    /// An abort condition from a shared flag and an optional deadline.
    pub fn new(flag: StopFlag, deadline: Option<Instant>) -> Self {
        AbortCheck { flag, deadline }
    }

    /// An abort condition that never fires (for unguarded call sites that
    /// share code with guarded ones).
    pub fn never() -> Self {
        AbortCheck {
            flag: StopFlag::new(),
            deadline: None,
        }
    }

    /// The shared flag.
    pub fn flag(&self) -> &StopFlag {
        &self.flag
    }

    /// Whether work should stop: the shared flag is up, or the deadline has
    /// passed (which raises the flag for every sibling).
    #[inline]
    pub fn should_abort(&self) -> bool {
        if self.flag.is_stopped() {
            return true;
        }
        match self.deadline {
            Some(at) if Instant::now() >= at => {
                self.flag.stop();
                true
            }
            _ => false,
        }
    }
}

/// A shared iteration-claim counter: the batch-claim primitive concurrent
/// workers draw an exact total of iterations from.
///
/// Cloning yields another handle onto the same counter. However claims
/// interleave across threads, the number of **granted** iterations sums to
/// exactly `total` — the property that makes `Budget::Iterations` exact
/// and scheduling-independent under both scoped threads and a work-stealing
/// executor. [`claim_batch`](ClaimCounter::claim_batch) grants up to a whole
/// climb batch per atomic operation, so batch-granular executors pay one
/// fetch-add per batch instead of one per iteration.
#[derive(Clone, Debug)]
pub struct ClaimCounter {
    issued: Arc<AtomicU64>,
    total: u64,
}

impl ClaimCounter {
    /// A counter granting exactly `total` iterations across all holders.
    pub fn new(total: u64) -> Self {
        ClaimCounter {
            issued: Arc::new(AtomicU64::new(0)),
            total,
        }
    }

    /// Claims one iteration. Returns `false` once the total is exhausted.
    #[inline]
    pub fn claim(&self) -> bool {
        self.claim_batch(1) == 1
    }

    /// Claims up to `n` iterations at once; returns how many were granted
    /// (`0` once the total is exhausted). The sum of grants across all
    /// holders is exactly [`total`](ClaimCounter::total), regardless of how
    /// claims interleave: over-issued claims past the total grant nothing.
    #[inline]
    pub fn claim_batch(&self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let prev = self.issued.fetch_add(n, Ordering::Relaxed);
        self.total.saturating_sub(prev).min(n)
    }

    /// The fixed total this counter grants.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether every iteration has been granted.
    pub fn is_exhausted(&self) -> bool {
        self.issued.load(Ordering::Relaxed) >= self.total
    }
}

/// One anytime-convergence checkpoint: a deterministic snapshot of the
/// result frontier taken inside the optimizer's iterate loop at
/// exponentially spaced iteration marks (1, 2, 4, 8, ...).
///
/// The checkpoint stores the frontier's **cost vectors**, not a quality
/// scalar: quality measures like the hypervolume depend on a reference
/// point that only the consumer knows (`moqo-metrics` computes them, and
/// `moqo-core` cannot depend on it). Everything except `elapsed` is
/// bit-for-bit reproducible for a fixed seed — sampling consumes no
/// randomness and never mutates optimizer state — so benchmark baselines
/// can gate on iterations, frontier sizes, and costs structurally while
/// treating the wall-clock column as timing-only.
#[derive(Clone, Debug)]
pub struct ConvergencePoint {
    /// Completed iterations when the checkpoint was taken (1-based).
    pub iteration: u64,
    /// Wall-clock time since the optimizer was created (timing-only; not
    /// deterministic).
    pub elapsed: Duration,
    /// Last exchange epoch observed by the sampling thread (0 when the
    /// optimizer runs outside an exchange).
    pub epoch: u64,
    /// Number of plans on the result frontier.
    pub frontier_size: usize,
    /// The frontier members' cost vectors (insertion order).
    pub frontier_costs: Vec<CostVector>,
}

/// An anytime multi-objective query optimizer.
pub trait Optimizer {
    /// Short display name (e.g. `"RMQ"`, `"NSGA-II"`, `"DP(2)"`).
    fn name(&self) -> &str;

    /// Performs one bounded unit of work. Returns `false` when the
    /// algorithm has exhausted its work and further calls are useless.
    fn step(&mut self) -> bool;

    /// The current result frontier: plans for the full query produced so
    /// far. May be empty (e.g. DP before completion).
    fn frontier(&self) -> Vec<PlanRef>;
}

/// An anytime optimizer that can exchange partial plans with a shared
/// store — the seam through which plans flow between concurrent optimizer
/// instances.
///
/// Two layers speak this trait: the **intra-query** shared frontier of
/// `moqo-parallel` (worker threads publishing local optima into one global
/// frontier) and the **cross-query** plan cache of `moqo-service` (finished
/// sessions seeding later overlapping sessions). The hooks default to
/// no-ops so any `Optimizer + Send` — e.g. the NSGA-II / SA / II baselines —
/// can be served by implementing the trait with an empty body; [`Rmq`]
/// implements them natively through its partial-plan cache.
///
/// [`Rmq`]: crate::rmq::Rmq
pub trait PlanExchange: Optimizer + Send {
    /// Absorbs previously optimized partial plans (warm start). Returns how
    /// many plans were actually incorporated.
    fn absorb_plans(&mut self, plans: &[PlanRef]) -> usize {
        let _ = plans;
        0
    }

    /// Exports partial plans for reuse by other optimizer instances.
    fn export_plans(&self) -> Vec<PlanRef> {
        Vec::new()
    }

    /// How many worker threads this optimizer fans out over while being
    /// stepped (`1` for sequential optimizers). Schedulers use this to
    /// account for intra-query parallelism in admission decisions.
    fn fan_out(&self) -> usize {
        1
    }

    /// Requests that subsequent steps use at most `workers` intra-query
    /// workers — the elastic fan-out seam: a scheduler grants a fanned-out
    /// optimizer anywhere between one worker and its declared
    /// [`fan_out`](PlanExchange::fan_out) per scheduled batch, depending on
    /// load. Implementations clamp to `1..=fan_out()`; correctness (exact
    /// iteration budgets, frontier contents up to exploration order) must
    /// not depend on the granted width. Sequential optimizers ignore it.
    fn set_effective_fan_out(&mut self, workers: usize) {
        let _ = workers;
    }

    /// The anytime-convergence checkpoints recorded so far (oldest first;
    /// implementations keep a bounded ring). Defaults to empty for
    /// optimizers that do not sample convergence.
    fn convergence(&self) -> Vec<ConvergencePoint> {
        Vec::new()
    }

    /// Forces a convergence checkpoint at the current iteration (a
    /// "final" sample so quality-over-time curves end at the frontier the
    /// caller actually received). No-op by default and for optimizers that
    /// have not completed any iteration.
    fn sample_convergence_now(&mut self) {}
}

/// Observer notified after every optimizer step. The `frontier` closure
/// materializes the current frontier lazily — implementations should only
/// invoke it when they actually record a snapshot.
pub trait Observer {
    /// Called after each step with the elapsed time since `drive` started,
    /// the 1-based step counter, and lazy access to the current frontier.
    fn on_step(&mut self, elapsed: Duration, step: u64, frontier: &mut dyn FnMut() -> Vec<PlanRef>);
}

/// An [`Observer`] that ignores all notifications.
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_step(&mut self, _: Duration, _: u64, _: &mut dyn FnMut() -> Vec<PlanRef>) {}
}

/// Runs `opt` until the budget is exhausted or the optimizer reports
/// completion, notifying `observer` after every step.
pub fn drive<O>(opt: &mut O, budget: Budget, observer: &mut dyn Observer) -> DriveStats
where
    O: Optimizer + ?Sized,
{
    let start = Instant::now();
    let mut stats = DriveStats::default();
    loop {
        if budget.exhausted(start, stats.steps) {
            break;
        }
        let more = opt.step();
        stats.steps += 1;
        observer.on_step(start.elapsed(), stats.steps, &mut || opt.frontier());
        if !more {
            stats.exhausted = true;
            break;
        }
    }
    stats.elapsed = start.elapsed();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostVector;
    use crate::model::testing::StubModel;
    use crate::model::CostModel;
    use crate::plan::Plan;
    use crate::tables::TableId;

    /// A fake optimizer that produces one scan plan per step, up to a cap.
    struct Counting {
        model: StubModel,
        produced: Vec<PlanRef>,
        cap: usize,
    }

    impl Counting {
        fn new(cap: usize) -> Self {
            Counting {
                model: StubModel::line(1, 2, 1),
                produced: Vec::new(),
                cap,
            }
        }
    }

    impl Optimizer for Counting {
        fn name(&self) -> &str {
            "Counting"
        }
        fn step(&mut self) -> bool {
            let t = TableId::new(0);
            self.produced
                .push(Plan::scan(&self.model, t, self.model.scan_ops(t)[0]));
            self.produced.len() < self.cap
        }
        fn frontier(&self) -> Vec<PlanRef> {
            self.produced.clone()
        }
    }

    #[test]
    fn iteration_budget_is_exact() {
        let mut opt = Counting::new(usize::MAX);
        let stats = drive(&mut opt, Budget::Iterations(7), &mut NullObserver);
        assert_eq!(stats.steps, 7);
        assert!(!stats.exhausted);
        assert_eq!(opt.frontier().len(), 7);
    }

    #[test]
    fn exhaustion_stops_early() {
        let mut opt = Counting::new(3);
        let stats = drive(&mut opt, Budget::Iterations(100), &mut NullObserver);
        assert_eq!(stats.steps, 3);
        assert!(stats.exhausted);
    }

    #[test]
    fn time_budget_terminates() {
        let mut opt = Counting::new(usize::MAX);
        let stats = drive(
            &mut opt,
            Budget::Time(Duration::from_millis(20)),
            &mut NullObserver,
        );
        assert!(stats.elapsed >= Duration::from_millis(20));
        assert!(stats.steps > 0);
    }

    #[test]
    fn deadline_budget_spans_multiple_drives() {
        // One absolute deadline governs several drive calls: the service
        // scheduler steps optimizers in slices against a shared deadline.
        let mut opt = Counting::new(usize::MAX);
        let budget = Budget::deadline_in(Duration::from_millis(30));
        let first = drive(&mut opt, budget, &mut NullObserver);
        assert!(first.steps > 0);
        std::thread::sleep(Duration::from_millis(35));
        let after = drive(&mut opt, budget, &mut NullObserver);
        assert_eq!(after.steps, 0, "expired deadline must not step");
    }

    #[test]
    fn observer_sees_every_step_with_lazy_frontier() {
        struct Recorder {
            steps_seen: Vec<u64>,
            frontier_sizes: Vec<usize>,
        }
        impl Observer for Recorder {
            fn on_step(
                &mut self,
                _: Duration,
                step: u64,
                frontier: &mut dyn FnMut() -> Vec<PlanRef>,
            ) {
                self.steps_seen.push(step);
                // Only materialize on even steps to prove laziness works.
                if step % 2 == 0 {
                    self.frontier_sizes.push(frontier().len());
                }
            }
        }
        let mut opt = Counting::new(usize::MAX);
        let mut rec = Recorder {
            steps_seen: Vec::new(),
            frontier_sizes: Vec::new(),
        };
        drive(&mut opt, Budget::Iterations(4), &mut rec);
        assert_eq!(rec.steps_seen, vec![1, 2, 3, 4]);
        assert_eq!(rec.frontier_sizes, vec![2, 4]);
    }

    #[test]
    fn stop_flag_is_shared_across_clones() {
        let a = StopFlag::new();
        let b = a.clone();
        assert!(!b.is_stopped());
        a.stop();
        assert!(b.is_stopped());
        b.clear();
        assert!(!a.is_stopped());
    }

    #[test]
    fn abort_check_raises_the_flag_on_deadline() {
        let flag = StopFlag::new();
        let armed = AbortCheck::new(
            flag.clone(),
            Some(Instant::now() - Duration::from_millis(1)),
        );
        // The deadline has passed: the check fires and raises the shared
        // flag, so a sibling holding only the flag sees it too.
        assert!(armed.should_abort());
        assert!(flag.is_stopped());
        assert!(AbortCheck::new(flag, None).should_abort());
        assert!(!AbortCheck::never().should_abort());
    }

    #[test]
    fn plan_exchange_defaults_are_noops() {
        struct Bare(Counting);
        impl Optimizer for Bare {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn step(&mut self) -> bool {
                self.0.step()
            }
            fn frontier(&self) -> Vec<PlanRef> {
                self.0.frontier()
            }
        }
        impl PlanExchange for Bare {}
        let mut bare = Bare(Counting::new(3));
        assert_eq!(bare.absorb_plans(&[]), 0);
        assert!(bare.export_plans().is_empty());
        assert_eq!(bare.fan_out(), 1);
    }

    #[test]
    fn claim_counter_grants_exactly_the_total_in_batches() {
        let c = ClaimCounter::new(10);
        assert_eq!(c.total(), 10);
        assert_eq!(c.claim_batch(4), 4);
        assert_eq!(c.claim_batch(4), 4);
        // Only 2 remain of the over-asked batch.
        assert_eq!(c.claim_batch(4), 2);
        assert!(c.is_exhausted());
        assert_eq!(c.claim_batch(4), 0);
        assert!(!c.claim());
        assert_eq!(ClaimCounter::new(5).claim_batch(0), 0);
    }

    #[test]
    fn claim_counter_is_exact_across_threads() {
        // However claims interleave, grants sum to exactly the total.
        let c = ClaimCounter::new(1000);
        let granted: u64 = std::thread::scope(|s| {
            (0..4)
                .map(|t| {
                    let c = c.clone();
                    // Mixed claim granularities across threads.
                    let batch = 1 + t as u64 * 3;
                    s.spawn(move || {
                        let mut mine = 0;
                        loop {
                            let got = c.claim_batch(batch);
                            if got == 0 {
                                break mine;
                            }
                            mine += got;
                        }
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(granted, 1000);
        assert!(c.is_exhausted());
    }

    #[test]
    fn cost_vectors_survive_the_round_trip() {
        // Sanity: the frontier plans expose usable cost vectors.
        let mut opt = Counting::new(2);
        drive(&mut opt, Budget::Iterations(2), &mut NullObserver);
        let costs: Vec<CostVector> = opt.frontier().iter().map(|p| *p.cost()).collect();
        assert_eq!(costs.len(), 2);
        assert!(costs.iter().all(CostVector::is_valid));
    }
}
