//! Anytime optimizer interface shared by RMQ and all baselines.
//!
//! The paper compares algorithms "in terms of the α values that they produce
//! after certain amounts of optimization time" (§3): every algorithm is
//! *anytime* — it can be interrupted and asked for its current frontier.
//! [`Optimizer`] abstracts that: [`Optimizer::step`] performs one bounded
//! unit of work (one RMQ/II iteration, one NSGA-II generation, one batch of
//! DP subsets, ...) and [`Optimizer::frontier`] returns the current result
//! plan set. [`drive`] runs an optimizer under a [`Budget`], notifying an
//! [`Observer`] after every step so harnesses can record trajectories.

use std::time::{Duration, Instant};

use crate::plan::PlanRef;

/// A stopping criterion for [`drive`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Budget {
    /// Stop after the given wall-clock time (checked between steps).
    Time(Duration),
    /// Stop after the given number of steps (deterministic; used in tests).
    Iterations(u64),
    /// Stop at an absolute point in time (checked between steps). Unlike
    /// [`Budget::Time`], the clock starts at budget creation rather than at
    /// [`drive`] entry, so one deadline can span several `drive` calls —
    /// the contract service schedulers need when an optimizer is stepped in
    /// slices interleaved with other sessions.
    Deadline(Instant),
}

impl Budget {
    /// A deadline the given duration from now (convenience for
    /// [`Budget::Deadline`]).
    pub fn deadline_in(timeout: Duration) -> Budget {
        Budget::Deadline(Instant::now() + timeout)
    }

    /// Whether the budget is exhausted after `steps` completed steps given
    /// the drive started at `start`.
    pub fn exhausted(&self, start: Instant, steps: u64) -> bool {
        match *self {
            Budget::Iterations(n) => steps >= n,
            Budget::Time(limit) => start.elapsed() >= limit,
            Budget::Deadline(at) => Instant::now() >= at,
        }
    }
}

/// Statistics returned by [`drive`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DriveStats {
    /// Number of optimizer steps executed.
    pub steps: u64,
    /// Total elapsed wall-clock time.
    pub elapsed: Duration,
    /// Whether the optimizer exhausted its work (e.g. DP completed) before
    /// the budget ran out.
    pub exhausted: bool,
}

/// An anytime multi-objective query optimizer.
pub trait Optimizer {
    /// Short display name (e.g. `"RMQ"`, `"NSGA-II"`, `"DP(2)"`).
    fn name(&self) -> &str;

    /// Performs one bounded unit of work. Returns `false` when the
    /// algorithm has exhausted its work and further calls are useless.
    fn step(&mut self) -> bool;

    /// The current result frontier: plans for the full query produced so
    /// far. May be empty (e.g. DP before completion).
    fn frontier(&self) -> Vec<PlanRef>;
}

/// Observer notified after every optimizer step. The `frontier` closure
/// materializes the current frontier lazily — implementations should only
/// invoke it when they actually record a snapshot.
pub trait Observer {
    /// Called after each step with the elapsed time since `drive` started,
    /// the 1-based step counter, and lazy access to the current frontier.
    fn on_step(&mut self, elapsed: Duration, step: u64, frontier: &mut dyn FnMut() -> Vec<PlanRef>);
}

/// An [`Observer`] that ignores all notifications.
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_step(&mut self, _: Duration, _: u64, _: &mut dyn FnMut() -> Vec<PlanRef>) {}
}

/// Runs `opt` until the budget is exhausted or the optimizer reports
/// completion, notifying `observer` after every step.
pub fn drive<O>(opt: &mut O, budget: Budget, observer: &mut dyn Observer) -> DriveStats
where
    O: Optimizer + ?Sized,
{
    let start = Instant::now();
    let mut stats = DriveStats::default();
    loop {
        if budget.exhausted(start, stats.steps) {
            break;
        }
        let more = opt.step();
        stats.steps += 1;
        observer.on_step(start.elapsed(), stats.steps, &mut || opt.frontier());
        if !more {
            stats.exhausted = true;
            break;
        }
    }
    stats.elapsed = start.elapsed();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostVector;
    use crate::model::testing::StubModel;
    use crate::model::CostModel;
    use crate::plan::Plan;
    use crate::tables::TableId;

    /// A fake optimizer that produces one scan plan per step, up to a cap.
    struct Counting {
        model: StubModel,
        produced: Vec<PlanRef>,
        cap: usize,
    }

    impl Counting {
        fn new(cap: usize) -> Self {
            Counting {
                model: StubModel::line(1, 2, 1),
                produced: Vec::new(),
                cap,
            }
        }
    }

    impl Optimizer for Counting {
        fn name(&self) -> &str {
            "Counting"
        }
        fn step(&mut self) -> bool {
            let t = TableId::new(0);
            self.produced
                .push(Plan::scan(&self.model, t, self.model.scan_ops(t)[0]));
            self.produced.len() < self.cap
        }
        fn frontier(&self) -> Vec<PlanRef> {
            self.produced.clone()
        }
    }

    #[test]
    fn iteration_budget_is_exact() {
        let mut opt = Counting::new(usize::MAX);
        let stats = drive(&mut opt, Budget::Iterations(7), &mut NullObserver);
        assert_eq!(stats.steps, 7);
        assert!(!stats.exhausted);
        assert_eq!(opt.frontier().len(), 7);
    }

    #[test]
    fn exhaustion_stops_early() {
        let mut opt = Counting::new(3);
        let stats = drive(&mut opt, Budget::Iterations(100), &mut NullObserver);
        assert_eq!(stats.steps, 3);
        assert!(stats.exhausted);
    }

    #[test]
    fn time_budget_terminates() {
        let mut opt = Counting::new(usize::MAX);
        let stats = drive(
            &mut opt,
            Budget::Time(Duration::from_millis(20)),
            &mut NullObserver,
        );
        assert!(stats.elapsed >= Duration::from_millis(20));
        assert!(stats.steps > 0);
    }

    #[test]
    fn deadline_budget_spans_multiple_drives() {
        // One absolute deadline governs several drive calls: the service
        // scheduler steps optimizers in slices against a shared deadline.
        let mut opt = Counting::new(usize::MAX);
        let budget = Budget::deadline_in(Duration::from_millis(30));
        let first = drive(&mut opt, budget, &mut NullObserver);
        assert!(first.steps > 0);
        std::thread::sleep(Duration::from_millis(35));
        let after = drive(&mut opt, budget, &mut NullObserver);
        assert_eq!(after.steps, 0, "expired deadline must not step");
    }

    #[test]
    fn observer_sees_every_step_with_lazy_frontier() {
        struct Recorder {
            steps_seen: Vec<u64>,
            frontier_sizes: Vec<usize>,
        }
        impl Observer for Recorder {
            fn on_step(
                &mut self,
                _: Duration,
                step: u64,
                frontier: &mut dyn FnMut() -> Vec<PlanRef>,
            ) {
                self.steps_seen.push(step);
                // Only materialize on even steps to prove laziness works.
                if step % 2 == 0 {
                    self.frontier_sizes.push(frontier().len());
                }
            }
        }
        let mut opt = Counting::new(usize::MAX);
        let mut rec = Recorder {
            steps_seen: Vec::new(),
            frontier_sizes: Vec::new(),
        };
        drive(&mut opt, Budget::Iterations(4), &mut rec);
        assert_eq!(rec.steps_seen, vec![1, 2, 3, 4]);
        assert_eq!(rec.frontier_sizes, vec![2, 4]);
    }

    #[test]
    fn cost_vectors_survive_the_round_trip() {
        // Sanity: the frontier plans expose usable cost vectors.
        let mut opt = Counting::new(2);
        drive(&mut opt, Budget::Iterations(2), &mut NullObserver);
        let costs: Vec<CostVector> = opt.frontier().iter().map(|p| *p.cost()).collect();
        assert_eq!(costs.len(), 2);
        assert!(costs.iter().all(CostVector::is_valid));
    }
}
